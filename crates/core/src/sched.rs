//! Std-only parallel task scheduler for batch drivers.
//!
//! The simulator is deterministic and single-threaded per run, so batch
//! workloads — the 12-benchmark × variant matrix behind every figure and
//! table, CI smoke sweeps, parameter studies — parallelize perfectly at the
//! granularity of whole runs. [`run_tasks`] fans a vector of closures over a
//! fixed worker pool built on [`std::thread::scope`] (no dependencies, no
//! unsafe) and returns results **in task order**, so callers observe output
//! identical to a sequential loop regardless of worker interleaving.
//!
//! Used by `openarc-suite`'s cached variant runners and `openarc-bench`'s
//! figure/table drivers (`--jobs N`), and mirrored in miniature inside the
//! verified launch path where the CPU reference overlaps the device run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of workers the host can usefully run (`available_parallelism`,
/// falling back to 1 when the platform cannot say).
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound accepted for `--jobs` (beyond this the fixed-size matrix
/// gains nothing and thread overhead dominates).
pub const MAX_JOBS: usize = 512;

/// Parse a `--jobs` argument: a positive integer, `0`, or `auto` (both
/// meaning [`auto_jobs`]). Returns a user-facing message on bad input.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    if s == "auto" {
        return Ok(auto_jobs());
    }
    match s.parse::<usize>() {
        Ok(0) => Ok(auto_jobs()),
        Ok(n) if n <= MAX_JOBS => Ok(n),
        Ok(n) => Err(format!("--jobs must be between 1 and {MAX_JOBS} (got {n})")),
        Err(_) => Err(format!(
            "--jobs expects a positive integer or 'auto' (got '{s}')"
        )),
    }
}

/// Run `tasks` across up to `jobs` worker threads and return their results
/// in task order.
///
/// `jobs <= 1` (or a single task) degenerates to an inline sequential loop
/// on the calling thread — byte-identical behaviour, zero thread overhead.
///
/// Workers self-schedule in **guided chunks**: each claims
/// `max(1, remaining / (2 × workers))` consecutive task indices under one
/// lock acquisition, so a matrix of fine-grained cells does not pay one
/// mutex round-trip per task — early chunks are large (low overhead), the
/// final chunks shrink to single tasks (good load balance, so an expensive
/// task never strands cheap ones behind it). Each worker buffers its
/// `(index, result)` pairs locally and publishes them with one lock at
/// exit, so result collection adds one acquisition per worker, not per
/// task. A panicking task does not poison the pool: remaining tasks still
/// run, and the first panic (in task order) is re-raised on the caller
/// after all workers join.
///
/// ```
/// use openarc_core::sched::run_tasks;
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// assert_eq!(run_tasks(4, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let workers = jobs.min(n);
    struct Queue<F> {
        tasks: Vec<Option<F>>,
        next: usize,
    }
    let queue = Mutex::new(Queue {
        tasks: tasks.into_iter().map(Some).collect(),
        next: 0,
    });
    let results: Mutex<Vec<Option<std::thread::Result<T>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut chunk: Vec<(usize, F)> = Vec::new();
                let mut done: Vec<(usize, std::thread::Result<T>)> = Vec::new();
                loop {
                    {
                        let mut q = queue.lock().expect("sched queue poisoned");
                        let remaining = n - q.next;
                        if remaining == 0 {
                            break;
                        }
                        let take = (remaining / (2 * workers)).max(1);
                        let start = q.next;
                        q.next += take;
                        for i in start..start + take {
                            chunk.push((i, q.tasks[i].take().expect("task claimed twice")));
                        }
                    }
                    for (i, task) in chunk.drain(..) {
                        done.push((i, catch_unwind(AssertUnwindSafe(task))));
                    }
                }
                let mut slots = results.lock().expect("sched results poisoned");
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("sched results poisoned")
        .into_iter()
        .map(|slot| match slot.expect("task never ran") {
            Ok(v) => v,
            Err(panic) => resume_unwind(panic),
        })
        .collect()
}

/// Admission refusal from [`WorkQueue::try_submit`]: the bounded queue
/// is at capacity. Carries the depth observed at refusal so the caller
/// can size a retry-after hint (depth × recent service time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Jobs waiting (excluding those already running) when refused.
    pub depth: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work queue full ({} jobs waiting)", self.depth)
    }
}

impl std::error::Error for QueueFull {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    capacity: usize,
    /// Jobs whose closure panicked (the worker survives and keeps
    /// serving; the panic is contained, not resurfaced).
    panicked: AtomicUsize,
}

/// A persistent worker pool with a **bounded** submission queue — the
/// admission-control half of the `openarc serve` daemon.
///
/// Where [`run_tasks`] fans a known batch over short-lived scoped
/// threads, `WorkQueue` keeps `workers` threads alive for the life of
/// the pool and accepts jobs one at a time, refusing (never blocking)
/// when more than `capacity` jobs are already waiting: callers get a
/// [`QueueFull`] carrying the observed depth and decide whether to shed
/// load or retry later. A panicking job is contained to its worker
/// ([`WorkQueue::panicked`] counts them); dropping the pool finishes
/// every admitted job before the workers exit.
///
/// ```
/// use openarc_core::sched::WorkQueue;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// let pool = WorkQueue::new(2, 16);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = hits.clone();
///     pool.try_submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// drop(pool); // joins the workers; every admitted job has run
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
pub struct WorkQueue {
    inner: Arc<QueueInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkQueue {
    /// Start a pool of `workers` threads (min 1) admitting at most
    /// `capacity` waiting jobs (min 1; running jobs don't count against
    /// the bound).
    pub fn new(workers: usize, capacity: usize) -> WorkQueue {
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut st = inner.state.lock().expect("work queue poisoned");
                        loop {
                            if let Some(job) = st.jobs.pop_front() {
                                break job;
                            }
                            if st.shutdown {
                                return;
                            }
                            st = inner.available.wait(st).expect("work queue poisoned");
                        }
                    };
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        inner.panicked.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        WorkQueue { inner, workers }
    }

    /// Enqueue `job`, or refuse with [`QueueFull`] if `capacity` jobs
    /// are already waiting. Never blocks the caller.
    pub fn try_submit<F>(&self, job: F) -> Result<(), QueueFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut st = self.inner.state.lock().expect("work queue poisoned");
        if st.jobs.len() >= self.inner.capacity {
            return Err(QueueFull {
                depth: st.jobs.len(),
            });
        }
        st.jobs.push_back(Box::new(job));
        drop(st);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Jobs admitted but not yet started.
    pub fn depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("work queue poisoned")
            .jobs
            .len()
    }

    /// The queue bound this pool was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Jobs whose closure panicked (contained; the pool kept serving).
    pub fn panicked(&self) -> usize {
        self.inner.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for WorkQueue {
    /// Graceful shutdown: admitted jobs all run, then workers exit.
    fn drop(&mut self) {
        self.inner
            .state
            .lock()
            .expect("work queue poisoned")
            .shutdown = true;
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Split `0..total` into at most `parts` contiguous, near-equal ranges
/// (`lo..hi` half-open), in order. Used by the verified-launch comparison
/// stage to chunk one written aggregate across [`run_tasks`] workers:
/// because the ranges tile `0..total` in order and the caller merges chunk
/// results in task order, any `parts` value reproduces the sequential
/// loop's counts bit-for-bit.
pub fn chunk_ranges(total: u64, parts: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let chunk = total.div_ceil(parts);
    let mut out = Vec::with_capacity(parts as usize);
    let mut lo = 0;
    while lo < total {
        let hi = (lo + chunk).min(total);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn chunk_ranges_tile_without_gaps() {
        for total in [0u64, 1, 7, 64, 1000] {
            for parts in [1usize, 3, 8, 2000] {
                let ranges = chunk_ranges(total, parts);
                let mut expect = 0;
                for (lo, hi) in &ranges {
                    assert_eq!(*lo, expect, "total {total} parts {parts}");
                    assert!(hi > lo);
                    expect = *hi;
                }
                assert_eq!(expect, total);
                assert!(ranges.len() <= parts.max(1));
            }
        }
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(10, 1), vec![(0, 10)]);
    }

    #[test]
    fn results_come_back_in_task_order() {
        // Tasks deliberately uneven: late indices finish first under
        // parallelism, yet output order must match input order.
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * 10
                }
            })
            .collect();
        let got = run_tasks(8, tasks);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let make = || (0..20usize).map(|i| move || i * i + 1).collect::<Vec<_>>();
        assert_eq!(run_tasks(1, make()), run_tasks(7, make()));
    }

    #[test]
    fn panic_propagates_after_all_tasks_run() {
        use std::sync::atomic::AtomicUsize;
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    DONE.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let r = catch_unwind(AssertUnwindSafe(|| run_tasks(4, tasks)));
        assert!(r.is_err());
        assert_eq!(DONE.load(Ordering::SeqCst), 7, "other tasks still ran");
    }

    #[test]
    fn work_queue_runs_every_admitted_job() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkQueue::new(3, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let done = done.clone();
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn work_queue_refuses_when_full_and_recovers() {
        // One worker pinned on a gate; capacity 2 means the third
        // *waiting* job is refused with the observed depth.
        let pool = WorkQueue::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        pool.try_submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has picked the gate job up, so the
        // queue depth is deterministic.
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).unwrap();
        pool.try_submit(|| {}).unwrap();
        let err = pool.try_submit(|| {}).unwrap_err();
        assert_eq!(err, QueueFull { depth: 2 });
        assert!(err.to_string().contains("2 jobs waiting"));
        // Opening the gate drains the queue and admission resumes.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        while pool.depth() >= pool.capacity() {
            std::thread::yield_now();
        }
        assert!(pool.try_submit(|| {}).is_ok());
    }

    #[test]
    fn work_queue_contains_job_panics() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkQueue::new(1, 8);
        let done = Arc::new(AtomicUsize::new(0));
        pool.try_submit(|| panic!("job exploded")).unwrap();
        let d = done.clone();
        pool.try_submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        // Single worker, FIFO: once the second job has run, the first
        // has already panicked and been counted.
        while done.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked(), 1);
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }

    #[test]
    fn work_queue_clamps_degenerate_sizes() {
        let pool = WorkQueue::new(0, 0);
        assert_eq!(pool.capacity(), 1);
        pool.try_submit(|| {}).unwrap();
        drop(pool);
    }

    #[test]
    fn parse_jobs_accepts_auto_and_rejects_garbage() {
        assert!(parse_jobs("auto").unwrap() >= 1);
        assert!(parse_jobs("0").unwrap() >= 1);
        assert_eq!(parse_jobs("4").unwrap(), 4);
        assert!(parse_jobs("banana").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("100000").is_err());
    }
}
