//! Grammar-aware mutations over parsed programs.
//!
//! A mutation parses the source, edits the AST (or a directive re-parsed
//! from its pragma text via the typed `openarc-openacc` layer), and
//! re-prints with the MiniC pretty-printer — so every mutant is parseable
//! by construction, and directive edits round-trip through the same
//! `Display ↔ parse` pair the demotion pass uses.
//!
//! The catalogue covers the issue's list: data-clause kind permutation
//! (`copy`/`copyin`/`copyout`/`create`), clause add/drop/swap, loop-bound
//! and trip-count perturbation (always shrinking, so indices stay in
//! bounds), statement-nest reordering, scalar/aggregate type flips,
//! schedule toggles (`worker`, `async`), `update host`/`device` flips, and
//! whole-pragma deletion.

use super::rng::FuzzRng;
use openarc_minic::ast::*;
use openarc_minic::{parse, print_program};
use openarc_openacc::{parse_directive, DataClause, DataClauseKind, DataItem, Directive};

/// Visit every block of a program in a fixed pre-order, giving each an
/// ordinal. `f` returns `true` to stop early.
fn walk_blocks_mut(
    b: &mut Block,
    ord: &mut usize,
    f: &mut impl FnMut(usize, &mut Block) -> bool,
) -> bool {
    let my = *ord;
    *ord += 1;
    if f(my, b) {
        return true;
    }
    for s in &mut b.stmts {
        let stop = match &mut s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                walk_blocks_mut(then_blk, ord, f)
                    || match else_blk {
                        Some(e) => walk_blocks_mut(e, ord, f),
                        None => false,
                    }
            }
            StmtKind::For { body, .. } => walk_blocks_mut(body, ord, f),
            StmtKind::While { body, .. } => walk_blocks_mut(body, ord, f),
            StmtKind::Block(bb) => walk_blocks_mut(bb, ord, f),
            _ => false,
        };
        if stop {
            return true;
        }
    }
    false
}

/// Immutable twin of [`walk_blocks_mut`].
fn walk_blocks(b: &Block, ord: &mut usize, f: &mut impl FnMut(usize, &Block)) {
    let my = *ord;
    *ord += 1;
    f(my, b);
    for s in &b.stmts {
        match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                walk_blocks(then_blk, ord, f);
                if let Some(e) = else_blk {
                    walk_blocks(e, ord, f);
                }
            }
            StmtKind::For { body, .. } => walk_blocks(body, ord, f),
            StmtKind::While { body, .. } => walk_blocks(body, ord, f),
            StmtKind::Block(bb) => walk_blocks(bb, ord, f),
            _ => {}
        }
    }
}

/// Run `f` over every block of every function, in a fixed order.
pub(crate) fn program_blocks(p: &Program, f: &mut impl FnMut(usize, &Block)) {
    let mut ord = 0;
    for it in &p.items {
        if let Item::Func(func) = it {
            walk_blocks(&func.body, &mut ord, f);
        }
    }
}

/// Apply `f` to the block with the given ordinal.
pub(crate) fn with_block_mut(p: &mut Program, target: usize, f: impl FnOnce(&mut Block)) -> bool {
    let mut ord = 0;
    let mut f = Some(f);
    for it in &mut p.items {
        if let Item::Func(func) = it {
            let hit = walk_blocks_mut(&mut func.body, &mut ord, &mut |o, b| {
                if o == target {
                    if let Some(f) = f.take() {
                        f(b);
                    }
                    true
                } else {
                    false
                }
            });
            if hit {
                return true;
            }
        }
    }
    false
}

/// One concrete edit the mutator (or minimizer) can apply.
#[derive(Debug, Clone)]
pub(crate) enum MutOp {
    /// Remove statement `idx` of block `blk`.
    DropStmt { blk: usize, idx: usize },
    /// Swap statements `idx` and `idx + 1` of block `blk`.
    SwapStmts { blk: usize, idx: usize },
    /// Remove pragma `pr` from statement `idx` of block `blk`.
    DropPragma { blk: usize, idx: usize, pr: usize },
    /// Re-kind data clause `cl` of the directive in pragma `pr`.
    PermuteClause {
        blk: usize,
        idx: usize,
        pr: usize,
        cl: usize,
    },
    /// Delete data clause `cl`.
    DropClause {
        blk: usize,
        idx: usize,
        pr: usize,
        cl: usize,
    },
    /// Reverse the clause list (order swap).
    SwapClauses { blk: usize, idx: usize, pr: usize },
    /// Add a fresh data clause naming a random global array.
    AddClause { blk: usize, idx: usize, pr: usize },
    /// Toggle the `worker` schedule flag of a compute directive.
    ToggleWorker { blk: usize, idx: usize, pr: usize },
    /// Add or remove `async(1)` on a compute directive.
    ToggleAsync { blk: usize, idx: usize, pr: usize },
    /// Swap the `host(...)` and `device(...)` lists of an update.
    FlipUpdate { blk: usize, idx: usize, pr: usize },
    /// Shrink an integer `for` upper bound (or trip count).
    ShrinkBound { blk: usize, idx: usize },
    /// Flip a global's element type between double and float.
    FlipType { item: usize },
}

/// Collect every applicable mutation site of a program.
pub(crate) fn collect_ops(p: &Program) -> Vec<MutOp> {
    let mut ops = Vec::new();
    program_blocks(p, &mut |blk, b| {
        for (idx, s) in b.stmts.iter().enumerate() {
            let is_decl = matches!(s.kind, StmtKind::Decl(_));
            if !is_decl && b.stmts.len() > 1 {
                ops.push(MutOp::DropStmt { blk, idx });
            }
            if idx + 1 < b.stmts.len()
                && !is_decl
                && !matches!(b.stmts[idx + 1].kind, StmtKind::Decl(_))
            {
                ops.push(MutOp::SwapStmts { blk, idx });
            }
            for (pr, pragma) in s.pragmas.iter().enumerate() {
                ops.push(MutOp::DropPragma { blk, idx, pr });
                let Ok(Some(d)) = parse_directive(&pragma.text, pragma.span) else {
                    continue;
                };
                match &d {
                    Directive::Data(spec) => {
                        for (cl, _) in spec.clauses.iter().enumerate() {
                            ops.push(MutOp::PermuteClause { blk, idx, pr, cl });
                            ops.push(MutOp::DropClause { blk, idx, pr, cl });
                        }
                        if spec.clauses.len() > 1 {
                            ops.push(MutOp::SwapClauses { blk, idx, pr });
                        }
                        ops.push(MutOp::AddClause { blk, idx, pr });
                    }
                    Directive::Compute(spec) => {
                        for (cl, _) in spec.data.iter().enumerate() {
                            ops.push(MutOp::PermuteClause { blk, idx, pr, cl });
                            ops.push(MutOp::DropClause { blk, idx, pr, cl });
                        }
                        ops.push(MutOp::AddClause { blk, idx, pr });
                        ops.push(MutOp::ToggleWorker { blk, idx, pr });
                        ops.push(MutOp::ToggleAsync { blk, idx, pr });
                    }
                    Directive::Update(_) => {
                        ops.push(MutOp::FlipUpdate { blk, idx, pr });
                    }
                    _ => {}
                }
            }
            if let StmtKind::For { cond: Some(c), .. } = &s.kind {
                if let ExprKind::Binary { rhs, .. } = &c.kind {
                    if matches!(rhs.kind, ExprKind::IntLit(v) if v > 2) {
                        ops.push(MutOp::ShrinkBound { blk, idx });
                    }
                }
            }
        }
    });
    for (item, it) in p.items.iter().enumerate() {
        if let Item::Global(g) = it {
            if matches!(
                g.ty,
                Ty::Array(ScalarTy::Double, _)
                    | Ty::Array(ScalarTy::Float, _)
                    | Ty::Scalar(ScalarTy::Double)
                    | Ty::Scalar(ScalarTy::Float)
            ) {
                ops.push(MutOp::FlipType { item });
            }
        }
    }
    ops
}

/// Global aggregate names, for `AddClause`.
fn aggregate_names(p: &Program) -> Vec<String> {
    p.globals()
        .filter(|g| g.ty.is_aggregate())
        .map(|g| g.name.clone())
        .collect()
}

const KINDS: [DataClauseKind; 4] = [
    DataClauseKind::Copy,
    DataClauseKind::CopyIn,
    DataClauseKind::CopyOut,
    DataClauseKind::Create,
];

/// Rewrite one pragma's directive in place via parse → edit → Display.
fn edit_pragma(
    p: &mut Program,
    blk: usize,
    idx: usize,
    pr: usize,
    edit: impl FnOnce(&mut Directive, &mut FuzzRng),
    rng: &mut FuzzRng,
) -> bool {
    let arrays = aggregate_names(p);
    let mut done = false;
    with_block_mut(p, blk, |b| {
        let Some(s) = b.stmts.get_mut(idx) else {
            return;
        };
        let Some(pragma) = s.pragmas.get_mut(pr) else {
            return;
        };
        let Ok(Some(mut d)) = parse_directive(&pragma.text, pragma.span) else {
            return;
        };
        let _ = &arrays; // captured for AddClause closures below
        edit(&mut d, rng);
        pragma.text = d.to_string();
        done = true;
    });
    done
}

/// Clause list of a data or compute directive.
fn clauses_mut(d: &mut Directive) -> Option<&mut Vec<DataClause>> {
    match d {
        Directive::Data(spec) => Some(&mut spec.clauses),
        Directive::Compute(spec) => Some(&mut spec.data),
        _ => None,
    }
}

/// Apply one op. Returns `false` when the op no longer matches the
/// program shape (e.g. after earlier edits in a stacked mutation).
pub(crate) fn apply_op(p: &mut Program, op: &MutOp, rng: &mut FuzzRng) -> bool {
    match *op {
        MutOp::DropStmt { blk, idx } => {
            let mut done = false;
            with_block_mut(p, blk, |b| {
                if idx < b.stmts.len() && b.stmts.len() > 1 {
                    b.stmts.remove(idx);
                    done = true;
                }
            });
            done
        }
        MutOp::SwapStmts { blk, idx } => {
            let mut done = false;
            with_block_mut(p, blk, |b| {
                if idx + 1 < b.stmts.len() {
                    b.stmts.swap(idx, idx + 1);
                    done = true;
                }
            });
            done
        }
        MutOp::DropPragma { blk, idx, pr } => {
            let mut done = false;
            with_block_mut(p, blk, |b| {
                if let Some(s) = b.stmts.get_mut(idx) {
                    if pr < s.pragmas.len() {
                        s.pragmas.remove(pr);
                        done = true;
                    }
                }
            });
            done
        }
        MutOp::PermuteClause { blk, idx, pr, cl } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, rng| {
                if let Some(cs) = clauses_mut(d) {
                    if let Some(c) = cs.get_mut(cl) {
                        c.kind = KINDS[rng.below(KINDS.len())];
                    }
                }
            },
            rng,
        ),
        MutOp::DropClause { blk, idx, pr, cl } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, _| {
                if let Some(cs) = clauses_mut(d) {
                    if cl < cs.len() {
                        cs.remove(cl);
                    }
                }
            },
            rng,
        ),
        MutOp::SwapClauses { blk, idx, pr } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, _| {
                if let Some(cs) = clauses_mut(d) {
                    cs.reverse();
                }
            },
            rng,
        ),
        MutOp::AddClause { blk, idx, pr } => {
            let arrays = aggregate_names(p);
            if arrays.is_empty() {
                return false;
            }
            let name = arrays[rng.below(arrays.len())].clone();
            let kind = KINDS[rng.below(KINDS.len())];
            edit_pragma(
                p,
                blk,
                idx,
                pr,
                move |d, _| {
                    if let Some(cs) = clauses_mut(d) {
                        cs.push(DataClause {
                            kind,
                            items: vec![DataItem::new(name)],
                        });
                    }
                },
                rng,
            )
        }
        MutOp::ToggleWorker { blk, idx, pr } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, _| {
                if let Directive::Compute(spec) = d {
                    spec.loop_spec.worker = !spec.loop_spec.worker;
                }
            },
            rng,
        ),
        MutOp::ToggleAsync { blk, idx, pr } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, _| {
                if let Directive::Compute(spec) = d {
                    spec.async_queue = match spec.async_queue {
                        Some(_) => None,
                        None => Some(1),
                    };
                }
            },
            rng,
        ),
        MutOp::FlipUpdate { blk, idx, pr } => edit_pragma(
            p,
            blk,
            idx,
            pr,
            |d, _| {
                if let Directive::Update(u) = d {
                    std::mem::swap(&mut u.host, &mut u.device);
                }
            },
            rng,
        ),
        MutOp::ShrinkBound { blk, idx } => {
            let delta = 1 + rng.below(3) as i64;
            let mut done = false;
            with_block_mut(p, blk, |b| {
                if let Some(s) = b.stmts.get_mut(idx) {
                    if let StmtKind::For { cond: Some(c), .. } = &mut s.kind {
                        if let ExprKind::Binary { rhs, .. } = &mut c.kind {
                            if let ExprKind::IntLit(v) = &mut rhs.kind {
                                if *v > 2 {
                                    *v = (*v - delta).max(2);
                                    done = true;
                                }
                            }
                        }
                    }
                }
            });
            done
        }
        MutOp::FlipType { item } => {
            let Some(Item::Global(g)) = p.items.get_mut(item) else {
                return false;
            };
            g.ty = match &g.ty {
                Ty::Array(ScalarTy::Double, d) => Ty::Array(ScalarTy::Float, d.clone()),
                Ty::Array(ScalarTy::Float, d) => Ty::Array(ScalarTy::Double, d.clone()),
                Ty::Scalar(ScalarTy::Double) => Ty::Scalar(ScalarTy::Float),
                Ty::Scalar(ScalarTy::Float) => Ty::Scalar(ScalarTy::Double),
                _ => return false,
            };
            true
        }
    }
}

/// Apply one random mutation to `src`. Returns `None` when the program
/// offers no mutation site or the chosen op no longer applies.
pub fn mutate_source(rng: &mut FuzzRng, src: &str) -> Option<String> {
    let mut p = parse(src).ok()?;
    let ops = collect_ops(&p);
    if ops.is_empty() {
        return None;
    }
    let op = ops[rng.below(ops.len())].clone();
    if !apply_op(&mut p, &op, rng) {
        return None;
    }
    Some(print_program(&p))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "double a[16];\nfloat b[16];\ndouble total;\nvoid main() {\n int i; int t; double tmp;\n for (i = 0; i < 16; i++) { a[i] = 1.0; }\n for (i = 0; i < 16; i++) { b[i] = (float)2.0; }\n total = 0.0;\n #pragma acc data copyin(a) copy(b)\n {\n for (t = 0; t < 3; t++) {\n #pragma acc kernels loop gang worker\n for (i = 0; i < 16; i++) { b[i] = (float)(a[i] * 0.5); }\n #pragma acc update host(b)\n total = total * 1.0;\n }\n }\n for (i = 0; i < 16; i++) { total = total + (double)b[i]; }\n}";

    #[test]
    fn mutants_stay_parseable() {
        let mut rng = FuzzRng::new(11);
        let mut produced = 0;
        for _ in 0..300 {
            if let Some(m) = mutate_source(&mut rng, SRC) {
                produced += 1;
                assert!(
                    openarc_minic::parse(&m).is_ok(),
                    "mutant failed to parse:\n{m}"
                );
            }
        }
        assert!(produced > 250, "only {produced}/300 mutations applied");
    }

    #[test]
    fn mutations_change_the_program() {
        let mut rng = FuzzRng::new(5);
        let mut changed = 0;
        for _ in 0..50 {
            if let Some(m) = mutate_source(&mut rng, SRC) {
                let p0 = parse(SRC).unwrap();
                let pm = parse(&m).unwrap();
                if openarc_minic::fingerprint_program(&p0)
                    != openarc_minic::fingerprint_program(&pm)
                {
                    changed += 1;
                }
            }
        }
        assert!(
            changed > 30,
            "only {changed}/50 mutants differ semantically"
        );
    }

    #[test]
    fn op_catalogue_covers_clause_and_bound_space() {
        let p = parse(SRC).unwrap();
        let ops = collect_ops(&p);
        let has = |pat: &str| ops.iter().any(|o| format!("{o:?}").starts_with(pat));
        assert!(has("PermuteClause"));
        assert!(has("DropClause"));
        assert!(has("AddClause"));
        assert!(has("SwapClauses"));
        assert!(has("ShrinkBound"));
        assert!(has("FlipUpdate"));
        assert!(has("ToggleWorker"));
        assert!(has("FlipType"));
        assert!(has("SwapStmts"));
        assert!(has("DropStmt"));
    }

    #[test]
    fn deterministic() {
        let a = mutate_source(&mut FuzzRng::new(77), SRC);
        let b = mutate_source(&mut FuzzRng::new(77), SRC);
        assert_eq!(a, b);
    }
}
