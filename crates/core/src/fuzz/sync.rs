//! Conservative static host/device synchronization check.
//!
//! The output-divergence oracle compares the instrumented GPU run's
//! observables against the CPU reference — but that comparison is only
//! meaningful when the program's data clauses actually publish every
//! GPU-written array back to the host before the host reads it. A
//! generated (or mutated) program with a `copyin`-only region whose
//! checksum reads the stale host copy is a *program* bug, not a pipeline
//! bug, and the §III-B checker's first-access placement intentionally
//! tolerates some of those shapes.
//!
//! [`statically_synced`] walks the AST with a small abstract state —
//! which arrays are stale on the host, which device copies mirror the
//! CPU-reference values — and returns `true` only when every host read
//! provably sees fresh data. To keep `copyout`/`create` programs in
//! scope it proves *total writes* for full-range map kernels
//! (`for (i = 0; i < N; i++) arr[i] = ...` with `N` equal to the
//! declared length). Anything it cannot reason about — nested data
//! regions, subarrays, exotic clause kinds, async/update interplay,
//! non-private scalar writes in kernels — makes it return `false`,
//! which merely skips the output oracle for that input; the verdict,
//! coherence and cross-config oracles still apply. False `false` loses
//! a little coverage; a false `true` would manufacture findings — so
//! every unknown resolves to `false`.

use openarc_minic::ast::{
    AssignOp, BinOp, Block, Expr, ExprKind, Item, LValue, Program, Stmt, StmtKind, Ty,
};
use openarc_openacc::{parse_directive, ComputeSpec, DataClause, DataClauseKind, Directive};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract machine state while walking one function body.
#[derive(Default, Clone, PartialEq)]
struct Sync {
    /// Declared element count per 1-D global array; `None` for arrays
    /// whose totality we will not reason about (multi-dimensional).
    dims: BTreeMap<String, Option<u64>>,
    /// Arrays whose host copy may differ from the CPU-reference value.
    stale: BTreeSet<String>,
    /// Inside a data region: the region's clause kind per array.
    frame: Option<BTreeMap<String, DataClauseKind>>,
    /// Arrays whose device copy provably equals the CPU-reference value
    /// over their whole extent (only meaningful inside a region).
    device_fresh: BTreeSet<String>,
    /// Arrays written by any kernel in the current region.
    gpu_written: BTreeSet<String>,
    /// An async construct launched in the current region.
    saw_async: bool,
}

impl Sync {
    fn is_array(&self, name: &str) -> bool {
        self.dims.contains_key(name)
    }
}

/// Result of the static sync check.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SyncVerdict {
    /// Beyond the model: the output oracle must be skipped entirely.
    Unknown,
    /// Modelled: every host *read* observes CPU-reference data, but the
    /// named arrays may be legitimately stale at program exit
    /// (`copyin`-only results never published) and must be excluded from
    /// the final-state comparison.
    Synced {
        /// Arrays possibly stale on the host when `main` returns.
        stale_at_exit: BTreeSet<String>,
    },
}

/// Walk `p` with the abstract host/device state. [`SyncVerdict::Synced`]
/// means every host read provably sees data identical to the CPU-only
/// reference execution; anything stale or unknowable along the way is
/// [`SyncVerdict::Unknown`].
pub(crate) fn sync_check(p: &Program) -> SyncVerdict {
    let mut dims = BTreeMap::new();
    for it in &p.items {
        if let Item::Global(d) = it {
            match &d.ty {
                Ty::Array(_, shape) if shape.len() == 1 => {
                    dims.insert(d.name.clone(), Some(shape[0]));
                }
                Ty::Array(..) | Ty::Ptr(_) => {
                    dims.insert(d.name.clone(), None);
                }
                _ => {}
            }
        }
    }
    let mut stale_at_exit = BTreeSet::new();
    for it in &p.items {
        if let Item::Func(f) = it {
            let mut st = Sync {
                dims: dims.clone(),
                ..Sync::default()
            };
            if !check_block(&f.body, &mut st) {
                return SyncVerdict::Unknown;
            }
            stale_at_exit.extend(st.stale);
        }
    }
    SyncVerdict::Synced { stale_at_exit }
}

/// `true` when any compute construct's `private` variable may be read
/// before the kernel body assigns it. An uninitialized private copy is
/// undefined behaviour in OpenACC — the sequential reference, the
/// simulated device, and the verify-mode replay may all legitimately
/// disagree on such a program, so the oracle rejects it outright.
pub(crate) fn uninit_private_read(p: &Program) -> bool {
    fn scan(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| {
            if let Some(Some(Directive::Compute(spec))) = acc_directive(s) {
                let privates: BTreeSet<String> = spec.loop_spec.private.iter().cloned().collect();
                if !privates.is_empty() {
                    let mut defined = BTreeSet::new();
                    if !definitely_initialized(s, &mut defined, &privates) {
                        return true;
                    }
                }
            }
            match &s.kind {
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => scan(&body.stmts),
                StmtKind::Block(b) => scan(&b.stmts),
                StmtKind::If {
                    then_blk, else_blk, ..
                } => scan(&then_blk.stmts) || else_blk.as_ref().is_some_and(|b| scan(&b.stmts)),
                _ => false,
            }
        })
    }
    p.items.iter().any(|it| match it {
        Item::Func(f) => scan(&f.body.stmts),
        Item::Global(_) => false,
    })
}

/// Definite-assignment walk for `private` vars: returns `false` when a
/// var in `privates` may be read while absent from `defined`. Nested
/// loops and branches are conservative — their assignments never promote
/// out (the body may run zero times; only one branch runs).
fn definitely_initialized(
    s: &Stmt,
    defined: &mut BTreeSet<String>,
    privates: &BTreeSet<String>,
) -> bool {
    let expr_ok = |e: &Expr, defined: &BTreeSet<String>| {
        e.reads()
            .iter()
            .all(|v| !privates.contains(v) || defined.contains(v))
    };
    match &s.kind {
        StmtKind::Assign { target, op, value } => {
            if !expr_ok(value, defined) {
                return false;
            }
            match target {
                LValue::Var(n) => {
                    if *op != AssignOp::Set && privates.contains(n) && !defined.contains(n) {
                        return false;
                    }
                    defined.insert(n.clone());
                }
                LValue::Index { base, indices } => {
                    if !indices.iter().all(|ix| expr_ok(ix, defined)) {
                        return false;
                    }
                    if *op != AssignOp::Set && privates.contains(base) && !defined.contains(base) {
                        return false;
                    }
                }
            }
            true
        }
        StmtKind::Decl(d) => {
            if let Some(e) = &d.init {
                if !expr_ok(e, defined) {
                    return false;
                }
                defined.insert(d.name.clone());
            }
            true
        }
        StmtKind::Expr(e) => expr_ok(e, defined),
        StmtKind::Return(e) => e.as_ref().is_none_or(|e| expr_ok(e, defined)),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            if !expr_ok(cond, defined) {
                return false;
            }
            let mut t = defined.clone();
            if !then_blk
                .stmts
                .iter()
                .all(|s| definitely_initialized(s, &mut t, privates))
            {
                return false;
            }
            let mut e = defined.clone();
            if let Some(b) = else_blk {
                if !b
                    .stmts
                    .iter()
                    .all(|s| definitely_initialized(s, &mut e, privates))
                {
                    return false;
                }
            }
            // Exactly one branch ran: only the intersection is definite.
            *defined = t.intersection(&e).cloned().collect();
            true
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                if !definitely_initialized(i, defined, privates) {
                    return false;
                }
            }
            if let Some(c) = cond {
                if !expr_ok(c, defined) {
                    return false;
                }
            }
            let mut inner = defined.clone();
            if !body
                .stmts
                .iter()
                .all(|s| definitely_initialized(s, &mut inner, privates))
            {
                return false;
            }
            if let Some(stp) = step {
                if !definitely_initialized(stp, &mut inner, privates) {
                    return false;
                }
            }
            true // zero-trip possible: body assignments don't promote
        }
        StmtKind::While { cond, body } => {
            if !expr_ok(cond, defined) {
                return false;
            }
            let mut inner = defined.clone();
            body.stmts
                .iter()
                .all(|s| definitely_initialized(s, &mut inner, privates))
        }
        StmtKind::Block(b) => b
            .stmts
            .iter()
            .all(|s| definitely_initialized(s, defined, privates)),
        StmtKind::Break | StmtKind::Continue => true,
    }
}

fn check_block(b: &Block, st: &mut Sync) -> bool {
    b.stmts.iter().all(|s| check_stmt(s, st))
}

/// Parse the statement's acc pragmas; `None` for plain host statements,
/// `Some(None)` when a directive exists but is one we refuse to model.
fn acc_directive(s: &Stmt) -> Option<Option<Directive>> {
    for pr in &s.pragmas {
        match parse_directive(&pr.text, pr.span) {
            Ok(Some(d)) => return Some(Some(d)),
            Ok(None) => continue,
            Err(_) => return Some(None),
        }
    }
    None
}

fn check_stmt(s: &Stmt, st: &mut Sync) -> bool {
    match acc_directive(s) {
        None => check_host_stmt(s, st),
        Some(None) => false,
        Some(Some(d)) => match d {
            Directive::Data(spec) => {
                let StmtKind::Block(body) = &s.kind else {
                    return false;
                };
                check_data_region(&spec.clauses, body, st)
            }
            Directive::Compute(spec) => check_compute(&spec, s, st),
            Directive::Update(spec) => {
                // Async update, or an update racing an async kernel, is
                // beyond the model.
                if spec.async_queue.is_some() || st.saw_async {
                    return false;
                }
                if st.frame.is_none() {
                    return false; // update outside any region: not modelled
                }
                for v in &spec.host {
                    if st.device_fresh.contains(v) {
                        st.stale.remove(v);
                    } else {
                        st.stale.insert(v.clone());
                    }
                }
                for v in &spec.device {
                    if st.stale.contains(v) {
                        return false; // pushing a stale host copy down
                    }
                    st.device_fresh.insert(v.clone());
                }
                true
            }
            Directive::Wait(..) => true,
            // declare / cache / host_data / orphaned loop at host level:
            // outside the generator's grammar, refuse to model.
            _ => false,
        },
    }
}

fn check_data_region(clauses: &[DataClause], body: &Block, st: &mut Sync) -> bool {
    if st.frame.is_some() {
        return false; // nested data regions: not modelled
    }
    let mut kinds = BTreeMap::new();
    for c in clauses {
        for item in &c.items {
            if item.bounds.is_some() {
                return false; // subarrays: not modelled
            }
            kinds.insert(item.name.clone(), c.kind);
        }
    }
    // Region entry: copy / copyin read the host copy into the device.
    let mut fresh = BTreeSet::new();
    for (name, kind) in &kinds {
        match kind {
            DataClauseKind::Copy | DataClauseKind::CopyIn => {
                if st.stale.contains(name) {
                    return false; // uploading a stale host copy
                }
                fresh.insert(name.clone());
            }
            DataClauseKind::CopyOut | DataClauseKind::Create => {}
            _ => return false, // present / deviceptr / ... : not modelled
        }
    }
    st.frame = Some(kinds);
    st.device_fresh = fresh;
    st.gpu_written.clear();
    st.saw_async = false;
    if !check_block(body, st) {
        return false;
    }
    // Region exit.
    let kinds = st.frame.take().expect("set above");
    for (name, kind) in &kinds {
        match kind {
            DataClauseKind::Copy | DataClauseKind::CopyOut => {
                if st.device_fresh.contains(name) {
                    st.stale.remove(name);
                } else {
                    // Untouched or partially written device memory
                    // publishes to the host: contents unknown.
                    st.stale.insert(name.clone());
                }
            }
            DataClauseKind::CopyIn | DataClauseKind::Create => {
                // Device copy discarded; if a kernel advanced it, the CPU
                // reference moved on without the host copy.
                if st.gpu_written.contains(name) {
                    st.stale.insert(name.clone());
                }
            }
            _ => return false,
        }
    }
    st.device_fresh.clear();
    st.gpu_written.clear();
    st.saw_async = false;
    true
}

fn check_compute(spec: &ComputeSpec, s: &Stmt, st: &mut Sync) -> bool {
    if !matches!(s.kind, StmtKind::For { .. }) {
        return false; // compute pragma on a non-loop: not modelled
    }
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut scalar_writes = BTreeSet::new();
    collect_accesses(s, &mut reads, &mut writes, &mut scalar_writes);
    let (arr_reads, arr_writes): (BTreeSet<&String>, BTreeSet<&String>) = (
        reads.iter().filter(|v| st.is_array(v)).collect(),
        writes.iter().filter(|v| st.is_array(v)).collect(),
    );

    // Scalar writes must be private, reduction, or loop-induction.
    let mut benign: BTreeSet<String> = spec.loop_spec.private.iter().cloned().collect();
    benign.extend(spec.loop_spec.firstprivate.iter().cloned());
    for r in &spec.loop_spec.reductions {
        benign.extend(r.vars.iter().cloned());
    }
    collect_induction_vars(s, &mut benign);
    if scalar_writes.iter().any(|v| !benign.contains(v)) {
        return false;
    }
    // Scalar reads of host scalars are passed by value — always fresh
    // (scalars never enter `stale`); nothing to check for them.

    if spec.async_queue.is_some() {
        if !spec.loop_spec.reductions.is_empty() {
            return false; // async reduction sync point: not modelled
        }
        if st.frame.is_none() {
            return false; // async without a region to sync at
        }
        st.saw_async = true;
    }

    // The construct's own data clauses act as a one-statement region.
    let mut own = BTreeMap::new();
    for c in &spec.data {
        for item in &c.items {
            if item.bounds.is_some() {
                return false;
            }
            if st
                .frame
                .as_ref()
                .is_some_and(|f| f.contains_key(&item.name))
            {
                return false; // construct clause shadowing a region clause
            }
            own.insert(item.name.clone(), c.kind);
        }
    }
    let kind_of = |name: &String| -> Option<Option<DataClauseKind>> {
        // Outer None: array is ungoverned inside a region (refuse);
        // inner None: no clause anywhere — the translator's implicit
        // full-copy path (the "naive" semantics).
        if let Some(k) = own.get(name) {
            return Some(Some(*k));
        }
        match &st.frame {
            Some(f) => f.get(name).map(|k| Some(*k)),
            None => Some(None),
        }
    };

    // Reads: the device copy must hold the CPU-reference value.
    for name in &arr_reads {
        let Some(kind) = kind_of(name) else {
            return false; // in a region but in no clause: not modelled
        };
        match kind {
            // Implicit copy or construct-level copy/copyin upload the
            // host copy at launch.
            None | Some(DataClauseKind::Copy) | Some(DataClauseKind::CopyIn)
                if own.contains_key(*name) || st.frame.is_none() =>
            {
                if st.stale.contains(*name) {
                    return false; // uploading a stale host copy
                }
            }
            // Region-resident: the device copy must be proven fresh.
            Some(DataClauseKind::Copy) | Some(DataClauseKind::CopyIn) => {
                if !st.device_fresh.contains(*name) {
                    return false;
                }
            }
            // create/copyout reads see device-alloc garbage unless an
            // earlier kernel made the whole extent fresh.
            Some(DataClauseKind::CopyOut) | Some(DataClauseKind::Create) => {
                if !st.device_fresh.contains(*name) {
                    return false;
                }
            }
            Some(_) => return false,
            // `None` only occurs with no enclosing region, which the
            // first arm's guard always covers.
            None => return false,
        }
    }

    // Inputs are all fresh from here on, so a total write leaves the
    // written array fresh too (deterministic kernel over fresh inputs).
    let totals = total_writes(s, &st.dims);
    for name in &arr_writes {
        let Some(kind) = kind_of(name) else {
            return false;
        };
        let total = totals.contains(*name);
        if !own.contains_key(*name) && st.frame.is_some() {
            // Governed by the enclosing region: the device advances, the
            // host copy is immediately behind (until region exit or an
            // update host republishes it).
            st.gpu_written.insert((*name).clone());
            st.stale.insert((*name).clone());
            if total {
                st.device_fresh.insert((*name).clone());
            } else if !st.device_fresh.contains(*name) {
                // Partial write over unknown device contents: stays unknown.
            }
        } else {
            // Construct-level (or implicit) data movement resolves at the
            // end of this statement.
            match kind {
                None | Some(DataClauseKind::Copy) => {
                    st.stale.remove(*name); // copied back on exit
                }
                Some(DataClauseKind::CopyOut) => {
                    if total {
                        st.stale.remove(*name);
                    } else {
                        st.stale.insert((*name).clone()); // partial garbage
                    }
                }
                Some(DataClauseKind::CopyIn) | Some(DataClauseKind::Create) => {
                    st.stale.insert((*name).clone()); // result discarded
                }
                Some(_) => return false,
            }
        }
    }
    // Reduction results sync back at the (synchronous) construct end.
    true
}

/// Host statement: every read must be of non-stale data.
fn check_host_stmt(s: &Stmt, st: &mut Sync) -> bool {
    match &s.kind {
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                if !check_stmt(i, st) {
                    return false;
                }
            }
            if let Some(c) = cond {
                if reads_stale(c, st) {
                    return false;
                }
            }
            // A loop body runs zero or more times: iterate the abstract
            // state to a fixed point so effects of iteration N are visible
            // when judging iteration N+1.
            for _ in 0..4 {
                let before = st.clone();
                if !check_block(body, st) {
                    return false;
                }
                if let Some(stp) = step {
                    if !check_stmt(stp, st) {
                        return false;
                    }
                }
                if let Some(c) = cond {
                    if reads_stale(c, st) {
                        return false;
                    }
                }
                if *st == before {
                    return true;
                }
            }
            false // did not stabilize: refuse to model
        }
        StmtKind::While { cond, body } => {
            if reads_stale(cond, st) {
                return false;
            }
            for _ in 0..4 {
                let before = st.clone();
                if !check_block(body, st) {
                    return false;
                }
                if reads_stale(cond, st) {
                    return false;
                }
                if *st == before {
                    return true;
                }
            }
            false
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            if reads_stale(cond, st) {
                return false;
            }
            // Either branch may run: require both clean, merge
            // conservatively.
            let mut t = st.clone();
            if !check_block(then_blk, &mut t) {
                return false;
            }
            let mut e = st.clone();
            if let Some(b) = else_blk {
                if !check_block(b, &mut e) {
                    return false;
                }
            }
            st.stale = t.stale.union(&e.stale).cloned().collect();
            st.device_fresh = t
                .device_fresh
                .intersection(&e.device_fresh)
                .cloned()
                .collect();
            st.gpu_written = t.gpu_written.union(&e.gpu_written).cloned().collect();
            st.saw_async = t.saw_async || e.saw_async;
            true
        }
        StmtKind::Block(b) => check_block(b, st),
        StmtKind::Decl(d) => {
            if st.is_array(&d.name) || d.ty.is_aggregate() {
                return false; // shadowing / local aggregates: not modelled
            }
            d.init.as_ref().is_none_or(|e| !reads_stale(e, st))
        }
        StmtKind::Expr(e) => !reads_stale(e, st),
        StmtKind::Assign { target, op, value } => {
            if reads_stale(value, st) {
                return false;
            }
            match target {
                LValue::Var(n) => {
                    if *op != AssignOp::Set && st.stale.contains(n) {
                        return false;
                    }
                }
                LValue::Index { base, indices } => {
                    for ix in indices {
                        if reads_stale(ix, st) {
                            return false;
                        }
                    }
                    // Compound ops read the target element too.
                    if *op != AssignOp::Set && st.stale.contains(base) {
                        return false;
                    }
                    // An element write leaves the rest of a stale array
                    // stale — no state change either way.
                }
            }
            // A host write to region-mapped data leaves the device copy
            // behind: a later kernel read sees the entry snapshot, and a
            // copy/copyout exit clobbers this write with it.
            if st
                .frame
                .as_ref()
                .is_some_and(|f| f.contains_key(target.base()))
            {
                st.device_fresh.remove(target.base());
            }
            true
        }
        StmtKind::Return(e) => e.as_ref().is_none_or(|e| !reads_stale(e, st)),
        StmtKind::Break | StmtKind::Continue => true,
    }
}

fn reads_stale(e: &Expr, st: &Sync) -> bool {
    e.reads().iter().any(|v| st.stale.contains(v))
}

/// All array reads/writes and scalar writes inside a kernel loop nest.
fn collect_accesses(
    s: &Stmt,
    reads: &mut BTreeSet<String>,
    writes: &mut BTreeSet<String>,
    scalar_writes: &mut BTreeSet<String>,
) {
    let on_expr = |e: &Expr, reads: &mut BTreeSet<String>| {
        for v in e.reads() {
            reads.insert(v);
        }
    };
    match &s.kind {
        StmtKind::Assign { target, op, value } => {
            on_expr(value, reads);
            match target {
                LValue::Var(n) => {
                    scalar_writes.insert(n.clone());
                    if *op != AssignOp::Set {
                        reads.insert(n.clone());
                    }
                }
                LValue::Index { base, indices } => {
                    writes.insert(base.clone());
                    for ix in indices {
                        on_expr(ix, reads);
                    }
                    if *op != AssignOp::Set {
                        reads.insert(base.clone());
                    }
                }
            }
        }
        StmtKind::Decl(d) => {
            if let Some(e) = &d.init {
                on_expr(e, reads);
            }
        }
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => on_expr(e, reads),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            on_expr(cond, reads);
            for t in &then_blk.stmts {
                collect_accesses(t, reads, writes, scalar_writes);
            }
            if let Some(b) = else_blk {
                for t in &b.stmts {
                    collect_accesses(t, reads, writes, scalar_writes);
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            for part in [init, step].into_iter().flatten() {
                collect_accesses(part, reads, writes, scalar_writes);
            }
            if let Some(c) = cond {
                on_expr(c, reads);
            }
            for t in &body.stmts {
                collect_accesses(t, reads, writes, scalar_writes);
            }
        }
        StmtKind::While { cond, body } => {
            on_expr(cond, reads);
            for t in &body.stmts {
                collect_accesses(t, reads, writes, scalar_writes);
            }
        }
        StmtKind::Block(b) => {
            for t in &b.stmts {
                collect_accesses(t, reads, writes, scalar_writes);
            }
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

/// Induction variables of a kernel loop nest: every `for`'s init/step
/// target. These are per-thread after translation, so writes are benign.
fn collect_induction_vars(s: &Stmt, out: &mut BTreeSet<String>) {
    match &s.kind {
        StmtKind::For {
            init, step, body, ..
        } => {
            for part in [init, step].into_iter().flatten() {
                match &part.kind {
                    StmtKind::Assign {
                        target: LValue::Var(n),
                        ..
                    } => {
                        out.insert(n.clone());
                    }
                    StmtKind::Decl(d) => {
                        out.insert(d.name.clone());
                    }
                    _ => {}
                }
            }
            for t in &body.stmts {
                collect_induction_vars(t, out);
            }
        }
        StmtKind::Block(b) => {
            for t in &b.stmts {
                collect_induction_vars(t, out);
            }
        }
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            for t in &then_blk.stmts {
                collect_induction_vars(t, out);
            }
            if let Some(b) = else_blk {
                for t in &b.stmts {
                    collect_induction_vars(t, out);
                }
            }
        }
        _ => {}
    }
}

/// Arrays provably written over their entire declared extent by the
/// kernel: the loop is `for (v = 0; v < N; v += 1)` with `N` equal to the
/// declared length, and a top-level body statement is `arr[v] = ...`
/// (plain `=`, unconditional).
fn total_writes(s: &Stmt, dims: &BTreeMap<String, Option<u64>>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let StmtKind::For {
        init,
        cond,
        step,
        body,
    } = &s.kind
    else {
        return out;
    };
    // Induction variable and zero start.
    let var = match init.as_deref().map(|i| &i.kind) {
        Some(StmtKind::Assign {
            target: LValue::Var(n),
            op: AssignOp::Set,
            value,
        }) if matches!(value.kind, ExprKind::IntLit(0)) => n.clone(),
        Some(StmtKind::Decl(d)) => match &d.init {
            Some(e) if matches!(e.kind, ExprKind::IntLit(0)) => d.name.clone(),
            _ => return out,
        },
        _ => return out,
    };
    // Strict upper bound.
    let bound = match cond.as_ref().map(|c| &c.kind) {
        Some(ExprKind::Binary {
            op: BinOp::Lt,
            lhs,
            rhs,
        }) => match (&lhs.kind, &rhs.kind) {
            (ExprKind::Var(v), ExprKind::IntLit(b)) if *v == var && *b > 0 => *b as u64,
            _ => return out,
        },
        _ => return out,
    };
    // Unit step.
    let unit = match step.as_deref().map(|p| &p.kind) {
        Some(StmtKind::Assign {
            target: LValue::Var(n),
            op: AssignOp::Add,
            value,
        }) => *n == var && matches!(value.kind, ExprKind::IntLit(1)),
        Some(StmtKind::Assign {
            target: LValue::Var(n),
            op: AssignOp::Set,
            value,
        }) => {
            *n == var
                && matches!(
                    &value.kind,
                    ExprKind::Binary { op: BinOp::Add, lhs, rhs }
                        if matches!(&lhs.kind, ExprKind::Var(v) if v == &var)
                            && matches!(rhs.kind, ExprKind::IntLit(1))
                )
        }
        _ => false,
    };
    if !unit {
        return out;
    }
    for t in &body.stmts {
        if let StmtKind::Assign {
            target: LValue::Index { base, indices },
            op: AssignOp::Set,
            ..
        } = &t.kind
        {
            if indices.len() == 1
                && matches!(&indices[0].kind, ExprKind::Var(v) if *v == var)
                && dims.get(base) == Some(&Some(bound))
            {
                out.insert(base.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::parse;

    fn synced(src: &str) -> bool {
        matches!(
            sync_check(&parse(src).expect("parses")),
            SyncVerdict::Synced { .. }
        )
    }

    fn stale_at_exit(src: &str) -> BTreeSet<String> {
        match sync_check(&parse(src).expect("parses")) {
            SyncVerdict::Synced { stale_at_exit } => stale_at_exit,
            SyncVerdict::Unknown => panic!("expected a modelled program"),
        }
    }

    #[test]
    fn copy_region_is_synced() {
        assert!(synced(
            "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copy(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}"
        ));
    }

    #[test]
    fn copyin_then_host_read_is_unsynced() {
        assert!(!synced(
            "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copyin(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}"
        ));
    }

    #[test]
    fn copyin_without_host_read_is_synced_but_stale_at_exit() {
        // The stale array is never *read* again, so the walk succeeds —
        // but the final-state comparison must skip `a`, whose host copy
        // legitimately never sees the GPU writes.
        let src = "double a[8];\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copyin(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n}";
        assert!(synced(src));
        assert_eq!(
            stale_at_exit(src).into_iter().collect::<Vec<_>>(),
            vec!["a".to_string()]
        );
    }

    #[test]
    fn host_write_in_region_is_clobbered_by_copyout() {
        // The host loop mutates `a` while it is region-mapped; the
        // `copy(a)` exit copies the entry snapshot back over those
        // writes, so the final host copy diverges from the CPU
        // reference and must be excluded from the comparison.
        let src = "float a[8];\nvoid main() {\n int i;\n #pragma acc data copy(a)\n {\n for (i = 0; i < 2; i++) { a[i] = a[i] + 1.0; }\n }\n}";
        assert!(synced(src));
        assert_eq!(
            stale_at_exit(src).into_iter().collect::<Vec<_>>(),
            vec!["a".to_string()]
        );
    }

    #[test]
    fn kernel_read_after_host_write_in_region_is_unsynced() {
        // Host write leaves the device copy at the entry snapshot; the
        // kernel then reads that stale device data.
        assert!(!synced(
            "double a[8];\ndouble b[8];\nvoid main() {\n int i;\n #pragma acc data copy(a) copy(b)\n {\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { b[i] = a[i]; }\n }\n}"
        ));
    }

    #[test]
    fn copy_region_leaves_nothing_stale_at_exit() {
        assert!(stale_at_exit(
            "double a[8];\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copy(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n}"
        )
        .is_empty());
    }

    #[test]
    fn copyout_total_write_is_synced() {
        // The map kernel provably covers b's whole extent, so copyout
        // publishes fully fresh data.
        assert!(synced(
            "double a[8];\ndouble b[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copyin(a) copyout(b)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { b[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + b[i]; }\n}"
        ));
    }

    #[test]
    fn copyout_partial_write_is_unsynced() {
        // Stencil writes 1..n-1 only: copyout publishes unknown memory at
        // the edges.
        assert!(!synced(
            "double a[8];\ndouble b[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copyin(a) copyout(b)\n {\n #pragma acc kernels loop gang\n for (i = 1; i < 7; i++) { b[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + b[i]; }\n}"
        ));
    }

    #[test]
    fn create_read_in_kernel_is_unsynced() {
        // Kernel reads b which was only created: device garbage.
        assert!(!synced(
            "double a[8];\ndouble b[8];\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { b[i] = 1.0; }\n #pragma acc data copy(a) create(b)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = b[i]; }\n }\n}"
        ));
    }

    #[test]
    fn create_total_write_then_read_is_synced() {
        // First kernel fills b completely; the second may read it.
        assert!(synced(
            "double a[8];\ndouble b[8];\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copy(a) create(b)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { b[i] = a[i] + 1.0; }\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = b[i] * 2.0; }\n }\n}"
        ));
    }

    #[test]
    fn update_host_republishes() {
        assert!(synced(
            "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc data copy(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n #pragma acc update host(a)\n }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}"
        ));
    }

    #[test]
    fn no_region_implicit_copies_are_synced() {
        assert!(synced(
            "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] + 1.0; }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}"
        ));
    }

    #[test]
    fn iterated_region_in_loop_reaches_fixed_point() {
        // The t-loop wraps a whole region; state must stabilize.
        assert!(synced(
            "double a[8];\nvoid main() {\n int i; int t;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n for (t = 0; t < 3; t++) {\n #pragma acc data copy(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n }\n}"
        ));
    }

    fn uninit(src: &str) -> bool {
        uninit_private_read(&parse(src).expect("parses"))
    }

    #[test]
    fn private_read_before_write_is_uninit() {
        // `tmp` accumulates from an uninitialized private copy — UB.
        assert!(uninit(
            "double a[8];\ndouble c[8];\nvoid main() {\n int i; int j; double tmp;\n #pragma acc kernels loop gang private(tmp)\n for (i = 0; i < 8; i++) {\n for (j = 0; j < 2; j++) { tmp = tmp + c[j]; }\n a[i] = tmp;\n }\n}"
        ));
    }

    #[test]
    fn private_written_before_read_is_defined() {
        assert!(!uninit(
            "double a[8];\ndouble c[8];\nvoid main() {\n int i; int j; double tmp;\n #pragma acc kernels loop gang private(tmp)\n for (i = 0; i < 8; i++) {\n tmp = 0.0;\n for (j = 0; j < 2; j++) { tmp = tmp + c[j]; }\n a[i] = tmp;\n }\n}"
        ));
    }

    #[test]
    fn private_init_inside_branch_does_not_promote() {
        // Only the then-branch assigns tmp: the read after the `if` may
        // still see the uninitialized copy.
        assert!(uninit(
            "double a[8];\nvoid main() {\n int i; double tmp;\n #pragma acc kernels loop gang private(tmp)\n for (i = 0; i < 8; i++) {\n if (i > 2) { tmp = 1.0; }\n a[i] = tmp;\n }\n}"
        ));
    }

    #[test]
    fn private_init_in_both_branches_promotes() {
        assert!(!uninit(
            "double a[8];\nvoid main() {\n int i; double tmp;\n #pragma acc kernels loop gang private(tmp)\n for (i = 0; i < 8; i++) {\n if (i > 2) { tmp = 1.0; } else { tmp = 2.0; }\n a[i] = tmp;\n }\n}"
        ));
    }

    #[test]
    fn firstprivate_read_is_not_uninit() {
        // firstprivate copies are initialized from the host value.
        assert!(!uninit(
            "double a[8];\nvoid main() {\n int i; double tmp;\n tmp = 3.0;\n #pragma acc kernels loop gang firstprivate(tmp)\n for (i = 0; i < 8; i++) { a[i] = tmp; }\n}"
        ));
    }

    #[test]
    fn reduction_is_synced() {
        assert!(synced(
            "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n total = 0.0;\n #pragma acc data copyin(a)\n {\n #pragma acc kernels loop gang reduction(+:total)\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n }\n}"
        ));
    }
}
