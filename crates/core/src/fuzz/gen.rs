//! Grammar-aware program generator.
//!
//! Emits MiniC programs in the shape of the suite benchmarks — global
//! arrays, an init phase, an optional `data` region around an iteration
//! loop of 1–3 OpenACC kernels, optional `update` round trips, and a host
//! checksum — drawn entirely from a [`FuzzRng`]. Every production in the
//! grammar prints syntax the MiniC parser accepts, so generated programs
//! are parseable *by construction*; whether they survive semantic checks,
//! directive validation, and coherent execution is exactly what the fuzzer
//! explores.
//!
//! The generator is type-disciplined (int/float/double arrays are read
//! through casts matching the destination element type) and keeps every
//! array index inside the declared bounds, so a program that reaches the
//! simulator is race-free and in-bounds by construction — any divergence
//! the oracle then observes is a pipeline bug, not an artifact of a
//! nonsense input.

use super::rng::FuzzRng;

/// Element type of a generated array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ElemTy {
    Int,
    Float,
    Double,
}

impl ElemTy {
    fn kw(self) -> &'static str {
        match self {
            ElemTy::Int => "int",
            ElemTy::Float => "float",
            ElemTy::Double => "double",
        }
    }
}

struct Arr {
    name: &'static str,
    ty: ElemTy,
}

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// A `src[idx]` read coerced to double.
fn read_d(a: &Arr, idx: &str) -> String {
    match a.ty {
        ElemTy::Double => format!("{}[{}]", a.name, idx),
        _ => format!("(double){}[{}]", a.name, idx),
    }
}

/// One double-typed term over the available arrays.
fn term_d(rng: &mut FuzzRng, arrs: &[Arr], idx: &str, stencil: bool) -> String {
    let a = &arrs[rng.below(arrs.len())];
    let ix = if stencil && rng.chance(50) {
        if rng.chance(50) {
            format!("{idx} - 1")
        } else {
            format!("{idx} + 1")
        }
    } else {
        idx.to_string()
    };
    match rng.below(4) {
        0 => format!(
            "{} * {}",
            read_d(a, &ix),
            rng.pick(&["0.5", "0.25", "1.5", "2.0"])
        ),
        1 => format!("{} + {}", read_d(a, &ix), rng.pick(&["1.0", "0.5", "3.0"])),
        2 => format!("(double){idx} * 0.125 + {}", read_d(a, &ix)),
        _ => read_d(a, &ix),
    }
}

/// A full double-typed right-hand side; sometimes a ternary.
fn rhs_d(rng: &mut FuzzRng, arrs: &[Arr], idx: &str, stencil: bool) -> String {
    let t1 = term_d(rng, arrs, idx, stencil);
    if rng.chance(15) {
        let t2 = term_d(rng, arrs, idx, stencil);
        let guard = &arrs[rng.below(arrs.len())];
        return format!("({} > 1.0) ? ({t1}) : ({t2})", read_d(guard, idx));
    }
    if rng.chance(55) {
        let t2 = term_d(rng, arrs, idx, stencil);
        format!("{t1} {} {t2}", rng.pick(&["+", "-", "*"]))
    } else {
        t1
    }
}

/// Cast a double-typed rhs to the destination element type.
fn store(dst: &Arr, idx: &str, rhs: &str) -> String {
    match dst.ty {
        ElemTy::Double => format!("{}[{}] = {};", dst.name, idx, rhs),
        ElemTy::Float => format!("{}[{}] = (float)({});", dst.name, idx, rhs),
        ElemTy::Int => format!("{}[{}] = (int)({});", dst.name, idx, rhs),
    }
}

/// One kernel loop: the pragma line plus the loop text, indented by 8.
fn kernel(rng: &mut FuzzRng, arrs: &[Arr], n: usize, async_q: Option<i64>) -> String {
    let dst = &arrs[rng.below(arrs.len())];
    let mut spec = String::from("acc kernels loop gang");
    if rng.chance(50) {
        spec.push_str(" worker");
    }
    if let Some(q) = async_q {
        spec.push_str(&format!(" async({q})"));
    }
    let form = rng.below(10);
    if form < 4 {
        // Map over the full range.
        let body = store(dst, "i", &rhs_d(rng, arrs, "i", false));
        format!("        #pragma {spec}\n        for (i = 0; i < {n}; i++) {{ {body} }}")
    } else if form < 7 {
        // 3-point stencil over the interior.
        let body = store(dst, "i", &rhs_d(rng, arrs, "i", true));
        format!(
            "        #pragma {spec}\n        for (i = 1; i < {}; i++) {{ {body} }}",
            n - 1
        )
    } else if form < 9 {
        // Inner accumulation into a privatized temporary.
        if rng.chance(50) {
            spec.push_str(" private(tmp)");
        }
        let m = 2 + rng.below(n - 1);
        let inner = term_d(rng, arrs, "j", false);
        let out = store(dst, "i", "tmp");
        format!(
            "        #pragma {spec}\n        for (i = 0; i < {n}; i++) {{\n            tmp = 0.0;\n            for (j = 0; j < {m}; j++) {{ tmp = tmp + ({inner}) * 0.5; }}\n            {out}\n        }}"
        )
    } else {
        // Scalar reduction into the checksum global.
        spec.push_str(" reduction(+:total)");
        let t = term_d(rng, arrs, "i", false);
        format!(
            "        #pragma {spec}\n        for (i = 0; i < {n}; i++) {{ total = total + ({t}); }}"
        )
    }
}

/// Host-side increment of one array element, matching its type.
fn host_bump(a: &Arr, idx: &str) -> String {
    match a.ty {
        ElemTy::Double => format!("{}[{idx}] = {}[{idx}] + 1.0;", a.name, a.name),
        ElemTy::Float => format!("{}[{idx}] = {}[{idx}] + (float)1.0;", a.name, a.name),
        ElemTy::Int => format!("{}[{idx}] = {}[{idx}] + 1;", a.name, a.name),
    }
}

/// Generate one program from the rng.
pub fn generate(rng: &mut FuzzRng) -> String {
    let n = *rng.pick(&[8usize, 12, 16, 24]);
    let n_arr = 2 + rng.below(3);
    let arrs: Vec<Arr> = (0..n_arr)
        .map(|k| Arr {
            name: NAMES[k],
            ty: match rng.below(10) {
                0..=4 => ElemTy::Double,
                5..=7 => ElemTy::Float,
                _ => ElemTy::Int,
            },
        })
        .collect();
    let iters = 1 + rng.below(3);

    let mut out = String::new();
    for a in &arrs {
        out.push_str(&format!("{} {}[{}];\n", a.ty.kw(), a.name, n));
    }
    out.push_str("double total;\n");
    out.push_str("void main() {\n    int i; int j; int t; double tmp;\n");

    // Init phase: one loop per array; occasionally a while-loop spelling.
    for (k, a) in arrs.iter().enumerate() {
        let init = match a.ty {
            ElemTy::Double => format!("{}[i] = (double)(i % {}) * 0.5 + 1.0;", a.name, 3 + k),
            ElemTy::Float => format!(
                "{}[i] = (float)((double)(i % {}) * 0.5 + 1.0);",
                a.name,
                3 + k
            ),
            ElemTy::Int => format!("{}[i] = i % {} + 1;", a.name, 3 + k),
        };
        if rng.chance(10) {
            out.push_str(&format!(
                "    i = 0;\n    while (i < {n}) {{ {init} i = i + 1; }}\n"
            ));
        } else {
            out.push_str(&format!("    for (i = 0; i < {n}; i++) {{ {init} }}\n"));
        }
    }
    out.push_str("    total = 0.0;\n");

    // Data region clauses: one clause kind per array.
    let with_data = rng.chance(80);
    if with_data {
        let mut clauses = String::new();
        for a in &arrs {
            let kind = match rng.below(10) {
                0..=3 => "copy",
                4..=6 => "copyin",
                7 => "copyout",
                _ => "create",
            };
            clauses.push_str(&format!(" {kind}({})", a.name));
        }
        out.push_str(&format!("    #pragma acc data{clauses}\n    {{\n"));
    }

    // Iteration loop with 1–3 kernels, optional update round trip.
    let use_async = rng.chance(15);
    out.push_str(&format!("    for (t = 0; t < {iters}; t++) {{\n"));
    let n_kern = 1 + rng.below(3);
    for _ in 0..n_kern {
        let q = if use_async && rng.chance(60) {
            Some(1 + rng.below(2) as i64)
        } else {
            None
        };
        out.push_str(&kernel(rng, &arrs, n, q));
        out.push('\n');
    }
    if rng.chance(25) {
        let x = &arrs[rng.below(arrs.len())];
        out.push_str(&format!("        #pragma acc update host({})\n", x.name));
        out.push_str(&format!(
            "        for (i = 0; i < {n}; i++) {{ {} }}\n",
            host_bump(x, "i")
        ));
        out.push_str(&format!("        #pragma acc update device({})\n", x.name));
        out.push_str("        total = total * 1.0;\n");
    }
    out.push_str("    }\n");
    if use_async {
        out.push_str("    #pragma acc wait\n    total = total + 0.0;\n");
    }
    if with_data {
        out.push_str("    }\n");
    }

    // Host checksum over every array.
    for a in &arrs {
        out.push_str(&format!(
            "    for (i = 0; i < {n}; i++) {{ total = total + (double){}[i]; }}\n",
            a.name
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_parseable() {
        for seed in 0..300u64 {
            let mut rng = FuzzRng::new(seed + 1);
            let src = generate(&mut rng);
            if let Err(ds) = openarc_minic::parse(&src) {
                panic!("seed {seed}: parse failed {ds:?}\n{src}");
            }
        }
    }

    #[test]
    fn mostly_frontend_clean() {
        // Sema-level rejects should be rare: the grammar is type-correct.
        let mut ok = 0;
        for seed in 0..100u64 {
            let mut rng = FuzzRng::new(seed * 7 + 3);
            let src = generate(&mut rng);
            if openarc_minic::frontend(&src).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 95, "only {ok}/100 generated programs pass sema");
    }

    #[test]
    fn deterministic() {
        let a = generate(&mut FuzzRng::new(99));
        let b = generate(&mut FuzzRng::new(99));
        assert_eq!(a, b);
    }
}
