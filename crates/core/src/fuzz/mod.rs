//! `core::fuzz` — coverage-guided differential fuzzing of the whole
//! pipeline.
//!
//! The campaign loop is the classic scheduled-mutator / in-memory-executor
//! shape: a corpus of interesting inputs, a grammar-aware
//! generator/mutator ([`gen`], [`mutate`]), per-worker executors fanned
//! over [`crate::sched::run_tasks`] running each input through warm
//! [`Session`]s under a matrix of `verificationOptions` ([`oracle`]), and
//! coverage feedback from journal-derived signatures
//! ([`openarc_trace::coverage`]). Findings are auto-minimized
//! ([`minimize()`]) into self-contained repros.
//!
//! ## Determinism contract
//!
//! Everything observable about a campaign — the input sequence, the
//! coverage signature set, the findings and their minimized repros — is a
//! pure function of `(seed, max_programs, seeds, baseline, matrix)`:
//!
//! * all random decisions flow through one [`FuzzRng`] stream, consumed
//!   only on the scheduler thread (generation and corpus selection happen
//!   *before* a batch is fanned out);
//! * [`crate::sched::run_tasks`] returns results in task order, and
//!   corpus/coverage folding is sequential;
//! * wall-clock time is read only for throughput stats and the optional
//!   time budget, never for a mutation or scheduling decision. A campaign
//!   stopped by the time budget sets [`CampaignReport::truncated`] — two
//!   truncated runs may differ in length (they agree on every program
//!   they both executed); untruncated runs are bit-reproducible.
//!
//! `jobs` deliberately does **not** enter the contract: any worker count
//! produces the identical report.

pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod rng;
mod sync;

pub use minimize::{minimize, Minimized};
pub use oracle::{
    default_matrix, run_oracle, validate_coherence, FindingKind, FuzzFinding, MatrixConfig,
    OracleOutcome, Verdict,
};
pub use rng::FuzzRng;

use crate::pipeline::{Fnv, Session};
use crate::sched::run_tasks;
use openarc_trace::coverage::Signature;
use std::time::Instant;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// PRNG seed; the whole campaign is a function of it.
    pub seed: u64,
    /// Generated/mutated programs to execute (seeds and baseline are on
    /// top of this).
    pub max_programs: usize,
    /// Worker threads for the executor fan-out. Does not affect results.
    pub jobs: usize,
    /// Optional wall-clock budget in seconds, checked at batch
    /// boundaries. Exceeding it stops the campaign and marks the report
    /// truncated.
    pub time_budget_s: Option<f64>,
    /// Initial corpus sources (e.g. the committed regression corpus).
    pub seeds: Vec<String>,
    /// Baseline sources whose signature defines "already covered" (the
    /// 12 reduced benchmarks); campaign coverage growth is measured
    /// against their atom set.
    pub baseline: Vec<String>,
    /// The verification-options matrix; element 0 is the oracle config.
    pub matrix: Vec<MatrixConfig>,
    /// Attempt budget per finding minimization.
    pub minimize_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            max_programs: 200,
            jobs: 1,
            time_budget_s: None,
            seeds: Vec::new(),
            baseline: Vec::new(),
            matrix: default_matrix(),
            minimize_budget: 2000,
        }
    }
}

/// One reported finding with its minimized repro.
#[derive(Debug, Clone)]
pub struct FindingReport {
    /// Finding classification.
    pub kind: FindingKind,
    /// Matrix config label involved.
    pub config: String,
    /// Detail string from the first occurrence.
    pub detail: String,
    /// The original failing source.
    pub source: String,
    /// The minimized repro.
    pub minimized: String,
    /// Whether minimization reached a fixed point within budget.
    pub minimized_ok: bool,
    /// How many inputs reproduced this (kind, config) pair.
    pub occurrences: usize,
    /// The `verificationOptions` string of the involved config.
    pub options: String,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Generated/mutated programs executed.
    pub programs: usize,
    /// Inputs rejected before execution (parse/sema/translate) or failing
    /// identically on every leg.
    pub rejected: usize,
    /// Inputs skipped by the divergence oracles because a data race was
    /// detected.
    pub racy: usize,
    /// Corpus size at the end (seeds + inputs that added coverage).
    pub corpus: usize,
    /// Union of all coverage atoms observed (campaign + seeds).
    pub coverage: Signature,
    /// Atoms of the baseline programs alone.
    pub baseline_coverage: Signature,
    /// Deduplicated findings, each minimized.
    pub findings: Vec<FindingReport>,
    /// Per-program wall-clock execution times, µs (stats only).
    pub exec_us: Vec<f64>,
    /// True when the time budget stopped the campaign early.
    pub truncated: bool,
    /// FNV fingerprint of (inputs, coverage, findings) — equal
    /// fingerprints mean bit-identical campaigns.
    pub fingerprint: u64,
}

impl CampaignReport {
    /// Atoms the campaign covered beyond the baseline set, sorted.
    pub fn new_atoms(&self) -> Vec<&str> {
        self.coverage.new_atoms(&self.baseline_coverage)
    }

    /// Findings whose minimization did not converge.
    pub fn unminimized(&self) -> usize {
        self.findings.iter().filter(|f| !f.minimized_ok).count()
    }
}

/// Decide the next input: generate fresh or mutate a corpus entry.
fn next_input(rng: &mut FuzzRng, corpus: &[String]) -> String {
    if corpus.is_empty() || rng.chance(25) {
        return gen::generate(rng);
    }
    // Favor recently added entries (they carried new coverage) half the
    // time, uniform otherwise.
    let idx = if rng.chance(50) {
        corpus.len() - 1 - rng.below(corpus.len().min(4))
    } else {
        rng.below(corpus.len())
    };
    let mut cur = corpus[idx].clone();
    let stack = 1 + rng.below(3);
    for _ in 0..stack {
        if let Some(m) = mutate::mutate_source(rng, &cur) {
            cur = m;
        }
    }
    cur
}

/// Run a fuzzing campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let session = Session::builder().build();
    let start = Instant::now();
    let mut rng = FuzzRng::new(cfg.seed);
    let mut fp = Fnv::new();
    fp.write_u64(cfg.seed);

    // Baseline signature: the "already covered" set.
    let mut baseline_coverage = Signature::new();
    let baseline_outcomes = run_tasks(
        cfg.jobs,
        cfg.baseline
            .iter()
            .map(|src| {
                let session = &session;
                let matrix = &cfg.matrix;
                let src = src.clone();
                move || run_oracle(session, &src, matrix)
            })
            .collect(),
    );
    for out in &baseline_outcomes {
        baseline_coverage.merge(&out.signature);
    }

    let mut coverage = Signature::new();
    let mut corpus: Vec<String> = Vec::new();
    let mut raw_findings: Vec<(FuzzFinding, String)> = Vec::new();
    let mut rejected = 0;
    let mut racy = 0;

    // Seed the corpus; seed atoms count toward campaign coverage.
    let seed_outcomes = run_tasks(
        cfg.jobs,
        cfg.seeds
            .iter()
            .map(|src| {
                let session = &session;
                let matrix = &cfg.matrix;
                let src = src.clone();
                move || run_oracle(session, &src, matrix)
            })
            .collect(),
    );
    for (src, out) in cfg.seeds.iter().zip(&seed_outcomes) {
        coverage.merge(&out.signature);
        if let Some(f) = out.finding() {
            raw_findings.push((f.clone(), src.clone()));
        }
        corpus.push(src.clone());
    }

    // The main loop: deterministic batches, parallel execution,
    // sequential folding.
    const BATCH: usize = 32;
    let mut programs = 0;
    let mut exec_us = Vec::new();
    let mut truncated = false;
    while programs < cfg.max_programs {
        if let Some(budget) = cfg.time_budget_s {
            if start.elapsed().as_secs_f64() > budget {
                truncated = true;
                break;
            }
        }
        let count = BATCH.min(cfg.max_programs - programs);
        let batch: Vec<String> = (0..count).map(|_| next_input(&mut rng, &corpus)).collect();
        let outcomes = run_tasks(
            cfg.jobs,
            batch
                .iter()
                .map(|src| {
                    let session = &session;
                    let matrix = &cfg.matrix;
                    let src = src.clone();
                    move || {
                        let t = Instant::now();
                        let out = run_oracle(session, &src, matrix);
                        (out, t.elapsed().as_secs_f64() * 1e6)
                    }
                })
                .collect(),
        );
        for (src, (out, us)) in batch.iter().zip(outcomes) {
            programs += 1;
            exec_us.push(us);
            fp.write_str(src);
            match &out.verdict {
                Verdict::Rejected(_) => rejected += 1,
                Verdict::Racy => racy += 1,
                Verdict::Finding(f) => raw_findings.push((f.clone(), src.clone())),
                Verdict::Clean => {}
            }
            if coverage.novelty(&out.signature) > 0 {
                corpus.push(src.clone());
            }
            coverage.merge(&out.signature);
        }
    }

    // Deduplicate findings by (kind, config) and minimize each.
    let mut findings: Vec<FindingReport> = Vec::new();
    for (f, src) in raw_findings {
        if let Some(existing) = findings
            .iter_mut()
            .find(|r| r.kind == f.kind && r.config == f.config)
        {
            existing.occurrences += 1;
            continue;
        }
        let kind = f.kind;
        let mut fails = |s: &str| matches!(run_oracle(&session, s, &cfg.matrix).verdict, Verdict::Finding(g) if g.kind == kind);
        let m = minimize::minimize(&src, cfg.minimize_budget, &mut fails);
        let options = cfg
            .matrix
            .iter()
            .find(|c| c.label == f.config)
            .map(|c| c.options_string())
            .unwrap_or_else(|| cfg.matrix[0].options_string());
        findings.push(FindingReport {
            kind: f.kind,
            config: f.config,
            detail: f.detail,
            source: src,
            minimized: m.source,
            minimized_ok: m.converged,
            occurrences: 1,
            options,
        });
    }

    fp.write_u64(coverage.fingerprint());
    for f in &findings {
        fp.write_str(f.kind.name());
        fp.write_str(&f.config);
        fp.write_str(&f.minimized);
    }

    CampaignReport {
        seed: cfg.seed,
        programs,
        rejected,
        racy,
        corpus: corpus.len(),
        coverage,
        baseline_coverage,
        findings,
        exec_us,
        truncated,
        fingerprint: fp.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64, jobs: usize) -> CampaignConfig {
        CampaignConfig {
            seed,
            max_programs: 24,
            jobs,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let a = run_campaign(&tiny_cfg(7, 1));
        let b = run_campaign(&tiny_cfg(7, 1));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.programs, 24);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn campaign_is_jobs_stable() {
        let a = run_campaign(&tiny_cfg(11, 1));
        let b = run_campaign(&tiny_cfg(11, 4));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_campaign(&tiny_cfg(1, 2));
        let b = run_campaign(&tiny_cfg(2, 2));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn coverage_accumulates() {
        let r = run_campaign(&tiny_cfg(5, 2));
        assert!(!r.coverage.is_empty());
        assert!(r.corpus > 0);
        assert_eq!(r.exec_us.len(), r.programs);
    }
}
