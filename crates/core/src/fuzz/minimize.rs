//! Greedy repro minimization.
//!
//! Given a failing source and a predicate that re-checks the failure, the
//! minimizer repeatedly tries structure-removing edits — delete a
//! statement, delete a pragma, delete a single data clause, shrink a loop
//! bound to its minimum — keeping any edit after which the failure still
//! reproduces, until a whole sweep makes no progress (a 1-minimal fixed
//! point under this edit set) or the attempt budget runs out.
//!
//! The predicate abstraction keeps the minimizer deterministic and
//! testable: campaigns pass an oracle re-run, tests pass synthetic
//! predicates.

use super::mutate::{collect_ops, with_block_mut, MutOp};
use super::rng::FuzzRng;
use openarc_minic::ast::{ExprKind, StmtKind};
use openarc_minic::{parse, print_program};

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest failing source found.
    pub source: String,
    /// Whether a full sweep completed with no further progress (true) or
    /// the attempt budget expired first (false).
    pub converged: bool,
    /// Candidate programs evaluated.
    pub attempts: usize,
}

/// Candidate reductions derived from the mutation-site catalogue: only
/// the strictly structure-removing ops, in a deterministic order.
fn reduction_ops(src: &str) -> Vec<MutOp> {
    let Ok(p) = parse(src) else {
        return Vec::new();
    };
    let mut ops: Vec<MutOp> = collect_ops(&p)
        .into_iter()
        .filter(|op| {
            matches!(
                op,
                MutOp::DropStmt { .. }
                    | MutOp::DropPragma { .. }
                    | MutOp::DropClause { .. }
                    | MutOp::ShrinkBound { .. }
            )
        })
        .collect();
    // Try statement deletions first (biggest reductions), later sites
    // before earlier ones so trailing checksum loops go early.
    ops.sort_by_key(|op| match op {
        MutOp::DropStmt { blk, idx } => (0, usize::MAX - blk, usize::MAX - idx),
        MutOp::DropPragma { blk, idx, .. } => (1, *blk, *idx),
        MutOp::DropClause { blk, idx, .. } => (2, *blk, *idx),
        MutOp::ShrinkBound { blk, idx } => (3, *blk, *idx),
        _ => (9, 0, 0),
    });
    ops
}

/// Apply one reduction op to `src`. `ShrinkBound` jumps straight to the
/// minimum trip count rather than decrementing.
fn apply_reduction(src: &str, op: &MutOp) -> Option<String> {
    let mut p = parse(src).ok()?;
    let applied = match *op {
        MutOp::ShrinkBound { blk, idx } => {
            let mut done = false;
            with_block_mut(&mut p, blk, |b| {
                if let Some(s) = b.stmts.get_mut(idx) {
                    if let StmtKind::For { cond: Some(c), .. } = &mut s.kind {
                        if let ExprKind::Binary { rhs, .. } = &mut c.kind {
                            if let ExprKind::IntLit(v) = &mut rhs.kind {
                                if *v > 2 {
                                    *v = 2;
                                    done = true;
                                }
                            }
                        }
                    }
                }
            });
            done
        }
        _ => {
            // Deterministic rng: the remaining reduction ops ignore it.
            let mut rng = FuzzRng::new(1);
            super::mutate::apply_op(&mut p, op, &mut rng)
        }
    };
    if applied {
        Some(print_program(&p))
    } else {
        None
    }
}

/// Greedily minimize `src` while `fails` keeps returning `true` for the
/// candidate. `src` itself is assumed failing.
pub fn minimize(src: &str, max_attempts: usize, fails: &mut dyn FnMut(&str) -> bool) -> Minimized {
    let mut current = src.to_string();
    let mut attempts = 0;
    loop {
        let mut progressed = false;
        for op in reduction_ops(&current) {
            if attempts >= max_attempts {
                return Minimized {
                    source: current,
                    converged: false,
                    attempts,
                };
            }
            let Some(candidate) = apply_reduction(&current, &op) else {
                continue;
            };
            if candidate == current {
                continue;
            }
            attempts += 1;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                break; // re-derive ops against the smaller program
            }
        }
        if !progressed {
            return Minimized {
                source: current,
                converged: true,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "double a[16];\ndouble b[16];\ndouble total;\nvoid main() {\n int i; int t;\n for (i = 0; i < 16; i++) { a[i] = 1.0; }\n for (i = 0; i < 16; i++) { b[i] = 2.0; }\n total = 0.0;\n #pragma acc data copyin(a) copyout(b)\n {\n for (t = 0; t < 4; t++) {\n #pragma acc kernels loop gang\n for (i = 0; i < 16; i++) { b[i] = a[i] * 0.5; }\n }\n }\n for (i = 0; i < 16; i++) { total = total + b[i]; }\n}";

    #[test]
    fn shrinks_to_the_failure_trigger() {
        // Synthetic failure: "bug" whenever a copyout clause is present.
        let mut fails = |s: &str| s.contains("copyout");
        assert!(fails(SRC));
        let m = minimize(SRC, 10_000, &mut fails);
        assert!(m.converged);
        assert!(m.source.contains("copyout"));
        // Everything deletable without losing the trigger must be gone.
        assert!(!m.source.contains("total = total +"), "{}", m.source);
        assert!(!m.source.contains("copyin"), "{}", m.source);
        // The pretty-printer re-indents, so compare structure not bytes:
        // the kernel pragma and the t-loop trip count must be reduced.
        assert!(!m.source.contains("kernels"), "{}", m.source);
        assert!(
            m.source.lines().count() < SRC.lines().count(),
            "{}",
            m.source
        );
        // And the minimized repro still parses.
        assert!(openarc_minic::parse(&m.source).is_ok());
    }

    #[test]
    fn loop_bounds_shrink() {
        let mut fails = |s: &str| s.contains("kernels");
        let m = minimize(SRC, 10_000, &mut fails);
        assert!(m.converged);
        // Kernel loop bound collapses to the minimum trip count.
        assert!(m.source.contains("i < 2"), "{}", m.source);
    }

    #[test]
    fn budget_caps_attempts() {
        let mut fails = |s: &str| s.contains("copyout");
        let m = minimize(SRC, 1, &mut fails);
        assert!(!m.converged);
        assert!(m.attempts <= 1);
    }

    #[test]
    fn deterministic() {
        let mut f1 = |s: &str| s.contains("copyout");
        let mut f2 = |s: &str| s.contains("copyout");
        let a = minimize(SRC, 10_000, &mut f1);
        let b = minimize(SRC, 10_000, &mut f2);
        assert_eq!(a.source, b.source);
        assert_eq!(a.attempts, b.attempts);
    }
}
