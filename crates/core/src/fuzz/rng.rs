//! Deterministic xorshift64* PRNG for the fuzzer.
//!
//! Every random decision the fuzzer makes — generation, mutation choice,
//! corpus scheduling — flows through one [`FuzzRng`] seeded from `--seed`.
//! No wall-clock, no OS entropy: the same seed replays the same campaign
//! bit for bit.

/// xorshift64* generator (the same recurrence the property-test suite
/// uses), with fuzzing-oriented helpers.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Seeded constructor; a zero seed is remapped to a fixed non-zero
    /// value (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never exhausts
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Derive an independent stream for a sub-task (e.g. one generated
    /// input), so parallel consumers never contend on the parent stream.
    pub fn fork(&mut self) -> FuzzRng {
        FuzzRng::new(self.next() | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn zero_seed_ok() {
        let mut r = FuzzRng::new(0);
        assert_ne!(r.next(), 0);
    }

    #[test]
    fn forks_diverge() {
        let mut r = FuzzRng::new(3);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next(), f2.next());
    }
}
