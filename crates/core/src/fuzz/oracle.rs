//! The threefold differential oracle.
//!
//! Each input runs through a warm [`Session`] under several legs:
//!
//! 1. **CPU reference** (`ExecMode::CpuOnly`) — the canonical sequential
//!    semantics of the program, directives ignored.
//! 2. **Instrumented GPU run** (`check` leg: `check_transfers = true`) —
//!    the simulated-GPU execution with the program's own data clauses,
//!    plus the §III-B coherence tracker. Its journal feeds an independent
//!    replay of the PR-5 reference state machine
//!    ([`validate_coherence`]); when the tracker reports *no* transfer
//!    errors, the leg's observable outputs must match the CPU reference.
//! 3. **Verification matrix** — verify-mode runs under a small matrix of
//!    `verificationOptions` (placement × dagJobs × devices ×
//!    compareJobs). Per-launch verdicts compare simulated-GPU kernel
//!    outputs against the runtime's own sequential reference, so a failed
//!    verdict on a race-free input is a pipeline bug regardless of the
//!    program's clause hygiene; and every config's observables must agree
//!    bit for bit with the `dagJobs = 1, devices = 1` oracle config.
//!
//! Everything the legs journal is folded into one coverage [`Signature`].

use crate::exec::dag::Placement;
use crate::exec::{ExecMode, ExecOptions, RunResult, VerifyOptions};
use crate::interactive::{capture_outputs, outputs_match, OutputSpec};
use crate::pipeline::{Fnv, PipelineError, Session, TranslatedArtifact};
use crate::translate::TranslateOptions;
use openarc_minic::ast::Ty;
use openarc_trace::coverage::{event_atoms, Signature};
use openarc_trace::{EventKind, Journal, TraceEvent};
use openarc_vm::VmError;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Per-leg VM step budget. Generated programs finish in a few thousand
/// steps; mutants that lose a loop increment would otherwise spin for the
/// executor's 5e9-step default. Hitting the budget on both legs is a
/// plain `reject:run:step-limit`, not a finding.
const FUZZ_STEP_BUDGET: u64 = 2_000_000;

/// One cell of the verification-options matrix.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Short label used in findings and repro files.
    pub label: &'static str,
    /// Device placement policy.
    pub placement: Placement,
    /// DAG scheduler worker count.
    pub dag_jobs: usize,
    /// Simulated device count.
    pub devices: usize,
    /// Comparison worker count.
    pub compare_jobs: usize,
}

impl MatrixConfig {
    /// The `verificationOptions` string equivalent of this config, as
    /// accepted by `openarc verify --options`.
    pub fn options_string(&self) -> String {
        let placement = match self.placement {
            Placement::RoundRobin => "roundrobin",
            Placement::Eft => "eft",
            Placement::Measured => "measured",
        };
        format!(
            "placement={placement},dagJobs={},devices={},compareJobs={}",
            self.dag_jobs, self.devices, self.compare_jobs
        )
    }

    fn verify_options(&self) -> VerifyOptions {
        VerifyOptions {
            placement: self.placement,
            dag_jobs: self.dag_jobs,
            devices: self.devices,
            compare_jobs: self.compare_jobs,
            ..VerifyOptions::default()
        }
    }
}

/// The default matrix: the sequential oracle cell first, then two
/// scheduled/multi-device cells that must agree with it.
pub fn default_matrix() -> Vec<MatrixConfig> {
    vec![
        MatrixConfig {
            label: "oracle",
            placement: Placement::RoundRobin,
            dag_jobs: 1,
            devices: 1,
            compare_jobs: 1,
        },
        MatrixConfig {
            label: "eft-d2",
            placement: Placement::Eft,
            dag_jobs: 4,
            devices: 2,
            compare_jobs: 2,
        },
        MatrixConfig {
            label: "rr-d3",
            placement: Placement::RoundRobin,
            dag_jobs: 2,
            devices: 3,
            compare_jobs: 1,
        },
    ]
}

/// Kinds of fuzz findings, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A panic or `VmError::Internal` anywhere in the pipeline.
    Crash,
    /// One leg errored while another completed (or error classes differ).
    ErrorDivergence,
    /// The coherence tracker's journal violates the reference model.
    CoherenceModel,
    /// A kernel-verification verdict failed on the oracle config.
    VerifyDivergence,
    /// Clean check report but GPU observables differ from CPU reference.
    OutputDivergence,
    /// A matrix config disagrees with the `dagJobs=1, devices=1` oracle.
    CrossConfig,
}

impl FindingKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Crash => "crash",
            FindingKind::ErrorDivergence => "error-divergence",
            FindingKind::CoherenceModel => "coherence-model",
            FindingKind::VerifyDivergence => "verify-divergence",
            FindingKind::OutputDivergence => "output-divergence",
            FindingKind::CrossConfig => "cross-config",
        }
    }
}

/// One confirmed finding.
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// What kind of disagreement.
    pub kind: FindingKind,
    /// Matrix config label involved (`oracle` for single-leg findings).
    pub config: String,
    /// Human-readable detail.
    pub detail: String,
}

/// How one input fared against the oracle.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All legs agreed.
    Clean,
    /// The input never reached execution (parse/sema/translate reject) or
    /// failed identically on every leg. The payload names the stage.
    Rejected(String),
    /// A data race was detected; divergence oracles are skipped (the
    /// program, not the pipeline, is at fault).
    Racy,
    /// The oracle disagreed somewhere.
    Finding(FuzzFinding),
}

/// Outcome of one oracle evaluation: the verdict plus the coverage
/// signature harvested from every leg's journal.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Coverage atoms observed across all legs.
    pub signature: Signature,
}

impl OracleOutcome {
    /// The finding, if any.
    pub fn finding(&self) -> Option<&FuzzFinding> {
        match &self.verdict {
            Verdict::Finding(f) => Some(f),
            _ => None,
        }
    }
}

/// Replay the journal's coherence transitions against the PR-5 reference
/// state machine. Checks, independently of the tracker's implementation:
/// per-`(var, side)` transition *chaining* (each event's `from` state must
/// equal the state the previous event left), and per-cause legality — a
/// `transfer` must land the side in `notstale`, and a `write` may only
/// produce `notstale`/`maystale` on the written side or `stale` on the
/// others. `reset`/`dealloc` transitions may move anywhere.
pub fn validate_coherence(events: &[TraceEvent]) -> Result<(), String> {
    let mut st: BTreeMap<(String, String), &str> = BTreeMap::new();
    for ev in events {
        let EventKind::Coherence {
            var,
            side,
            from,
            to,
            cause,
        } = &ev.kind
        else {
            continue;
        };
        let key = (var.clone(), side.to_string());
        if let Some(cur) = st.get(&key) {
            if cur != from {
                return Err(format!(
                    "broken chain on {var}.{side}: tracked {cur} but event says from={from} (cause={cause})"
                ));
            }
        }
        let legal = match *cause {
            "transfer" => *to == "notstale",
            "write" => matches!(*to, "notstale" | "maystale" | "stale"),
            "reset" | "dealloc" => true,
            _ => false,
        };
        if !legal {
            return Err(format!(
                "illegal transition on {var}.{side}: {from} -> {to} caused by {cause}"
            ));
        }
        st.insert(key, to);
    }
    Ok(())
}

/// Coarse error class of a [`VmError`] (message payloads stripped so both
/// legs classify identically).
fn vm_class(e: &VmError) -> &'static str {
    match e {
        VmError::OutOfBounds { .. } => "oob",
        VmError::BadHandle(_) => "bad-handle",
        VmError::TransferMismatch { .. } => "transfer-mismatch",
        VmError::DivByZero => "div-zero",
        VmError::TypeError(_) => "type",
        VmError::UnknownFunction(_) => "unknown-fn",
        VmError::StepLimit(_) => "step-limit",
        VmError::Internal(_) => "internal",
        VmError::BadAlloc(_) => "bad-alloc",
        VmError::NotPresent { .. } => "not-present",
    }
}

/// Per-kernel verdict tuple: kernel name, launches, failed launches,
/// compared/mismatched element counts, max-abs-error bits, assertion
/// failures.
type VerdictObs = (String, u64, u64, u64, u64, u64, u64);

/// Comparable observables of one verify-mode run: per-kernel verdict
/// tuples, an FNV fingerprint of the final global state, and the launch
/// count. Simulated time is deliberately excluded — it legitimately
/// varies across placements and device counts.
fn observables(tr: &TranslatedArtifact, r: &RunResult) -> (Vec<VerdictObs>, u64, u64) {
    let verdicts: Vec<_> = r
        .verify
        .iter()
        .map(|v| {
            (
                v.kernel.clone(),
                v.launches,
                v.failed_launches,
                v.compared_elems,
                v.mismatched_elems,
                v.max_abs_err.to_bits(),
                v.assertion_failures,
            )
        })
        .collect();
    let mut h = Fnv::new();
    for g in tr.tr.host_program.globals() {
        if g.name.starts_with("__") {
            continue;
        }
        match &g.ty {
            Ty::Array(_, _) => {
                if let Some(vals) = r.global_array(&tr.tr, &g.name) {
                    for v in vals {
                        h.write_f64(v);
                    }
                }
            }
            Ty::Scalar(_) => {
                if let Some(v) = r.global_scalar(&tr.tr, &g.name) {
                    h.write_f64(v.as_f64());
                }
            }
            _ => {}
        }
    }
    (verdicts, h.finish(), r.kernel_launches)
}

/// Output spec over every user-visible global (arrays and scalars),
/// minus arrays the static sync model proved may be legitimately stale
/// on the host at program exit (`copyin`-only results never published).
fn output_spec(
    tr: &TranslatedArtifact,
    exclude: &std::collections::BTreeSet<String>,
) -> OutputSpec {
    let arrays: Vec<String> = tr
        .tr
        .host_program
        .globals()
        .filter(|g| {
            !g.name.starts_with("__")
                && matches!(g.ty, Ty::Array(_, _))
                && !exclude.contains(&g.name)
        })
        .map(|g| g.name.clone())
        .collect();
    let scalars: Vec<String> = tr
        .tr
        .host_program
        .globals()
        .filter(|g| !g.name.starts_with("__") && matches!(g.ty, Ty::Scalar(_)))
        .map(|g| g.name.clone())
        .collect();
    let mut spec = OutputSpec::arrays(&arrays.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    spec = spec.with_scalars(&scalars.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    spec
}

fn harvest(journal: &Journal, sig: &mut Signature) -> Vec<TraceEvent> {
    let evs = journal.drain();
    for ev in &evs {
        event_atoms(ev, sig);
    }
    evs
}

/// Run one source through the full threefold oracle.
pub fn run_oracle(session: &Session, src: &str, matrix: &[MatrixConfig]) -> OracleOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| run_oracle_inner(session, src, matrix)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            let mut signature = Signature::new();
            signature.insert("oracle:panic");
            OracleOutcome {
                verdict: Verdict::Finding(FuzzFinding {
                    kind: FindingKind::Crash,
                    config: "oracle".to_string(),
                    detail: format!("panic: {msg}"),
                }),
                signature,
            }
        }
    }
}

fn run_oracle_inner(session: &Session, src: &str, matrix: &[MatrixConfig]) -> OracleOutcome {
    let mut sig = Signature::new();
    let finding = |kind: FindingKind, config: &str, detail: String, sig: Signature| OracleOutcome {
        verdict: Verdict::Finding(FuzzFinding {
            kind,
            config: config.to_string(),
            detail,
        }),
        signature: sig,
    };

    // Frontend + both translations.
    let fe = match session.frontend(src) {
        Ok(fe) => fe,
        Err(_) => {
            sig.insert("reject:frontend");
            return OracleOutcome {
                verdict: Verdict::Rejected("frontend".into()),
                signature: sig,
            };
        }
    };
    let plain = match session.translate(&fe, &TranslateOptions::default()) {
        Ok(tr) => tr,
        Err(e) => {
            sig.insert("reject:translate");
            if let PipelineError::Directives(_) = e {
                sig.insert("reject:directives");
            }
            return OracleOutcome {
                verdict: Verdict::Rejected("translate".into()),
                signature: sig,
            };
        }
    };
    let instrumented = match session.translate(
        &fe,
        &TranslateOptions {
            instrument: true,
            ..TranslateOptions::default()
        },
    ) {
        Ok(tr) => tr,
        Err(_) => {
            sig.insert("reject:instrument");
            return OracleOutcome {
                verdict: Verdict::Rejected("instrument".into()),
                signature: sig,
            };
        }
    };

    // Reading an uninitialized `private` copy is OpenACC undefined
    // behaviour: the sequential reference, the simulated device, and the
    // verify-mode replay may all legitimately disagree, so any oracle
    // signal from such a program is noise. Reject before executing.
    if super::sync::uninit_private_read(&fe.program) {
        sig.insert("reject:uninit-private");
        return OracleOutcome {
            verdict: Verdict::Rejected("uninit-private".into()),
            signature: sig,
        };
    }

    // Leg 1: CPU reference.
    let cpu_journal = Journal::enabled();
    let cpu_opts = ExecOptions {
        mode: ExecMode::CpuOnly,
        journal: cpu_journal.clone(),
        step_budget: FUZZ_STEP_BUDGET,
        ..ExecOptions::default()
    };
    let cpu = session.execute(&plain, &cpu_opts);
    harvest(&cpu_journal, &mut sig);

    // Leg 2: instrumented GPU run with transfer checking.
    let chk_journal = Journal::enabled();
    let chk_opts = ExecOptions {
        mode: ExecMode::Normal,
        check_transfers: true,
        race_detect: true,
        journal: chk_journal.clone(),
        step_budget: FUZZ_STEP_BUDGET,
        ..ExecOptions::default()
    };
    let chk = session.execute(&instrumented, &chk_opts);
    let chk_events = harvest(&chk_journal, &mut sig);

    // Error-class reconciliation between the two legs.
    let cpu_err = match &cpu {
        Err(PipelineError::Run(e)) => Some(vm_class(e)),
        Err(_) => Some("pipeline"),
        Ok(_) => None,
    };
    let chk_err = match &chk {
        Err(PipelineError::Run(e)) => Some(vm_class(e)),
        Err(_) => Some("pipeline"),
        Ok(_) => None,
    };
    if cpu_err == Some("internal") || chk_err == Some("internal") {
        return finding(
            FindingKind::Crash,
            "oracle",
            "VmError::Internal — compiler/runtime invariant broken".into(),
            sig,
        );
    }
    if cpu_err == Some("step-limit") || chk_err == Some("step-limit") {
        // A nonterminating mutant. The legs count steps differently
        // (host loops vs simulated launches), so one side may finish
        // under budget while the other spins — not a pipeline bug.
        sig.insert("reject:run:step-limit");
        return OracleOutcome {
            verdict: Verdict::Rejected("run:step-limit".into()),
            signature: sig,
        };
    }
    if chk_err == Some("not-present") {
        // `update` of unmapped data: a program error with no CPU-leg
        // counterpart (the CPU reference ignores directives entirely).
        sig.insert("reject:run:not-present");
        return OracleOutcome {
            verdict: Verdict::Rejected("run:not-present".into()),
            signature: sig,
        };
    }
    match (cpu_err, chk_err) {
        (Some(a), Some(b)) if a == b => {
            sig.insert(format!("reject:run:{a}"));
            return OracleOutcome {
                verdict: Verdict::Rejected(format!("run:{a}")),
                signature: sig,
            };
        }
        (Some(a), Some(b)) => {
            return finding(
                FindingKind::ErrorDivergence,
                "oracle",
                format!("cpu leg failed with {a}, gpu leg with {b}"),
                sig,
            );
        }
        (Some(a), None) => {
            return finding(
                FindingKind::ErrorDivergence,
                "oracle",
                format!("cpu leg failed with {a}, gpu leg completed"),
                sig,
            );
        }
        (None, Some(b)) => {
            return finding(
                FindingKind::ErrorDivergence,
                "oracle",
                format!("gpu leg failed with {b}, cpu leg completed"),
                sig,
            );
        }
        (None, None) => {}
    }
    let cpu = cpu.expect("checked above");
    let chk = chk.expect("checked above");

    // Oracle 2a: the coherence tracker vs the reference state machine.
    if let Err(msg) = validate_coherence(&chk_events) {
        return finding(FindingKind::CoherenceModel, "oracle", msg, sig);
    }
    for (var, _) in &chk.races {
        sig.insert(format!("race:{var}"));
    }
    let racy = !chk.races.is_empty();

    // Leg 3: the verification matrix.
    let mut legs: Vec<(&MatrixConfig, Arc<RunResult>)> = Vec::new();
    for cfg in matrix {
        let journal = Journal::enabled();
        let opts = ExecOptions {
            mode: ExecMode::Verify(cfg.verify_options()),
            race_detect: true,
            journal: journal.clone(),
            step_budget: FUZZ_STEP_BUDGET,
            ..ExecOptions::default()
        };
        let r = session.execute(&plain, &opts);
        harvest(&journal, &mut sig);
        sig.insert(format!("cfg:{}", cfg.label));
        match r {
            Ok(r) => legs.push((cfg, r)),
            Err(PipelineError::Run(VmError::StepLimit(_))) => {
                // Verify mode replays kernels on both sides, so a program
                // near the budget can pass normally yet trip here.
                sig.insert("reject:run:step-limit");
                return OracleOutcome {
                    verdict: Verdict::Rejected("run:step-limit".into()),
                    signature: sig,
                };
            }
            Err(PipelineError::Run(e)) => {
                return finding(
                    FindingKind::ErrorDivergence,
                    cfg.label,
                    format!(
                        "verify config {} failed with {} though normal execution completed",
                        cfg.label,
                        vm_class(&e)
                    ),
                    sig,
                );
            }
            Err(_) => {
                return finding(
                    FindingKind::ErrorDivergence,
                    cfg.label,
                    format!("verify config {} failed in the pipeline", cfg.label),
                    sig,
                );
            }
        }
    }

    if racy || legs.iter().any(|(_, r)| !r.races.is_empty()) {
        sig.insert("racy");
        return OracleOutcome {
            verdict: Verdict::Racy,
            signature: sig,
        };
    }

    // Oracle 1: per-launch verdicts on the oracle config.
    if let Some((cfg, r)) = legs.first() {
        for v in &r.verify {
            if v.flagged() {
                return finding(
                    FindingKind::VerifyDivergence,
                    cfg.label,
                    format!(
                        "kernel {}: {}/{} launches failed, {} of {} elems mismatched (max abs err {:e})",
                        v.kernel,
                        v.failed_launches,
                        v.launches,
                        v.mismatched_elems,
                        v.compared_elems,
                        v.max_abs_err
                    ),
                    sig,
                );
            }
        }
    }

    // Oracle 3: cross-config observable identity.
    if let Some((_, base)) = legs.first() {
        let want = observables(&plain, base);
        for (cfg, r) in legs.iter().skip(1) {
            let got = observables(&plain, r);
            if got != want {
                let detail = if got.0 != want.0 {
                    format!("config {} verdicts differ from oracle config", cfg.label)
                } else if got.1 != want.1 {
                    format!(
                        "config {} final globals differ from oracle config",
                        cfg.label
                    )
                } else {
                    format!(
                        "config {} launched {} kernels, oracle launched {}",
                        cfg.label, got.2, want.2
                    )
                };
                return finding(FindingKind::CrossConfig, cfg.label, detail, sig);
            }
        }
    }

    // Oracle 2b: when the program's clauses provably publish every
    // GPU-written array back to the host (and the checker agrees), the
    // instrumented GPU run's outputs must match the CPU reference. The
    // static sync check keeps clause-sloppy *programs* (stale host
    // reads the first-access checker tolerates) from masquerading as
    // pipeline bugs.
    for issue in &chk.machine.report.issues {
        sig.insert(format!("issue:{}:{:?}", issue.kind.severity(), issue.kind));
    }
    match super::sync::sync_check(&fe.program) {
        super::sync::SyncVerdict::Unknown => {
            sig.insert("outputs:skipped-unsynced");
        }
        super::sync::SyncVerdict::Synced { stale_at_exit } => {
            if chk.machine.report.has_errors() {
                sig.insert("outputs:skipped-dirty-report");
            } else {
                let spec = output_spec(&plain, &stale_at_exit);
                let reference = capture_outputs(&plain.tr, &cpu, &spec);
                if !outputs_match(&instrumented.tr, &chk, &reference, 1e-6) {
                    return finding(
                        FindingKind::OutputDivergence,
                        "oracle",
                        "clauses publish all outputs yet GPU observables differ from CPU reference"
                            .into(),
                        sig,
                    );
                }
                sig.insert(if stale_at_exit.is_empty() {
                    "outputs:match"
                } else {
                    "outputs:match-partial"
                });
            }
        }
    }

    OracleOutcome {
        verdict: Verdict::Clean,
        signature: sig,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_trace::Track;

    fn coh(
        var: &str,
        side: &'static str,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
    ) -> TraceEvent {
        TraceEvent {
            ts_us: 0.0,
            dur_us: 0.0,
            track: Track::Host,
            kind: EventKind::Coherence {
                var: var.into(),
                side,
                from,
                to,
                cause,
            },
        }
    }

    #[test]
    fn coherence_accepts_legal_chain() {
        let evs = vec![
            coh("a", "gpu", "notstale", "stale", "write"),
            coh("a", "gpu", "stale", "notstale", "transfer"),
            coh("a", "cpu", "notstale", "stale", "write"),
            coh("a", "cpu", "stale", "notstale", "transfer"),
        ];
        assert!(validate_coherence(&evs).is_ok());
    }

    #[test]
    fn coherence_rejects_broken_chain() {
        let evs = vec![
            coh("a", "gpu", "notstale", "stale", "write"),
            // The tracker claims gpu was notstale, but we left it stale.
            coh("a", "gpu", "notstale", "maystale", "write"),
        ];
        let err = validate_coherence(&evs).unwrap_err();
        assert!(err.contains("broken chain"), "{err}");
    }

    #[test]
    fn coherence_rejects_illegal_transfer_target() {
        let evs = vec![coh("a", "gpu", "stale", "maystale", "transfer")];
        let err = validate_coherence(&evs).unwrap_err();
        assert!(err.contains("illegal transition"), "{err}");
    }

    #[test]
    fn clean_program_is_clean() {
        let session = Session::builder().build();
        let src = "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = (double)i; }\n total = 0.0;\n #pragma acc data copy(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}";
        let out = run_oracle(&session, src, &default_matrix());
        assert!(matches!(out.verdict, Verdict::Clean), "{:?}", out.verdict);
        assert!(out.signature.contains("event:kernel-launch"));
        assert!(out.signature.contains("outputs:match"));
    }

    #[test]
    fn parse_error_is_rejected() {
        let session = Session::builder().build();
        let out = run_oracle(&session, "void main() { garbage !!", &default_matrix());
        assert!(matches!(out.verdict, Verdict::Rejected(_)));
        assert!(out.signature.contains("reject:frontend"));
    }

    #[test]
    fn stale_host_read_is_not_a_finding() {
        // copyin-only clause: the checksum reads a stale host copy. The
        // static sync check catches it (the first-access checker's report
        // stays clean for this shape), so the output oracle must skip —
        // the program is wrong, not the pipeline.
        let session = Session::builder().build();
        let src = "double a[8];\ndouble total;\nvoid main() {\n int i;\n for (i = 0; i < 8; i++) { a[i] = 1.0; }\n total = 0.0;\n #pragma acc data copyin(a)\n {\n #pragma acc kernels loop gang\n for (i = 0; i < 8; i++) { a[i] = a[i] * 2.0; }\n }\n for (i = 0; i < 8; i++) { total = total + a[i]; }\n}";
        let out = run_oracle(&session, src, &default_matrix());
        assert!(
            matches!(out.verdict, Verdict::Clean),
            "expected clean-with-dirty-report, got {:?}",
            out.verdict
        );
        assert!(out.signature.contains("outputs:skipped-unsynced"));
    }

    #[test]
    fn matrix_options_strings() {
        let m = default_matrix();
        assert_eq!(
            m[0].options_string(),
            "placement=roundrobin,dagJobs=1,devices=1,compareJobs=1"
        );
        assert!(m
            .iter()
            .any(|c| c.options_string().contains("placement=eft")));
    }
}
