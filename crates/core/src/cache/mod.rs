//! Persistent content-addressed artifact store under [`crate::pipeline::Session`].
//!
//! The in-memory stage caches die with the process, so every new CLI
//! invocation re-parses and re-translates sources that have not changed
//! since the last run. This module adds the disk layer: a
//! content-addressed store at `<root>/<stage>/<key>.bin` holding
//! serialized Frontend, Translated, and journal-replay Run artifacts.
//!
//! Entries are written in the versioned binary format of [`bin`]
//! (normative spec: `docs/FORMAT.md`). The JSON codec in [`codec`] is
//! retained as the human-readable debug/export interchange (`openarc
//! cache export`), and the store still *reads* legacy `<key>.json`
//! entries: a hit on one transparently re-encodes it as `<key>.bin` and
//! retires the JSON file, so a store written by an older build upgrades
//! in place as it is used.
//!
//! Design rules, all load-bearing:
//!
//! * **Keys** fold the artifact's content hash together with
//!   [`SCHEMA_VERSION`] and the tool fingerprint (crate version), so a
//!   schema bump or a new binary never reads stale layouts — old entries
//!   simply stop being addressed and age out via [`DiskCache::gc`].
//! * **Publishing is atomic**: entries are written to a private temp file
//!   and `rename`d into place, so readers never observe partial writes.
//! * **Writers hold an advisory lock** (`create_new` lock file) per entry;
//!   a second concurrent writer of the same content skips the store (the
//!   bytes would be identical). Stale locks are taken over.
//! * **Corruption never panics**: a truncated, garbage, or
//!   wrong-versioned entry is detected on load, deleted, counted, and the
//!   stage recomputes as if the entry never existed.
//! * **Eviction is LRU by modification time**: every hit re-touches the
//!   entry, and [`DiskCache::gc`] drops the oldest entries until the
//!   store fits a byte budget.

pub mod bin;
pub mod codec;

use crate::exec::RunResult;
use crate::pipeline::{ArtifactId, Fnv, FrontendArtifact, Stage, TranslatedArtifact};
use openarc_trace::json::Json;
use openarc_trace::TraceEvent;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// On-disk layout version; folded into every entry key. Bump when any
/// [`bin`] or [`codec`] encoding changes shape.
pub const SCHEMA_VERSION: u64 = 1;

/// Default cache directory used by the CLI and bench drivers.
pub const DEFAULT_DIR: &str = "target/openarc-cache";

/// Fingerprint of the producing tool, folded into every entry key so
/// artifacts written by one build are never read by another.
pub fn tool_fingerprint() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Age after which an abandoned writer lock or temp file is taken over.
const STALE_LOCK: Duration = Duration::from_secs(60);

/// Counters of one cache's disk traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Entries loaded, decoded, and served.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries published.
    pub stores: u64,
    /// Entries evicted by [`DiskCache::gc`].
    pub evictions: u64,
    /// Entries found corrupt (bad bytes, bad header, bad payload) and
    /// deleted.
    pub corrupt: u64,
}

impl DiskStats {
    /// True when no counter has moved (e.g. a session without a disk layer).
    pub fn is_empty(&self) -> bool {
        *self == DiskStats::default()
    }
}

/// Outcome of one typed lookup.
pub enum Lookup<T> {
    /// Entry existed, validated, and decoded.
    Hit(T),
    /// No entry on disk.
    Miss,
    /// Entry existed but was unreadable/invalid; it has been deleted and
    /// counted, and the caller should recompute.
    Corrupt,
}

/// Result of one [`DiskCache::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcResult {
    /// Entries examined.
    pub examined: u64,
    /// Entries removed.
    pub evicted: u64,
    /// Store size before the pass, bytes.
    pub bytes_before: u64,
    /// Store size after the pass, bytes.
    pub bytes_after: u64,
}

/// Per-stage usage row reported by [`DiskCache::usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageRow {
    /// Stage directory label.
    pub stage: &'static str,
    /// Number of entries (all formats).
    pub entries: u64,
    /// Total bytes (all formats).
    pub bytes: u64,
    /// Entries in the primary binary format (`.bin`).
    pub bin_entries: u64,
    /// Entries still in the legacy JSON format (`.json`); these upgrade
    /// to binary in place on their next hit.
    pub json_entries: u64,
}

/// Outcome of [`DiskCache::export_json`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportReport {
    /// Entries successfully written to the target store.
    pub exported: u64,
    /// Entries that failed to decode or publish; left in place, the
    /// export never mutates the source store.
    pub skipped: u64,
}

/// The content-addressed on-disk artifact store.
///
/// All operations are best-effort: I/O failures degrade to cache misses
/// or skipped stores, never to pipeline errors — the pipeline can always
/// recompute.
pub struct DiskCache {
    root: PathBuf,
    /// Tenant namespace folded into every entry key (`""` = the default
    /// namespace, whose keys are identical to a pre-namespace store).
    namespace: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Stages whose artifacts are persisted to disk. Directives, Plan, and
/// Verify artifacts are cheap derivations of these and stay memory-only.
pub const DISK_STAGES: [Stage; 4] = [
    Stage::Frontend,
    Stage::Analysis,
    Stage::Instrument,
    Stage::Execute,
];

impl DiskCache {
    /// Open (lazily — directories are created on first store) a cache
    /// rooted at `root`, in the default (empty) tenant namespace.
    pub fn new(root: impl Into<PathBuf>) -> DiskCache {
        DiskCache::with_namespace(root, "")
    }

    /// Open a cache rooted at `root` whose entry keys are folded with the
    /// tenant namespace `namespace`. Two caches over the same root with
    /// different namespaces address disjoint key sets: one tenant's
    /// entries are plain misses for every other tenant (the multi-tenant
    /// isolation layer behind `openarc serve`). The empty namespace
    /// addresses exactly the keys [`DiskCache::new`] does.
    pub fn with_namespace(root: impl Into<PathBuf>, namespace: impl Into<String>) -> DiskCache {
        DiskCache {
            root: root.into(),
            namespace: namespace.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Tenant namespace this handle addresses (`""` = default).
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Snapshot of this process's traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Entry key: the artifact's content hash folded with the schema
    /// version, tool fingerprint, and (when non-empty) the tenant
    /// namespace, so incompatible layouts — and other tenants' entries —
    /// are simply never addressed. The empty namespace writes nothing
    /// into the hash, keeping default-namespace keys stable across the
    /// namespace feature's introduction.
    fn entry_key(&self, stage: Stage, id: ArtifactId) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(SCHEMA_VERSION)
            .write_str(tool_fingerprint())
            .write_str(stage.label())
            .write_u64(id.0);
        if !self.namespace.is_empty() {
            h.write_str("tenant").write_str(&self.namespace);
        }
        h.finish()
    }

    fn entry_path(&self, stage: Stage, key: u64, ext: &str) -> PathBuf {
        self.root
            .join(stage.label())
            .join(format!("{key:016x}.{ext}"))
    }

    /// Re-touch an entry's mtime for LRU: [`DiskCache::gc`] evicts
    /// oldest-mtime entries first.
    fn touch(path: &Path) {
        if let Ok(f) = fs::File::open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }

    /// Format-negotiating lookup of `(stage, id)`: the primary `.bin`
    /// entry is tried first; absent that, a legacy `.json` entry is
    /// decoded and — on a hit — re-encoded with `reencode` and upgraded to
    /// `.bin` in place. Any decode failure deletes the offending file and
    /// reports [`Lookup::Corrupt`]; the caller recomputes.
    fn load_entry<T>(
        &self,
        stage: Stage,
        id: ArtifactId,
        decode_bin: impl FnOnce(&[u8]) -> Result<T, String>,
        decode_json: impl FnOnce(&Json) -> Result<T, String>,
        reencode: impl FnOnce(&T) -> Vec<u8>,
    ) -> Lookup<T> {
        let key = self.entry_key(stage, id);
        let bin_path = self.entry_path(stage, key, "bin");
        if let Ok(bytes) = fs::read(&bin_path) {
            return match decode_bin(&bytes) {
                Ok(v) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Self::touch(&bin_path);
                    Lookup::Hit(v)
                }
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(&bin_path);
                    Lookup::Corrupt
                }
            };
        }
        match self.load_with(stage, id, decode_json) {
            Lookup::Hit(v) => {
                // Migrate the legacy entry to the primary format so the
                // next load takes the fast path. Not counted as a store:
                // no new artifact was published. The JSON file is only
                // retired once the binary entry is durably in place.
                if self.publish(stage, key, "bin", &reencode(&v)) {
                    let _ = fs::remove_file(self.entry_path(stage, key, "json"));
                }
                Lookup::Hit(v)
            }
            other => other,
        }
    }

    /// Look up `(stage, id)` in the legacy JSON interchange only,
    /// validating the versioned header and decoding the payload with
    /// `decode`. Any failure past "file exists" deletes the entry and
    /// reports [`Lookup::Corrupt`]; the caller recomputes. Binary-format
    /// entries are invisible to this method — the typed loaders
    /// ([`DiskCache::load_frontend`] &c.) negotiate both formats.
    pub fn load_with<T>(
        &self,
        stage: Stage,
        id: ArtifactId,
        decode: impl FnOnce(&Json) -> Result<T, String>,
    ) -> Lookup<T> {
        let key = self.entry_key(stage, id);
        let path = self.entry_path(stage, key, "json");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
        };
        let decoded = Json::parse(&text)
            .and_then(|entry| Self::check_header(&entry, stage, id).and_then(decode));
        match decoded {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Self::touch(&path);
                Lookup::Hit(v)
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                Lookup::Corrupt
            }
        }
    }

    /// Look up a frontend artifact, preferring the binary entry and
    /// upgrading a legacy JSON one in place.
    pub fn load_frontend(&self, id: ArtifactId) -> Lookup<FrontendArtifact> {
        self.load_entry(
            Stage::Frontend,
            id,
            |bytes| bin::decode_frontend(id, bytes),
            |p| codec::frontend_from_payload(id, p),
            bin::encode_frontend,
        )
    }

    /// Look up a translation artifact stored under `stage`
    /// ([`Stage::Analysis`] or [`Stage::Instrument`]), preferring the
    /// binary entry and upgrading a legacy JSON one in place.
    pub fn load_translated(&self, stage: Stage, id: ArtifactId) -> Lookup<TranslatedArtifact> {
        self.load_entry(
            stage,
            id,
            |bytes| bin::decode_translated(stage, id, bytes),
            |p| codec::translated_from_payload(id, p),
            |art| bin::encode_translated(stage, art),
        )
    }

    /// Look up a finished run (surface + journal events), preferring the
    /// binary entry and upgrading a legacy JSON one in place.
    pub fn load_run(&self, id: ArtifactId) -> Lookup<(RunResult, Vec<TraceEvent>)> {
        self.load_entry(
            Stage::Execute,
            id,
            |bytes| bin::decode_run(id, bytes),
            codec::run_from_payload,
            |(r, events)| bin::encode_run(id, r, events),
        )
    }

    /// Publish a frontend artifact in the primary binary format.
    pub fn store_frontend(&self, art: &FrontendArtifact) -> bool {
        self.store_bytes(Stage::Frontend, art.id, &bin::encode_frontend(art))
    }

    /// Publish a translation artifact under `stage` ([`Stage::Analysis`]
    /// or [`Stage::Instrument`]) in the primary binary format.
    pub fn store_translated(&self, stage: Stage, art: &TranslatedArtifact) -> bool {
        self.store_bytes(stage, art.id, &bin::encode_translated(stage, art))
    }

    /// Publish a finished run (surface + journal events) in the primary
    /// binary format.
    pub fn store_run(&self, id: ArtifactId, r: &RunResult, events: &[TraceEvent]) -> bool {
        self.store_bytes(Stage::Execute, id, &bin::encode_run(id, r, events))
    }

    fn store_bytes(&self, stage: Stage, id: ArtifactId, bytes: &[u8]) -> bool {
        let ok = self.publish(stage, self.entry_key(stage, id), "bin", bytes);
        if ok {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Validate a parsed entry's versioned header, returning the payload.
    /// The schema/tool fields are folded into the key, so a mismatch here
    /// means the entry bytes were tampered with or damaged — corruption.
    fn check_header(entry: &Json, stage: Stage, id: ArtifactId) -> Result<&Json, String> {
        let field = |k: &str| entry.get(k).ok_or_else(|| format!("missing header `{k}`"));
        if field("schema")?.as_u64() != Some(SCHEMA_VERSION) {
            return Err("schema version mismatch".into());
        }
        if field("tool")?.as_str() != Some(tool_fingerprint()) {
            return Err("tool fingerprint mismatch".into());
        }
        if field("stage")?.as_str() != Some(stage.label()) {
            return Err("stage mismatch".into());
        }
        if field("id")?.as_u64() != Some(id.0) {
            return Err("artifact id mismatch".into());
        }
        field("payload")
    }

    /// Publish `payload` for `(stage, id)` as a legacy JSON entry under a
    /// versioned header. This is the export/debug interchange writer
    /// (`openarc cache export`); the pipeline itself stores binary
    /// entries via the typed methods. Returns true when this call wrote
    /// the entry (false: lock held by a live concurrent writer, or I/O
    /// failure — both benign).
    pub fn store(&self, stage: Stage, id: ArtifactId, payload: Json) -> bool {
        let entry = Json::obj(vec![
            ("schema", Json::from(SCHEMA_VERSION)),
            ("tool", Json::from(tool_fingerprint())),
            ("stage", Json::from(stage.label())),
            ("id", Json::from(id.0)),
            ("payload", payload),
        ]);
        let key = self.entry_key(stage, id);
        let ok = self.publish(stage, key, "json", entry.pretty().as_bytes());
        if ok {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Atomically publish raw entry bytes at `<stage>/<key>.<ext>`:
    /// private temp file, fsync, rename. Both formats of one key share
    /// one `<key>.lock` writer lock.
    fn publish(&self, stage: Stage, key: u64, ext: &str, bytes: &[u8]) -> bool {
        let path = self.entry_path(stage, key, ext);
        let Some(dir) = path.parent() else {
            return false;
        };
        if fs::create_dir_all(dir).is_err() {
            return false;
        }
        let lock = path.with_extension("lock");
        if !Self::acquire_lock(&lock) {
            return false;
        }
        let tmp = dir.join(format!(".tmp-{key:016x}-{}", std::process::id()));
        let ok = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        })()
        .is_ok();
        if !ok {
            let _ = fs::remove_file(&tmp);
        }
        let _ = fs::remove_file(&lock);
        ok
    }

    /// Take the advisory per-entry writer lock. A held lock younger than
    /// [`STALE_LOCK`] means a live writer is publishing the same content —
    /// skip. An older one is an abandoned writer: take it over.
    fn acquire_lock(lock: &Path) -> bool {
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(lock)
            {
                Ok(_) => return true,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if Self::is_stale(lock) {
                        let _ = fs::remove_file(lock);
                        continue;
                    }
                    return false;
                }
                Err(_) => return false,
            }
        }
        false
    }

    fn is_stale(path: &Path) -> bool {
        match fs::metadata(path).and_then(|m| m.modified()) {
            Ok(mtime) => SystemTime::now()
                .duration_since(mtime)
                .map(|age| age > STALE_LOCK)
                .unwrap_or(false),
            // Metadata unreadable: the file likely vanished between the
            // existence check and here — retrying create_new is safe.
            Err(_) => true,
        }
    }

    /// Every entry in the store: `(path, bytes, mtime)`, unsorted. Also
    /// sweeps abandoned temp files and stale locks as a side effect.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        for stage in DISK_STAGES {
            let dir = self.root.join(stage.label());
            let Ok(rd) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in rd.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with(".tmp-") || name.ends_with(".lock") {
                    if Self::is_stale(&path) {
                        let _ = fs::remove_file(&path);
                    }
                    continue;
                }
                if !name.ends_with(".bin") && !name.ends_with(".json") {
                    continue;
                }
                if let Ok(meta) = entry.metadata() {
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    out.push((path, meta.len(), mtime));
                }
            }
        }
        out
    }

    /// Per-stage entry counts, sizes, and format mix.
    pub fn usage(&self) -> Vec<UsageRow> {
        DISK_STAGES
            .iter()
            .map(|stage| {
                let dir = self.root.join(stage.label());
                let mut row = UsageRow {
                    stage: stage.label(),
                    ..Default::default()
                };
                if let Ok(rd) = fs::read_dir(&dir) {
                    for entry in rd.flatten() {
                        let name = entry.file_name();
                        let name = name.to_string_lossy();
                        let is_bin = name.ends_with(".bin");
                        if !is_bin && !name.ends_with(".json") {
                            continue;
                        }
                        if let Ok(meta) = entry.metadata() {
                            row.entries += 1;
                            row.bytes += meta.len();
                            if is_bin {
                                row.bin_entries += 1;
                            } else {
                                row.json_entries += 1;
                            }
                        }
                    }
                }
                row
            })
            .collect()
    }

    /// Re-encode every entry into a legacy-JSON store rooted at `dest` —
    /// the engine behind `openarc cache export`. Binary entries decode
    /// through [`bin`] and re-encode through [`codec`] under the versioned
    /// JSON header; entries still in the JSON format copy through
    /// verbatim. Undecodable or unwritable entries are counted in
    /// [`ExportReport::skipped`] and otherwise ignored; the source store
    /// is never modified.
    pub fn export_json(&self, dest: &DiskCache) -> ExportReport {
        let mut report = ExportReport::default();
        for stage in DISK_STAGES {
            let dir = self.root.join(stage.label());
            let Ok(rd) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in rd.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let ok = if name.ends_with(".bin") {
                    fs::read(&path)
                        .ok()
                        .and_then(|bytes| bin::decode_entry(stage, &bytes).ok())
                        .map(|(id, art)| {
                            let payload = match art {
                                bin::Artifact::Frontend(fe) => {
                                    codec::frontend_payload(&fe.program, &fe.sema)
                                }
                                bin::Artifact::Translated(tr) => codec::translated_payload(&tr),
                                bin::Artifact::Run(run) => codec::run_payload(&run.0, &run.1),
                            };
                            dest.store(stage, id, payload)
                        })
                        .unwrap_or(false)
                } else if let Some(stem) = name.strip_suffix(".json") {
                    match (u64::from_str_radix(stem, 16), fs::read(&path)) {
                        (Ok(key), Ok(bytes)) => dest.publish(stage, key, "json", &bytes),
                        _ => false,
                    }
                } else {
                    continue;
                };
                if ok {
                    report.exported += 1;
                } else {
                    report.skipped += 1;
                }
            }
        }
        report
    }

    /// Sequentially decode every `ext`-format (`"bin"` or `"json"`) entry
    /// under `stage`, discarding the artifacts; returns the number
    /// decoded, or the first decode error. This is the measured operation
    /// behind the pipeline bench's per-codec `warm_load_us` comparison —
    /// it is counter-neutral (no hit/miss/corrupt accounting) and never
    /// deletes or upgrades entries. Entries are visited in sorted path
    /// order so repeated passes do identical work.
    pub fn decode_stage(&self, stage: Stage, ext: &str) -> Result<u64, String> {
        let dir = self.root.join(stage.label());
        let Ok(rd) = fs::read_dir(&dir) else {
            return Ok(0);
        };
        let mut paths: Vec<PathBuf> = rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == ext))
            .collect();
        paths.sort();
        let fail = |path: &Path, e: String| format!("{}: {e}", path.display());
        for path in &paths {
            if ext == "bin" {
                let bytes = fs::read(path).map_err(|e| fail(path, e.to_string()))?;
                bin::decode_entry(stage, &bytes).map_err(|e| fail(path, e))?;
            } else {
                let text = fs::read_to_string(path).map_err(|e| fail(path, e.to_string()))?;
                let entry = Json::parse(&text).map_err(|e| fail(path, e))?;
                let id = entry
                    .get("id")
                    .and_then(|j| j.as_u64())
                    .map(ArtifactId)
                    .ok_or_else(|| fail(path, "missing header `id`".into()))?;
                let payload = Self::check_header(&entry, stage, id).map_err(|e| fail(path, e))?;
                match stage {
                    Stage::Frontend => codec::frontend_from_payload(id, payload).map(|_| ()),
                    Stage::Analysis | Stage::Instrument => {
                        codec::translated_from_payload(id, payload).map(|_| ())
                    }
                    Stage::Execute => codec::run_from_payload(payload).map(|_| ()),
                    _ => Err(format!("stage {} is not persisted", stage.label())),
                }
                .map_err(|e| fail(path, e))?;
            }
        }
        Ok(paths.len() as u64)
    }

    /// Recompute-cost rank of an entry, derived from the stage directory
    /// it lives in: [`DISK_STAGES`] is ordered cheapest-first (a Frontend
    /// parse re-runs in microseconds; an Execute artifact replays a whole
    /// simulated run), so the array position *is* the rank. Unknown
    /// directories rank cheapest.
    fn stage_cost(path: &Path) -> usize {
        path.parent()
            .and_then(|p| p.file_name())
            .and_then(|dir| {
                DISK_STAGES
                    .iter()
                    .position(|s| dir.to_string_lossy() == s.label())
            })
            .unwrap_or(0)
    }

    /// Cost-aware LRU eviction pass: delete least-valuable entries until
    /// the store holds at most `max_bytes`.
    ///
    /// Eviction order is least-recently-touched first, with recency
    /// compared at whole-second granularity; inside one second the
    /// cheaper-to-recompute stage goes first (its position in
    /// [`DISK_STAGES`], cheapest-first), then
    /// exact mtime. The coarse bucket is deliberate: hits re-touch
    /// entries, so sub-second mtime deltas mostly record directory-walk
    /// and publish order — at that resolution "which artifact costs more
    /// to rebuild" is the better signal, and a pipeline that stored a
    /// Frontend parse and an Execute run in the same second keeps the
    /// run.
    pub fn gc(&self, max_bytes: u64) -> GcResult {
        let whole_secs = |t: &SystemTime| {
            t.duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0)
        };
        let mut entries = self.entries();
        entries.sort_by_key(|(path, _, mtime)| (whole_secs(mtime), Self::stage_cost(path), *mtime));
        let bytes_before: u64 = entries.iter().map(|(_, len, _)| len).sum();
        let mut result = GcResult {
            examined: entries.len() as u64,
            evicted: 0,
            bytes_before,
            bytes_after: bytes_before,
        };
        for (path, len, _) in entries {
            if result.bytes_after <= max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                result.evicted += 1;
                result.bytes_after -= len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Delete every entry (and abandoned temp/lock file). Returns the
    /// number of entries removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for stage in DISK_STAGES {
            let dir = self.root.join(stage.label());
            let Ok(rd) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in rd.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let is_entry = name.ends_with(".bin") || name.ends_with(".json");
                if fs::remove_file(entry.path()).is_ok() && is_entry {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A fresh per-test cache root under the system temp dir.
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "openarc-cache-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(n: u64) -> Json {
        Json::obj(vec![("n", Json::from(n))])
    }

    fn decode_n(v: &Json) -> Result<u64, String> {
        v.get("n")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing n".to_string())
    }

    #[test]
    fn store_then_load_round_trips_and_counts() {
        let cache = DiskCache::new(scratch("roundtrip"));
        let id = ArtifactId(7);
        assert!(matches!(
            cache.load_with(Stage::Frontend, id, decode_n),
            Lookup::Miss
        ));
        assert!(cache.store(Stage::Frontend, id, payload(7)));
        match cache.load_with(Stage::Frontend, id, decode_n) {
            Lookup::Hit(n) => assert_eq!(n, 7),
            _ => panic!("expected hit"),
        }
        // Same id under a different stage is a different entry.
        assert!(matches!(
            cache.load_with(Stage::Execute, id, decode_n),
            Lookup::Miss
        ));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 2, 1));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_are_deleted_and_recomputable() {
        // Truncated bytes, garbage bytes, wrong schema version, and a
        // decodable header with an undecodable payload: all Corrupt, all
        // deleted, none panic.
        let cache = DiskCache::new(scratch("corrupt"));
        let id = ArtifactId(9);
        let key = cache.entry_key(Stage::Frontend, id);
        let path = cache.entry_path(Stage::Frontend, key, "json");
        let wrong_schema = Json::obj(vec![
            ("schema", Json::from(SCHEMA_VERSION + 1)),
            ("tool", Json::from(tool_fingerprint())),
            ("stage", Json::from(Stage::Frontend.label())),
            ("id", Json::from(id.0)),
            ("payload", payload(9)),
        ])
        .pretty();
        let bad_payload = Json::obj(vec![
            ("schema", Json::from(SCHEMA_VERSION)),
            ("tool", Json::from(tool_fingerprint())),
            ("stage", Json::from(Stage::Frontend.label())),
            ("id", Json::from(id.0)),
            ("payload", Json::obj(vec![("wrong", Json::Null)])),
        ])
        .pretty();
        for bytes in [
            "{\"schema\": 1, \"tool\"",
            "not json at all",
            &wrong_schema,
            &bad_payload,
        ] {
            assert!(cache.store(Stage::Frontend, id, payload(9)));
            fs::write(&path, bytes).unwrap();
            assert!(matches!(
                cache.load_with(Stage::Frontend, id, decode_n),
                Lookup::Corrupt
            ));
            assert!(!path.exists(), "corrupt entry must be deleted");
            // The stage recomputes and re-stores cleanly.
            assert!(cache.store(Stage::Frontend, id, payload(9)));
            assert!(matches!(
                cache.load_with(Stage::Frontend, id, decode_n),
                Lookup::Hit(9)
            ));
        }
        assert_eq!(cache.stats().corrupt, 4);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let cache = DiskCache::new(scratch("gc"));
        for n in 0..4u64 {
            assert!(cache.store(Stage::Frontend, ArtifactId(n), payload(n)));
        }
        // Backdate entries 0..3 in order; then touch entry 0 via a hit so
        // it becomes the newest and survives eviction.
        let now = SystemTime::now();
        for n in 0..4u64 {
            let key = cache.entry_key(Stage::Frontend, ArtifactId(n));
            let f = fs::File::open(cache.entry_path(Stage::Frontend, key, "json")).unwrap();
            f.set_modified(now - Duration::from_secs(100 - n)).unwrap();
        }
        assert!(matches!(
            cache.load_with(Stage::Frontend, ArtifactId(0), decode_n),
            Lookup::Hit(0)
        ));
        let one_entry = cache.usage().iter().map(|r| r.bytes).sum::<u64>() / 4;
        let gc = cache.gc(2 * one_entry);
        assert_eq!(gc.examined, 4);
        assert_eq!(gc.evicted, 2);
        assert!(gc.bytes_after <= 2 * one_entry && gc.bytes_before > gc.bytes_after);
        // Oldest-touched (1, 2) went; recently-hit 0 and newest 3 remain.
        for (n, hit) in [(0u64, true), (1, false), (2, false), (3, true)] {
            let got = cache.load_with(Stage::Frontend, ArtifactId(n), decode_n);
            assert_eq!(matches!(got, Lookup::Hit(_)), hit, "entry {n}");
        }
        assert_eq!(cache.stats().evictions, 2);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_prefers_evicting_cheap_stages_at_equal_recency() {
        // ROADMAP cost-aware-gc item: a Frontend parse and an Execute run
        // land in the same one-second recency bucket, the Execute entry
        // strictly older by exact mtime. A plain LRU-by-mtime policy
        // (what `gc` used to be) would evict the expensive Execute
        // artifact first; the cost-aware order must keep it and evict the
        // Frontend parse instead.
        let cache = DiskCache::new(scratch("gc-cost"));
        assert!(cache.store(Stage::Frontend, ArtifactId(1), payload(1)));
        assert!(cache.store(Stage::Execute, ArtifactId(2), payload(2)));
        // Pin both mtimes inside one second, Execute older than Frontend.
        let secs = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap()
            .as_secs();
        let bucket = SystemTime::UNIX_EPOCH + Duration::from_secs(secs);
        let touch = |stage: Stage, id: ArtifactId, offset_ms: u64| {
            let key = cache.entry_key(stage, id);
            let f = fs::File::open(cache.entry_path(stage, key, "json")).unwrap();
            f.set_modified(bucket + Duration::from_millis(offset_ms))
                .unwrap();
        };
        touch(Stage::Execute, ArtifactId(2), 100);
        touch(Stage::Frontend, ArtifactId(1), 800);
        let total = cache.usage().iter().map(|r| r.bytes).sum::<u64>();
        let gc = cache.gc(total - 1);
        assert_eq!(gc.examined, 2);
        assert_eq!(gc.evicted, 1);
        assert!(matches!(
            cache.load_with(Stage::Frontend, ArtifactId(1), decode_n),
            Lookup::Miss
        ));
        assert!(matches!(
            cache.load_with(Stage::Execute, ArtifactId(2), decode_n),
            Lookup::Hit(2)
        ));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn clear_empties_the_store() {
        let cache = DiskCache::new(scratch("clear"));
        for n in 0..3u64 {
            assert!(cache.store(Stage::Analysis, ArtifactId(n), payload(n)));
        }
        assert_eq!(cache.clear(), 3);
        assert!(cache.usage().iter().all(|r| r.entries == 0));
        assert!(matches!(
            cache.load_with(Stage::Analysis, ArtifactId(0), decode_n),
            Lookup::Miss
        ));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn concurrent_writers_of_the_same_entry_are_safe() {
        // Two threads race to publish the same content-addressed entry;
        // at least one wins, and the result decodes cleanly either way.
        let cache = std::sync::Arc::new(DiskCache::new(scratch("race")));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                cache.store(Stage::Execute, ArtifactId(1), payload(1))
            }));
        }
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(wins.iter().any(|w| *w), "at least one writer publishes");
        assert!(matches!(
            cache.load_with(Stage::Execute, ArtifactId(1), decode_n),
            Lookup::Hit(1)
        ));
        let _ = fs::remove_dir_all(cache.root());
    }

    /// A small but real frontend artifact for format-negotiation tests.
    fn frontend_artifact(id: u64) -> FrontendArtifact {
        let (program, sema) = openarc_minic::frontend("int x;\nvoid main() { x = 1; }").unwrap();
        FrontendArtifact {
            id: ArtifactId(id),
            program,
            sema,
        }
    }

    #[test]
    fn typed_store_and_load_use_the_binary_format() {
        let cache = DiskCache::new(scratch("typed"));
        let art = frontend_artifact(3);
        assert!(matches!(cache.load_frontend(art.id), Lookup::Miss));
        assert!(cache.store_frontend(&art));
        let key = cache.entry_key(Stage::Frontend, art.id);
        assert!(cache.entry_path(Stage::Frontend, key, "bin").exists());
        assert!(!cache.entry_path(Stage::Frontend, key, "json").exists());
        match cache.load_frontend(art.id) {
            Lookup::Hit(back) => assert_eq!(back.program, art.program),
            _ => panic!("expected binary hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn legacy_json_entries_upgrade_to_binary_on_hit() {
        let cache = DiskCache::new(scratch("upgrade"));
        let art = frontend_artifact(11);
        // A store written by an older build: JSON interchange only.
        assert!(cache.store(
            Stage::Frontend,
            art.id,
            codec::frontend_payload(&art.program, &art.sema),
        ));
        let key = cache.entry_key(Stage::Frontend, art.id);
        assert!(cache.entry_path(Stage::Frontend, key, "json").exists());
        assert!(!cache.entry_path(Stage::Frontend, key, "bin").exists());
        // The hit decodes the JSON entry and migrates it in place.
        match cache.load_frontend(art.id) {
            Lookup::Hit(back) => assert_eq!(back.program, art.program),
            _ => panic!("expected legacy hit"),
        }
        assert!(cache.entry_path(Stage::Frontend, key, "bin").exists());
        assert!(
            !cache.entry_path(Stage::Frontend, key, "json").exists(),
            "legacy entry is retired after the upgrade"
        );
        // The next load is a pure binary hit; migration was not a store.
        assert!(matches!(cache.load_frontend(art.id), Lookup::Hit(_)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.stores), (2, 1));
        let usage = cache.usage();
        let row = usage.iter().find(|r| r.stage == "frontend").unwrap();
        assert_eq!((row.entries, row.bin_entries, row.json_entries), (1, 1, 0));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_binary_entries_are_deleted_and_recomputable() {
        let cache = DiskCache::new(scratch("bin-corrupt"));
        let art = frontend_artifact(5);
        let key = cache.entry_key(Stage::Frontend, art.id);
        let path = cache.entry_path(Stage::Frontend, key, "bin");
        let good = cache.store_frontend(&art);
        assert!(good);
        let original = fs::read(&path).unwrap();
        let truncated = original[..original.len() / 2].to_vec();
        let mut flipped = original.clone();
        flipped[0] ^= 0xff;
        for bytes in [b"junk".to_vec(), truncated, flipped, Vec::new()] {
            fs::write(&path, &bytes).unwrap();
            assert!(matches!(cache.load_frontend(art.id), Lookup::Corrupt));
            assert!(!path.exists(), "corrupt binary entry must be deleted");
            assert!(cache.store_frontend(&art));
            assert!(matches!(cache.load_frontend(art.id), Lookup::Hit(_)));
        }
        assert_eq!(cache.stats().corrupt, 4);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn export_rebuilds_a_loadable_json_store() {
        let cache = DiskCache::new(scratch("export-src"));
        let dest = DiskCache::new(scratch("export-dst"));
        let art = frontend_artifact(21);
        assert!(cache.store_frontend(&art));
        // A legacy JSON straggler rides along verbatim.
        let json_art = frontend_artifact(22);
        assert!(cache.store(
            Stage::Frontend,
            json_art.id,
            codec::frontend_payload(&json_art.program, &json_art.sema),
        ));

        let report = cache.export_json(&dest);
        assert_eq!((report.exported, report.skipped), (2, 0));

        // The target holds JSON only, and both entries load from it.
        let row = dest.usage().into_iter().find(|r| r.stage == "frontend");
        let row = row.unwrap();
        assert_eq!((row.entries, row.bin_entries, row.json_entries), (2, 0, 2));
        for wanted in [&art, &json_art] {
            match dest.load_frontend(wanted.id) {
                Lookup::Hit(back) => assert_eq!(back.program, wanted.program),
                _ => panic!("exported entry did not load"),
            }
        }
        // The source store is untouched by the export.
        let src_row = cache.usage().into_iter().find(|r| r.stage == "frontend");
        let src_row = src_row.unwrap();
        assert_eq!((src_row.bin_entries, src_row.json_entries), (1, 1));
        let _ = fs::remove_dir_all(cache.root());
        let _ = fs::remove_dir_all(dest.root());
    }

    #[test]
    fn tenant_namespaces_are_disjoint() {
        // Same root, same artifact id, three namespaces: each handle
        // addresses its own key, so one tenant's warm entries are plain
        // misses for every other tenant and for the default namespace.
        let root = scratch("tenant");
        let a = DiskCache::with_namespace(&root, "tenant-a");
        let b = DiskCache::with_namespace(&root, "tenant-b");
        let default = DiskCache::new(&root);
        let id = ArtifactId(7);
        assert_ne!(
            a.entry_key(Stage::Frontend, id),
            b.entry_key(Stage::Frontend, id)
        );
        assert_ne!(
            a.entry_key(Stage::Frontend, id),
            default.entry_key(Stage::Frontend, id)
        );
        assert!(a.store(Stage::Frontend, id, payload(1)));
        assert!(matches!(
            a.load_with(Stage::Frontend, id, decode_n),
            Lookup::Hit(1)
        ));
        assert!(matches!(
            b.load_with(Stage::Frontend, id, decode_n),
            Lookup::Miss
        ));
        assert!(matches!(
            default.load_with(Stage::Frontend, id, decode_n),
            Lookup::Miss
        ));
        // The default namespace is the identity: a second handle made via
        // `new` reads what the first wrote.
        assert!(default.store(Stage::Execute, id, payload(2)));
        let again = DiskCache::new(&root);
        assert!(matches!(
            again.load_with(Stage::Execute, id, decode_n),
            Lookup::Hit(2)
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn usage_reports_per_stage_rows() {
        let cache = DiskCache::new(scratch("usage"));
        assert!(cache.store(Stage::Frontend, ArtifactId(1), payload(1)));
        assert!(cache.store(Stage::Execute, ArtifactId(2), payload(2)));
        let usage = cache.usage();
        assert_eq!(usage.len(), DISK_STAGES.len());
        for row in &usage {
            let expect = u64::from(row.stage == "frontend" || row.stage == "execute");
            assert_eq!(row.entries, expect, "{}", row.stage);
            assert_eq!(row.bytes > 0, expect == 1);
        }
        let _ = fs::remove_dir_all(cache.root());
    }
}
