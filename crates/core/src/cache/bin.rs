//! Binary on-disk codec for the cached pipeline artifacts.
//!
//! This is the cache's primary interchange format (the JSON codec in
//! [`super::codec`] is retained as the human-readable export path, see
//! `openarc cache export`). The format is normatively specified in
//! `docs/FORMAT.md`; this module is the reference implementation. In
//! brief:
//!
//! * every entry starts with the 8-byte magic `b"OARCBIN\0"` and a fixed
//!   40-byte little-endian header (format version, stage code, tool
//!   fingerprint hash, artifact id, section count);
//! * the payload is a fixed-order list of length-prefixed **sections**
//!   (`u32` kind + `u64` byte length + payload), one per top-level field
//!   group of the artifact, and the final section ends exactly at EOF;
//! * scalars are little-endian, `f64`/`f32` travel as raw bit patterns,
//!   strings are `u32`-length-prefixed UTF-8 validated (and borrowed)
//!   in place, and closed label sets travel as one-byte codes.
//!
//! A decode is a single sequential pass over the mapped bytes: no
//! intermediate DOM is built (unlike the JSON path, which parses into a
//! `Json` tree first), strings are validated in place and copied exactly
//! once into the artifact, and every length is bounds-checked against the
//! remaining buffer before any allocation. Any malformed input — bad
//! magic, wrong version, truncation, an unknown code, trailing bytes —
//! is a `String` error carrying a byte offset, never a panic; the disk
//! layer treats it as corruption and recomputes.

use crate::exec::{KernelVerification, RunResult};
use crate::ir::{DataAction, DataRegionInfo, KernelInfo, KernelParam, RtOp};
use crate::knowledge::{KernelAssert, KernelBound, KernelKnowledge};
use crate::pipeline::{ArtifactId, Fnv, FrontendArtifact, Stage, TranslatedArtifact};
use crate::translate::Translated;
use openarc_gpusim::{RaceReport, SimClock, TimeBreakdown, TimeCategory};
use openarc_minic::binio as mb;
use openarc_minic::NodeId;
use openarc_openacc::{DataClauseKind, ReductionOp};
use openarc_runtime::coherence::DevSide;
use openarc_runtime::{Direction, Issue, IssueKind, Machine, Report, St, TransferStats};
use openarc_trace::bin::{read_events, write_events, Reader, Writer};
use openarc_trace::TraceEvent;
use openarc_vm::binio as vb;
use openarc_vm::{BasicEnv, Handle};

type R<T> = Result<T, String>;

// ---------------------------------------------------------------------------
// Container constants
// ---------------------------------------------------------------------------

/// Magic bytes opening every binary cache entry.
pub const MAGIC: [u8; 8] = *b"OARCBIN\0";

/// Version of the container layout and every section schema. Bumped on any
/// incompatible change; a reader rejects other versions and the disk layer
/// recomputes the artifact.
pub const FORMAT_VERSION: u32 = 2;

/// Total size of the fixed entry header in bytes.
pub const HEADER_LEN: usize = 40;

/// Section kind codes, globally unique across artifact kinds so a stray
/// section is always identifiable in a hex dump.
pub mod section {
    /// Frontend: the parsed MiniC program.
    pub const PROGRAM: u32 = 1;
    /// Frontend: the semantic tables.
    pub const SEMA: u32 = 2;
    /// Translated: artifact flags (instrumented bit).
    pub const FLAGS: u32 = 3;
    /// Translated: rewritten host program.
    pub const HOST_PROGRAM: u32 = 4;
    /// Translated: host program semantic tables.
    pub const HOST_SEMA: u32 = 5;
    /// Translated: compiled host bytecode module.
    pub const HOST_MODULE: u32 = 6;
    /// Translated: extracted kernel program.
    pub const KERNEL_PROGRAM: u32 = 7;
    /// Translated: compiled kernel bytecode module.
    pub const KERNEL_MODULE: u32 = 8;
    /// Translated: runtime op sequence.
    pub const OPS: u32 = 9;
    /// Translated: kernel info table.
    pub const KERNELS: u32 = 10;
    /// Translated: data region table.
    pub const DATA_REGIONS: u32 = 11;
    /// Translated: update-site table.
    pub const UPDATE_SITES: u32 = 12;
    /// Translated: declare-clause actions.
    pub const DECLARES: u32 = 13;
    /// Run: simulated clock and per-category time breakdown.
    pub const CLOCK: u32 = 14;
    /// Run: final host global values.
    pub const GLOBALS: u32 = 15;
    /// Run: final host memory image.
    pub const MEM: u32 = 16;
    /// Run: transfer statistics.
    pub const STATS: u32 = 17;
    /// Run: coherence findings.
    pub const ISSUES: u32 = 18;
    /// Run: final loop-context stack.
    pub const LOOPS: u32 = 19;
    /// Run: kernel verification verdicts.
    pub const VERIFY: u32 = 20;
    /// Run: race reports.
    pub const RACES: u32 = 21;
    /// Run: launch / instruction counters.
    pub const COUNTS: u32 = 22;
    /// Run: recorded journal event stream.
    pub const EVENTS: u32 = 23;
}

const FRONTEND_SECTIONS: u32 = 2;
const TRANSLATED_SECTIONS: u32 = 11;
const RUN_SECTIONS: u32 = 10;

/// Stage code stored in the header: position in [`super::DISK_STAGES`].
fn stage_code(stage: Stage) -> Option<u32> {
    super::DISK_STAGES
        .iter()
        .position(|s| *s == stage)
        .map(|p| p as u32)
}

/// FNV-1a hash of [`super::tool_fingerprint`], stored in the header so a
/// decoder can reject entries written by another tool version without
/// parsing any payload.
fn tool_hash() -> u64 {
    Fnv::new().write_str(super::tool_fingerprint()).finish()
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

fn put_header(w: &mut Writer, stage: u32, id: ArtifactId, sections: u32) {
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(stage);
    w.put_u64(tool_hash());
    w.put_u64(id.0);
    w.put_u32(sections);
    w.put_u32(0); // reserved
}

/// Validate the fixed header against the expected stage and the running
/// tool, returning the artifact id and a reader positioned at the first
/// section.
fn open<'a>(bytes: &'a [u8], stage: Stage, sections: u32) -> R<(ArtifactId, Reader<'a>)> {
    let code = stage_code(stage)
        .ok_or_else(|| format!("stage {} is not persisted in binary form", stage.label()))?;
    let mut r = Reader::new(bytes);
    if r.bytes(MAGIC.len())? != MAGIC {
        return Err(r.err("bad magic (not an OARCBIN entry)"));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(r.err(&format!(
            "unsupported format version {version} (this reader accepts {FORMAT_VERSION})"
        )));
    }
    let got = r.u32()?;
    if got != code {
        return Err(r.err(&format!(
            "stage code {got} does not match expected {code} ({})",
            stage.label()
        )));
    }
    let tool = r.u64()?;
    if tool != tool_hash() {
        return Err(r.err("tool fingerprint hash mismatch"));
    }
    let id = ArtifactId(r.u64()?);
    let n = r.u32()?;
    if n != sections {
        return Err(r.err(&format!("expected {sections} sections, header says {n}")));
    }
    let reserved = r.u32()?;
    if reserved != 0 {
        return Err(r.err(&format!("reserved header field must be 0, got {reserved}")));
    }
    Ok((id, r))
}

/// Append one section: kind, length placeholder, payload, then patch the
/// real length in.
fn put_section(w: &mut Writer, kind: u32, body: impl FnOnce(&mut Writer)) {
    w.put_u32(kind);
    let at = w.len();
    w.put_u64(0);
    let start = w.len();
    body(w);
    w.patch_u64(at, (w.len() - start) as u64);
}

/// Read one section header, checking the kind, and decode its payload
/// with `body`, which must consume the section exactly.
fn get_section<'a, T>(
    r: &mut Reader<'a>,
    kind: u32,
    body: impl FnOnce(&mut Reader<'a>) -> R<T>,
) -> R<T> {
    let got = r.u32()?;
    if got != kind {
        return Err(r.err(&format!("expected section kind {kind}, found {got}")));
    }
    let len = r.u64()?;
    let len = usize::try_from(len).map_err(|_| r.err("section length overflows usize"))?;
    let mut sub = Reader::new(r.bytes(len)?);
    let v = body(&mut sub).map_err(|e| format!("section {kind}: {e}"))?;
    sub.expect_end()
        .map_err(|e| format!("section {kind}: {e}"))?;
    Ok(v)
}

// ---------------------------------------------------------------------------
// Small field helpers
// ---------------------------------------------------------------------------

/// Write the one-byte code of `v`: its position in the closed `table`.
fn put_code<T: PartialEq + Copy>(w: &mut Writer, table: &[T], v: T, what: &str) {
    let i = table
        .iter()
        .position(|t| *t == v)
        .unwrap_or_else(|| panic!("{what}: value not in closed table"));
    w.put_u8(i as u8);
}

/// Read a one-byte code and resolve it against the closed `table`.
fn get_code<T: Copy>(r: &mut Reader<'_>, table: &[T], what: &str) -> R<T> {
    let c = r.u8()?;
    table
        .get(c as usize)
        .copied()
        .ok_or_else(|| r.err(&format!("unknown {what} code {c}")))
}

fn put_opt_str(w: &mut Writer, v: &Option<String>) {
    match v {
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_string(r: &mut Reader<'_>) -> R<Option<String>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.string()?)),
        t => Err(r.err(&format!("invalid option tag {t}"))),
    }
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_u64(x);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> R<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(r.err(&format!("invalid option tag {t}"))),
    }
}

fn put_strings(w: &mut Writer, xs: &[String]) {
    w.put_seq_len(xs.len());
    for x in xs {
        w.put_str(x);
    }
}

fn get_strings(r: &mut Reader<'_>) -> R<Vec<String>> {
    read_vec(r, |r| r.string())
}

fn read_vec<'a, T>(r: &mut Reader<'a>, mut f: impl FnMut(&mut Reader<'a>) -> R<T>) -> R<Vec<T>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Closed label tables (codes are positions; normative order in FORMAT.md)
// ---------------------------------------------------------------------------

const CLAUSES: [DataClauseKind; 10] = [
    DataClauseKind::Copy,
    DataClauseKind::CopyIn,
    DataClauseKind::CopyOut,
    DataClauseKind::Create,
    DataClauseKind::Present,
    DataClauseKind::PresentOrCopy,
    DataClauseKind::PresentOrCopyIn,
    DataClauseKind::PresentOrCopyOut,
    DataClauseKind::PresentOrCreate,
    DataClauseKind::DevicePtr,
];

const REDUCTIONS: [ReductionOp; 9] = [
    ReductionOp::Add,
    ReductionOp::Mul,
    ReductionOp::Max,
    ReductionOp::Min,
    ReductionOp::BitAnd,
    ReductionOp::BitOr,
    ReductionOp::BitXor,
    ReductionOp::LogAnd,
    ReductionOp::LogOr,
];

const SIDES: [DevSide; 2] = [DevSide::Cpu, DevSide::Gpu];

const STATES: [St; 3] = [St::NotStale, St::MayStale, St::Stale];

const ISSUE_KINDS: [IssueKind; 6] = [
    IssueKind::Redundant,
    IssueKind::MayRedundant,
    IssueKind::Incorrect,
    IssueKind::MayIncorrect,
    IssueKind::Missing,
    IssueKind::MayMissing,
];

// ---------------------------------------------------------------------------
// IR table codecs
// ---------------------------------------------------------------------------

fn put_action(w: &mut Writer, a: &DataAction) {
    w.put_str(&a.var);
    w.put_bool(a.map);
    w.put_bool(a.copyin);
    w.put_bool(a.copyout);
    match a.from_clause {
        Some(c) => {
            w.put_u8(1);
            put_code(w, &CLAUSES, c, "data clause");
        }
        None => w.put_u8(0),
    }
    put_opt_u64(w, a.covering_region.map(|r| r as u64));
    w.put_bool(a.written);
}

fn get_action(r: &mut Reader<'_>) -> R<DataAction> {
    Ok(DataAction {
        var: r.string()?,
        map: r.bool()?,
        copyin: r.bool()?,
        copyout: r.bool()?,
        from_clause: match r.u8()? {
            0 => None,
            1 => Some(get_code(r, &CLAUSES, "data clause")?),
            t => return Err(r.err(&format!("invalid option tag {t}"))),
        },
        covering_region: get_opt_u64(r)?.map(|x| x as usize),
        written: r.bool()?,
    })
}

fn put_actions(w: &mut Writer, actions: &[DataAction]) {
    w.put_seq_len(actions.len());
    for a in actions {
        put_action(w, a);
    }
}

fn get_actions(r: &mut Reader<'_>) -> R<Vec<DataAction>> {
    read_vec(r, get_action)
}

mod param_tag {
    pub const AGGREGATE: u8 = 0;
    pub const SCALAR: u8 = 1;
    pub const SHARED_CELL: u8 = 2;
    pub const REDUCTION_SLOT: u8 = 3;
}

fn put_param(w: &mut Writer, p: &KernelParam) {
    match p {
        KernelParam::Aggregate { var } => {
            w.put_u8(param_tag::AGGREGATE);
            w.put_str(var);
        }
        KernelParam::Scalar { var } => {
            w.put_u8(param_tag::SCALAR);
            w.put_str(var);
        }
        KernelParam::SharedCell { var, init_global } => {
            w.put_u8(param_tag::SHARED_CELL);
            w.put_str(var);
            put_opt_str(w, init_global);
        }
        KernelParam::ReductionSlot { var, op } => {
            w.put_u8(param_tag::REDUCTION_SLOT);
            w.put_str(var);
            put_code(w, &REDUCTIONS, *op, "reduction op");
        }
    }
}

fn get_param(r: &mut Reader<'_>) -> R<KernelParam> {
    let tag = r.u8()?;
    Ok(match tag {
        param_tag::AGGREGATE => KernelParam::Aggregate { var: r.string()? },
        param_tag::SCALAR => KernelParam::Scalar { var: r.string()? },
        param_tag::SHARED_CELL => KernelParam::SharedCell {
            var: r.string()?,
            init_global: get_opt_string(r)?,
        },
        param_tag::REDUCTION_SLOT => KernelParam::ReductionSlot {
            var: r.string()?,
            op: get_code(r, &REDUCTIONS, "reduction op")?,
        },
        other => return Err(r.err(&format!("unknown kernel param tag {other}"))),
    })
}

mod assert_tag {
    pub const CHECKSUM: u8 = 0;
    pub const FINITE: u8 = 1;
    pub const NONNEG: u8 = 2;
}

fn put_knowledge(w: &mut Writer, k: &KernelKnowledge) {
    w.put_seq_len(k.bounds.len());
    for b in &k.bounds {
        w.put_str(&b.var);
        w.put_f64(b.lo);
        w.put_f64(b.hi);
    }
    w.put_seq_len(k.asserts.len());
    for a in &k.asserts {
        match a {
            KernelAssert::ChecksumWithin { var, expected, tol } => {
                w.put_u8(assert_tag::CHECKSUM);
                w.put_str(var);
                w.put_f64(*expected);
                w.put_f64(*tol);
            }
            KernelAssert::AllFinite { var } => {
                w.put_u8(assert_tag::FINITE);
                w.put_str(var);
            }
            KernelAssert::NonNegative { var } => {
                w.put_u8(assert_tag::NONNEG);
                w.put_str(var);
            }
        }
    }
}

fn get_knowledge(r: &mut Reader<'_>) -> R<KernelKnowledge> {
    let bounds = read_vec(r, |r| {
        Ok(KernelBound {
            var: r.string()?,
            lo: r.f64()?,
            hi: r.f64()?,
        })
    })?;
    let asserts = read_vec(r, |r| {
        let tag = r.u8()?;
        Ok(match tag {
            assert_tag::CHECKSUM => KernelAssert::ChecksumWithin {
                var: r.string()?,
                expected: r.f64()?,
                tol: r.f64()?,
            },
            assert_tag::FINITE => KernelAssert::AllFinite { var: r.string()? },
            assert_tag::NONNEG => KernelAssert::NonNegative { var: r.string()? },
            other => return Err(r.err(&format!("unknown assert tag {other}"))),
        })
    })?;
    Ok(KernelKnowledge { bounds, asserts })
}

fn put_kernel(w: &mut Writer, k: &KernelInfo) {
    w.put_str(&k.name);
    w.put_str(&k.seq_name);
    w.put_str(&k.n_threads_global);
    w.put_seq_len(k.params.len());
    for p in &k.params {
        put_param(w, p);
    }
    put_actions(w, &k.actions);
    put_strings(w, &k.gpu_reads);
    put_strings(w, &k.gpu_writes);
    put_strings(w, &k.hoisted_writes);
    w.put_seq_len(k.reductions.len());
    for (var, op) in &k.reductions {
        w.put_str(var);
        put_code(w, &REDUCTIONS, *op, "reduction op");
    }
    put_knowledge(w, &k.knowledge);
    put_opt_u64(w, k.wave_override.map(u64::from));
    w.put_opt_i64(k.queue);
    put_opt_str(w, &k.if_global);
    w.put_u32(k.stmt);
    w.put_u32(k.line);
}

fn get_kernel(r: &mut Reader<'_>) -> R<KernelInfo> {
    Ok(KernelInfo {
        name: r.string()?,
        seq_name: r.string()?,
        n_threads_global: r.string()?,
        params: read_vec(r, get_param)?,
        actions: get_actions(r)?,
        gpu_reads: get_strings(r)?,
        gpu_writes: get_strings(r)?,
        hoisted_writes: get_strings(r)?,
        reductions: read_vec(r, |r| {
            Ok((r.string()?, get_code(r, &REDUCTIONS, "reduction op")?))
        })?,
        knowledge: get_knowledge(r)?,
        wave_override: get_opt_u64(r)?.map(|x| x as u32),
        queue: r.opt_i64()?,
        if_global: get_opt_string(r)?,
        stmt: r.u32()? as NodeId,
        line: r.u32()?,
    })
}

fn put_region(w: &mut Writer, region: &DataRegionInfo) {
    put_actions(w, &region.actions);
    put_opt_str(w, &region.if_global);
    w.put_u32(region.stmt);
}

fn get_region(r: &mut Reader<'_>) -> R<DataRegionInfo> {
    Ok(DataRegionInfo {
        actions: get_actions(r)?,
        if_global: get_opt_string(r)?,
        stmt: r.u32()? as NodeId,
    })
}

mod op_tag {
    pub const DATA_ENTER: u8 = 0;
    pub const DATA_EXIT: u8 = 1;
    pub const LAUNCH: u8 = 2;
    pub const UPDATE: u8 = 3;
    pub const WAIT: u8 = 4;
    pub const CHECK_READ: u8 = 5;
    pub const CHECK_WRITE: u8 = 6;
    pub const RESET: u8 = 7;
    pub const LOOP_ENTER: u8 = 8;
    pub const LOOP_TICK: u8 = 9;
    pub const LOOP_EXIT: u8 = 10;
}

fn put_op(w: &mut Writer, op: &RtOp) {
    match op {
        RtOp::DataEnter(i) => {
            w.put_u8(op_tag::DATA_ENTER);
            w.put_u64(*i as u64);
        }
        RtOp::DataExit(i) => {
            w.put_u8(op_tag::DATA_EXIT);
            w.put_u64(*i as u64);
        }
        RtOp::Launch(i) => {
            w.put_u8(op_tag::LAUNCH);
            w.put_u64(*i as u64);
        }
        RtOp::Update {
            to_host,
            to_device,
            queue,
            site,
            if_global,
        } => {
            w.put_u8(op_tag::UPDATE);
            put_strings(w, to_host);
            put_strings(w, to_device);
            w.put_opt_i64(*queue);
            w.put_str(site);
            put_opt_str(w, if_global);
        }
        RtOp::Wait(q) => {
            w.put_u8(op_tag::WAIT);
            w.put_opt_i64(*q);
        }
        RtOp::CheckRead { var, side, site } => {
            w.put_u8(op_tag::CHECK_READ);
            w.put_str(var);
            put_code(w, &SIDES, *side, "side");
            w.put_str(site);
        }
        RtOp::CheckWrite {
            var,
            side,
            total,
            site,
        } => {
            w.put_u8(op_tag::CHECK_WRITE);
            w.put_str(var);
            put_code(w, &SIDES, *side, "side");
            w.put_bool(*total);
            w.put_str(site);
        }
        RtOp::ResetStatus { var, side, st } => {
            w.put_u8(op_tag::RESET);
            w.put_str(var);
            put_code(w, &SIDES, *side, "side");
            put_code(w, &STATES, *st, "coherence state");
        }
        RtOp::LoopEnter { label } => {
            w.put_u8(op_tag::LOOP_ENTER);
            w.put_str(label);
        }
        RtOp::LoopTick => w.put_u8(op_tag::LOOP_TICK),
        RtOp::LoopExit => w.put_u8(op_tag::LOOP_EXIT),
    }
}

fn get_op(r: &mut Reader<'_>) -> R<RtOp> {
    let tag = r.u8()?;
    Ok(match tag {
        op_tag::DATA_ENTER => RtOp::DataEnter(r.u64()? as usize),
        op_tag::DATA_EXIT => RtOp::DataExit(r.u64()? as usize),
        op_tag::LAUNCH => RtOp::Launch(r.u64()? as usize),
        op_tag::UPDATE => RtOp::Update {
            to_host: get_strings(r)?,
            to_device: get_strings(r)?,
            queue: r.opt_i64()?,
            site: r.string()?,
            if_global: get_opt_string(r)?,
        },
        op_tag::WAIT => RtOp::Wait(r.opt_i64()?),
        op_tag::CHECK_READ => RtOp::CheckRead {
            var: r.string()?,
            side: get_code(r, &SIDES, "side")?,
            site: r.string()?,
        },
        op_tag::CHECK_WRITE => RtOp::CheckWrite {
            var: r.string()?,
            side: get_code(r, &SIDES, "side")?,
            total: r.bool()?,
            site: r.string()?,
        },
        op_tag::RESET => RtOp::ResetStatus {
            var: r.string()?,
            side: get_code(r, &SIDES, "side")?,
            st: get_code(r, &STATES, "coherence state")?,
        },
        op_tag::LOOP_ENTER => RtOp::LoopEnter { label: r.string()? },
        op_tag::LOOP_TICK => RtOp::LoopTick,
        op_tag::LOOP_EXIT => RtOp::LoopExit,
        other => return Err(r.err(&format!("unknown op tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Run surface codecs
// ---------------------------------------------------------------------------

fn put_loops(w: &mut Writer, loops: &[(String, i64)]) {
    w.put_seq_len(loops.len());
    for (label, i) in loops {
        w.put_str(label);
        w.put_i64(*i);
    }
}

fn get_loops(r: &mut Reader<'_>) -> R<Vec<(String, i64)>> {
    read_vec(r, |r| Ok((r.string()?, r.i64()?)))
}

fn put_issue(w: &mut Writer, i: &Issue) {
    put_code(w, &ISSUE_KINDS, i.kind, "issue kind");
    w.put_str(&i.var);
    w.put_str(&i.site);
    w.put_u8(match i.direction {
        None => 0,
        Some(Direction::ToDevice) => 1,
        Some(Direction::ToHost) => 2,
    });
    put_loops(w, &i.loop_context);
}

fn get_issue(r: &mut Reader<'_>) -> R<Issue> {
    Ok(Issue {
        kind: get_code(r, &ISSUE_KINDS, "issue kind")?,
        var: r.string()?,
        site: r.string()?,
        direction: match r.u8()? {
            0 => None,
            1 => Some(Direction::ToDevice),
            2 => Some(Direction::ToHost),
            other => return Err(r.err(&format!("unknown direction code {other}"))),
        },
        loop_context: get_loops(r)?,
    })
}

fn put_kv(w: &mut Writer, k: &KernelVerification) {
    w.put_str(&k.kernel);
    w.put_u64(k.launches);
    w.put_u64(k.failed_launches);
    w.put_u64(k.compared_elems);
    w.put_u64(k.mismatched_elems);
    w.put_f64(k.max_abs_err);
    w.put_u64(k.assertion_failures);
}

fn get_kv(r: &mut Reader<'_>) -> R<KernelVerification> {
    Ok(KernelVerification {
        kernel: r.string()?,
        launches: r.u64()?,
        failed_launches: r.u64()?,
        compared_elems: r.u64()?,
        mismatched_elems: r.u64()?,
        max_abs_err: r.f64()?,
        assertion_failures: r.u64()?,
    })
}

fn put_race(w: &mut Writer, race: &RaceReport) {
    w.put_u32(race.handle.0);
    w.put_str(&race.label);
    w.put_u64(race.conflicts);
    w.put_u64(race.example_idx);
    w.put_u64(race.example_threads.0);
    w.put_u64(race.example_threads.1);
}

fn get_race(r: &mut Reader<'_>) -> R<RaceReport> {
    Ok(RaceReport {
        handle: Handle(r.u32()?),
        label: r.string()?,
        conflicts: r.u64()?,
        example_idx: r.u64()?,
        example_threads: (r.u64()?, r.u64()?),
    })
}

// ---------------------------------------------------------------------------
// Artifact encoders
// ---------------------------------------------------------------------------

/// Encode a frontend artifact as a complete binary entry.
pub fn encode_frontend(art: &FrontendArtifact) -> Vec<u8> {
    let mut w = Writer::new();
    put_header(
        &mut w,
        stage_code(Stage::Frontend).expect("frontend is a disk stage"),
        art.id,
        FRONTEND_SECTIONS,
    );
    put_section(&mut w, section::PROGRAM, |w| {
        mb::write_program(w, &art.program)
    });
    put_section(&mut w, section::SEMA, |w| mb::write_sema(w, &art.sema));
    w.into_bytes()
}

/// Encode a translation artifact as a complete binary entry. `stage` must
/// be the disk stage the entry is keyed under ([`Stage::Analysis`] or
/// [`Stage::Instrument`]).
pub fn encode_translated(stage: Stage, art: &TranslatedArtifact) -> Vec<u8> {
    assert!(
        matches!(stage, Stage::Analysis | Stage::Instrument),
        "translated artifacts live in the analysis/instrument stages"
    );
    let tr = &art.tr;
    let mut w = Writer::new();
    put_header(
        &mut w,
        stage_code(stage).expect("checked above"),
        art.id,
        TRANSLATED_SECTIONS,
    );
    put_section(&mut w, section::FLAGS, |w| w.put_bool(art.instrumented));
    put_section(&mut w, section::HOST_PROGRAM, |w| {
        mb::write_program(w, &tr.host_program)
    });
    put_section(&mut w, section::HOST_SEMA, |w| {
        mb::write_sema(w, &tr.host_sema)
    });
    put_section(&mut w, section::HOST_MODULE, |w| {
        vb::write_module(w, &tr.host_module)
    });
    put_section(&mut w, section::KERNEL_PROGRAM, |w| {
        mb::write_program(w, &tr.kernel_program)
    });
    put_section(&mut w, section::KERNEL_MODULE, |w| {
        vb::write_module(w, &tr.kernel_module)
    });
    put_section(&mut w, section::OPS, |w| {
        w.put_seq_len(tr.ops.len());
        for op in &tr.ops {
            put_op(w, op);
        }
    });
    put_section(&mut w, section::KERNELS, |w| {
        w.put_seq_len(tr.kernels.len());
        for k in &tr.kernels {
            put_kernel(w, k);
        }
    });
    put_section(&mut w, section::DATA_REGIONS, |w| {
        w.put_seq_len(tr.data_regions.len());
        for region in &tr.data_regions {
            put_region(w, region);
        }
    });
    put_section(&mut w, section::UPDATE_SITES, |w| {
        w.put_seq_len(tr.update_sites.len());
        for (site, id) in &tr.update_sites {
            w.put_str(site);
            w.put_u32(*id);
        }
    });
    put_section(&mut w, section::DECLARES, |w| put_actions(w, &tr.declares));
    w.into_bytes()
}

/// Encode a finished run's observable surface plus its recorded journal
/// event stream as a complete binary entry.
pub fn encode_run(id: ArtifactId, r: &RunResult, events: &[TraceEvent]) -> Vec<u8> {
    let m = &r.machine;
    let mut w = Writer::new();
    put_header(
        &mut w,
        stage_code(Stage::Execute).expect("execute is a disk stage"),
        id,
        RUN_SECTIONS,
    );
    put_section(&mut w, section::CLOCK, |w| {
        w.put_f64(m.clock.now());
        w.put_seq_len(TimeCategory::ALL.len());
        for c in TimeCategory::ALL.iter() {
            w.put_f64(m.clock.breakdown.get(*c));
        }
        let queues = m.clock.queue_snapshot();
        w.put_seq_len(queues.len());
        for (dev, q, end) in queues {
            w.put_u32(dev.0);
            w.put_i64(q);
            w.put_f64(end);
        }
    });
    put_section(&mut w, section::GLOBALS, |w| {
        w.put_seq_len(m.host.globals.len());
        for v in &m.host.globals {
            vb::write_value(w, v);
        }
    });
    put_section(&mut w, section::MEM, |w| vb::write_memspace(w, &m.host.mem));
    put_section(&mut w, section::STATS, |w| {
        w.put_u64(m.stats.h2d_bytes);
        w.put_u64(m.stats.d2h_bytes);
        w.put_u64(m.stats.d2d_bytes);
        w.put_u64(m.stats.h2d_count);
        w.put_u64(m.stats.d2h_count);
        w.put_u64(m.stats.d2d_count);
        w.put_u64(m.stats.dev_allocs);
        w.put_u64(m.stats.dev_frees);
    });
    put_section(&mut w, section::ISSUES, |w| {
        w.put_seq_len(m.report.issues.len());
        for i in &m.report.issues {
            put_issue(w, i);
        }
    });
    put_section(&mut w, section::LOOPS, |w| put_loops(w, &m.loop_context));
    put_section(&mut w, section::VERIFY, |w| {
        w.put_seq_len(r.verify.len());
        for k in &r.verify {
            put_kv(w, k);
        }
    });
    put_section(&mut w, section::RACES, |w| {
        w.put_seq_len(r.races.len());
        for (name, race) in &r.races {
            w.put_str(name);
            put_race(w, race);
        }
    });
    put_section(&mut w, section::COUNTS, |w| {
        w.put_u64(r.kernel_launches);
        w.put_u64(r.host_instrs);
    });
    put_section(&mut w, section::EVENTS, |w| write_events(w, events));
    w.into_bytes()
}

// ---------------------------------------------------------------------------
// Artifact decoders
// ---------------------------------------------------------------------------

/// A decoded binary cache entry of any disk stage, as returned by
/// [`decode_entry`] (used by `openarc cache export` and the cache bench,
/// which discover entries on disk without knowing their ids up front).
pub enum Artifact {
    /// A [`Stage::Frontend`] entry.
    Frontend(Box<FrontendArtifact>),
    /// A [`Stage::Analysis`] or [`Stage::Instrument`] entry.
    Translated(Box<TranslatedArtifact>),
    /// A [`Stage::Execute`] entry: run surface plus journal events.
    Run(Box<(RunResult, Vec<TraceEvent>)>),
}

fn decode_frontend_body(bytes: &[u8]) -> R<(ArtifactId, FrontendArtifact)> {
    let (id, mut r) = open(bytes, Stage::Frontend, FRONTEND_SECTIONS)?;
    let program = get_section(&mut r, section::PROGRAM, mb::read_program)?;
    let sema = get_section(&mut r, section::SEMA, mb::read_sema)?;
    r.expect_end()?;
    Ok((id, FrontendArtifact { id, program, sema }))
}

fn decode_translated_body(stage: Stage, bytes: &[u8]) -> R<(ArtifactId, TranslatedArtifact)> {
    let (id, mut r) = open(bytes, stage, TRANSLATED_SECTIONS)?;
    let instrumented = get_section(&mut r, section::FLAGS, |b| b.bool())?;
    let host_program = get_section(&mut r, section::HOST_PROGRAM, mb::read_program)?;
    let host_sema = get_section(&mut r, section::HOST_SEMA, mb::read_sema)?;
    let host_module = get_section(&mut r, section::HOST_MODULE, vb::read_module)?;
    let kernel_program = get_section(&mut r, section::KERNEL_PROGRAM, mb::read_program)?;
    let kernel_module = get_section(&mut r, section::KERNEL_MODULE, vb::read_module)?;
    let ops = get_section(&mut r, section::OPS, |b| read_vec(b, get_op))?;
    let kernels = get_section(&mut r, section::KERNELS, |b| read_vec(b, get_kernel))?;
    let data_regions = get_section(&mut r, section::DATA_REGIONS, |b| read_vec(b, get_region))?;
    let update_sites = get_section(&mut r, section::UPDATE_SITES, |b| {
        read_vec(b, |b| Ok((b.string()?, b.u32()? as NodeId)))
    })?;
    let declares = get_section(&mut r, section::DECLARES, get_actions)?;
    r.expect_end()?;
    Ok((
        id,
        TranslatedArtifact {
            id,
            instrumented,
            tr: Translated {
                host_program,
                host_sema,
                host_module,
                kernel_program,
                kernel_module,
                ops,
                kernels,
                data_regions,
                update_sites,
                declares,
            },
        },
    ))
}

fn decode_run_body(bytes: &[u8]) -> R<(ArtifactId, RunResult, Vec<TraceEvent>)> {
    let (id, mut r) = open(bytes, Stage::Execute, RUN_SECTIONS)?;
    let (now, breakdown, queues) = get_section(&mut r, section::CLOCK, |b| {
        let now = b.f64()?;
        let n = b.seq_len()?;
        if n != TimeCategory::ALL.len() {
            return Err(b.err(&format!(
                "expected {} time categories, got {n}",
                TimeCategory::ALL.len()
            )));
        }
        let mut breakdown = TimeBreakdown::default();
        for cat in TimeCategory::ALL.iter() {
            breakdown.add(*cat, b.f64()?);
        }
        let nq = b.seq_len()?;
        let mut queues = Vec::with_capacity(nq);
        for _ in 0..nq {
            queues.push((openarc_gpusim::DeviceId(b.u32()?), b.i64()?, b.f64()?));
        }
        Ok((now, breakdown, queues))
    })?;
    let globals = get_section(&mut r, section::GLOBALS, |b| read_vec(b, vb::read_value))?;
    let mem = get_section(&mut r, section::MEM, vb::read_memspace)?;

    let mut machine = Machine::new(BasicEnv { globals, mem }, false);
    machine.clock = SimClock::restore(now, breakdown, queues);
    machine.stats = get_section(&mut r, section::STATS, |b| {
        Ok(TransferStats {
            h2d_bytes: b.u64()?,
            d2h_bytes: b.u64()?,
            d2d_bytes: b.u64()?,
            h2d_count: b.u64()?,
            d2h_count: b.u64()?,
            d2d_count: b.u64()?,
            dev_allocs: b.u64()?,
            dev_frees: b.u64()?,
        })
    })?;
    machine.report = Report {
        issues: get_section(&mut r, section::ISSUES, |b| read_vec(b, get_issue))?,
    };
    machine.loop_context = get_section(&mut r, section::LOOPS, get_loops)?;

    let verify = get_section(&mut r, section::VERIFY, |b| read_vec(b, get_kv))?;
    let races = get_section(&mut r, section::RACES, |b| {
        read_vec(b, |b| Ok((b.string()?, get_race(b)?)))
    })?;
    let (kernel_launches, host_instrs) =
        get_section(&mut r, section::COUNTS, |b| Ok((b.u64()?, b.u64()?)))?;
    let events = get_section(&mut r, section::EVENTS, read_events)?;
    r.expect_end()?;
    Ok((
        id,
        RunResult {
            machine,
            verify,
            races,
            kernel_launches,
            host_instrs,
        },
        events,
    ))
}

/// Decode a binary entry found under `stage`'s store directory, trusting
/// the artifact id recorded in its header. Errors (never panics) on any
/// malformed input or if `stage` has no binary artifact form.
pub fn decode_entry(stage: Stage, bytes: &[u8]) -> R<(ArtifactId, Artifact)> {
    match stage {
        Stage::Frontend => {
            let (id, art) = decode_frontend_body(bytes)?;
            Ok((id, Artifact::Frontend(Box::new(art))))
        }
        Stage::Analysis | Stage::Instrument => {
            let (id, art) = decode_translated_body(stage, bytes)?;
            Ok((id, Artifact::Translated(Box::new(art))))
        }
        Stage::Execute => {
            let (id, run, events) = decode_run_body(bytes)?;
            Ok((id, Artifact::Run(Box::new((run, events)))))
        }
        other => Err(format!(
            "stage {} is not persisted in binary form",
            other.label()
        )),
    }
}

fn check_id(got: ArtifactId, want: ArtifactId) -> R<()> {
    if got != want {
        return Err(format!(
            "artifact id mismatch: entry holds {:#018x}, expected {:#018x}",
            got.0, want.0
        ));
    }
    Ok(())
}

/// Decode a frontend entry, checking the header id against the expected
/// cache key id.
pub fn decode_frontend(id: ArtifactId, bytes: &[u8]) -> R<FrontendArtifact> {
    let (got, art) = decode_frontend_body(bytes)?;
    check_id(got, id)?;
    Ok(art)
}

/// Decode a translation entry stored under `stage`, checking the header
/// id against the expected cache key id.
pub fn decode_translated(stage: Stage, id: ArtifactId, bytes: &[u8]) -> R<TranslatedArtifact> {
    let (got, art) = decode_translated_body(stage, bytes)?;
    check_id(got, id)?;
    Ok(art)
}

/// Decode a run entry, checking the header id against the expected cache
/// key id.
pub fn decode_run(id: ArtifactId, bytes: &[u8]) -> R<(RunResult, Vec<TraceEvent>)> {
    let (got, run, events) = decode_run_body(bytes)?;
    check_id(got, id)?;
    Ok((run, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use crate::translate::{translate, TranslateOptions};
    use openarc_minic::frontend;
    use openarc_trace::Journal;

    const SRC: &str = "double q[16];\ndouble w[16];\ndouble acc;\nvoid main() {\n int j;\n for (j = 0; j < 16; j++) { w[j] = (double) j; }\n #pragma acc data copyin(w) copyout(q)\n {\n  #pragma openarc verify bounds(q, 0.0, 100.0)\n  #pragma acc kernels loop gang reduction(+:acc)\n  for (j = 0; j < 16; j++) { q[j] = w[j] * 2.0; acc = acc + w[j]; }\n  #pragma acc update host(q) if(1)\n }\n}";

    fn frontend_artifact() -> FrontendArtifact {
        let (program, sema) = frontend(SRC).unwrap();
        FrontendArtifact {
            id: ArtifactId(7),
            program,
            sema,
        }
    }

    fn translated(instrument: bool) -> TranslatedArtifact {
        let (p, s) = frontend(SRC).unwrap();
        let tr = translate(
            &p,
            &s,
            &TranslateOptions {
                instrument,
                ..Default::default()
            },
        )
        .unwrap();
        TranslatedArtifact {
            id: ArtifactId(42),
            instrumented: instrument,
            tr,
        }
    }

    fn run_entry() -> (RunResult, Vec<TraceEvent>, Vec<u8>) {
        let art = translated(true);
        let journal = Journal::enabled();
        let opts = ExecOptions {
            check_transfers: true,
            journal: journal.clone(),
            ..Default::default()
        };
        let r = execute(&art.tr, &opts).unwrap();
        let events = journal.drain();
        assert!(!events.is_empty());
        let bytes = encode_run(ArtifactId(9), &r, &events);
        (r, events, bytes)
    }

    /// Every byte offset at which a header field or section begins or
    /// ends, derived by walking the container framing.
    fn boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut out = vec![0, 8, 12, 16, 24, 32, 36, HEADER_LEN];
        let mut pos = HEADER_LEN;
        while pos + 12 <= bytes.len() {
            out.push(pos + 4); // after section kind
            out.push(pos + 12); // after section length
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
            pos += 12 + len;
            out.push(pos.min(bytes.len()));
        }
        out
    }

    #[test]
    fn frontend_round_trips_bit_identically() {
        let art = frontend_artifact();
        let bytes = encode_frontend(&art);
        let back = decode_frontend(art.id, &bytes).unwrap();
        assert_eq!(back.id, art.id);
        assert_eq!(back.program, art.program);
        assert_eq!(encode_frontend(&back), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn translated_round_trips_bit_identically() {
        for (instrument, stage) in [(false, Stage::Analysis), (true, Stage::Instrument)] {
            let art = translated(instrument);
            let bytes = encode_translated(stage, &art);
            let back = decode_translated(stage, art.id, &bytes).unwrap();
            assert_eq!(back.instrumented, instrument);
            assert_eq!(back.tr.ops, art.tr.ops);
            assert_eq!(back.tr.kernels.len(), art.tr.kernels.len());
            assert_eq!(back.tr.update_sites, art.tr.update_sites);
            assert_eq!(
                encode_translated(stage, &back),
                bytes,
                "re-encode is byte-identical"
            );
        }
    }

    #[test]
    fn restored_translation_still_executes() {
        let art = translated(true);
        let bytes = encode_translated(Stage::Instrument, &art);
        let back = decode_translated(Stage::Instrument, art.id, &bytes).unwrap();
        let a = execute(&art.tr, &ExecOptions::default()).unwrap();
        let b = execute(&back.tr, &ExecOptions::default()).unwrap();
        assert_eq!(a.sim_time_us(), b.sim_time_us());
        assert_eq!(a.kernel_launches, b.kernel_launches);
        assert_eq!(a.machine.stats, b.machine.stats);
    }

    #[test]
    fn run_round_trips_bit_identically() {
        let (r, events, bytes) = run_entry();
        let (back, back_events) = decode_run(ArtifactId(9), &bytes).unwrap();
        assert_eq!(back_events, events, "journal replay stream is exact");
        assert_eq!(back.sim_time_us().to_bits(), r.sim_time_us().to_bits());
        assert_eq!(back.kernel_launches, r.kernel_launches);
        assert_eq!(back.host_instrs, r.host_instrs);
        assert_eq!(back.machine.stats, r.machine.stats);
        assert_eq!(back.machine.report.issues, r.machine.report.issues);
        assert_eq!(
            encode_run(ArtifactId(9), &back, &back_events),
            bytes,
            "re-encode is byte-identical"
        );
    }

    #[test]
    fn decode_entry_returns_the_stage_shaped_artifact() {
        let fe = frontend_artifact();
        let (id, art) = decode_entry(Stage::Frontend, &encode_frontend(&fe)).unwrap();
        assert_eq!(id, fe.id);
        assert!(matches!(art, Artifact::Frontend(_)));

        let tr = translated(false);
        let (id, art) =
            decode_entry(Stage::Analysis, &encode_translated(Stage::Analysis, &tr)).unwrap();
        assert_eq!(id, tr.id);
        assert!(matches!(art, Artifact::Translated(_)));

        let (_, _, bytes) = run_entry();
        let (id, art) = decode_entry(Stage::Execute, &bytes).unwrap();
        assert_eq!(id, ArtifactId(9));
        assert!(matches!(art, Artifact::Run(_)));

        assert!(decode_entry(Stage::Plan, &bytes).is_err());
    }

    #[test]
    fn header_fields_are_all_validated() {
        let art = frontend_artifact();
        let good = encode_frontend(&art);
        assert!(decode_frontend(art.id, &good).is_ok());

        // Flipped magic byte.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(decode_frontend(art.id, &bad).unwrap_err().contains("magic"));

        // Unsupported format version.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&999u32.to_le_bytes());
        assert!(decode_frontend(art.id, &bad)
            .unwrap_err()
            .contains("version"));

        // Wrong stage directory for the entry's stage code.
        assert!(decode_entry(Stage::Execute, &good)
            .err()
            .unwrap()
            .contains("stage code"));

        // Another tool version's fingerprint hash.
        let mut bad = good.clone();
        bad[16] ^= 0xff;
        assert!(decode_frontend(art.id, &bad)
            .unwrap_err()
            .contains("fingerprint"));

        // Key/id mismatch.
        assert!(decode_frontend(ArtifactId(8), &good)
            .unwrap_err()
            .contains("id mismatch"));

        // Wrong section count.
        let mut bad = good.clone();
        bad[32..36].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_frontend(art.id, &bad)
            .unwrap_err()
            .contains("sections"));

        // Non-zero reserved field.
        let mut bad = good.clone();
        bad[36] = 1;
        assert!(decode_frontend(art.id, &bad)
            .unwrap_err()
            .contains("reserved"));
    }

    #[test]
    fn frontend_truncation_at_every_byte_errors_cleanly() {
        let art = frontend_artifact();
        let bytes = encode_frontend(&art);
        for len in 0..bytes.len() {
            assert!(
                decode_frontend(art.id, &bytes[..len]).is_err(),
                "truncation to {len} bytes must be an error"
            );
        }
    }

    #[test]
    fn truncation_at_every_section_boundary_errors_cleanly() {
        let tr = translated(true);
        let (_, _, run_bytes) = run_entry();
        let cases = [
            (Stage::Instrument, encode_translated(Stage::Instrument, &tr)),
            (Stage::Execute, run_bytes),
        ];
        for (stage, bytes) in cases {
            for at in boundaries(&bytes) {
                for cut in [at.saturating_sub(1), at] {
                    if cut >= bytes.len() {
                        continue;
                    }
                    assert!(
                        decode_entry(stage, &bytes[..cut]).is_err(),
                        "truncation at {cut} must be an error"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocating() {
        let art = frontend_artifact();
        let mut bytes = encode_frontend(&art);
        // First section's u64 length, at header end + 4 (after the kind).
        bytes[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_frontend(art.id, &bytes).is_err());
        // And a large-but-plausible lie that exceeds the buffer.
        let mut bytes = encode_frontend(&art);
        bytes[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(decode_frontend(art.id, &bytes).is_err());
    }

    #[test]
    fn wrong_section_kind_and_trailing_bytes_are_errors() {
        let art = frontend_artifact();
        let mut bytes = encode_frontend(&art);
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_frontend(art.id, &bytes)
            .unwrap_err()
            .contains("section kind"));

        let mut bytes = encode_frontend(&art);
        bytes.push(0);
        assert!(decode_frontend(art.id, &bytes).is_err());
    }
}
