//! JSON codecs for the disk-cached pipeline artifacts.
//!
//! Three artifact families go to disk (see [`super::DISK_STAGES`]):
//!
//! * **Frontend** — the parsed [`Program`] and its [`Sema`] tables
//!   (NodeIds are stored, so downstream id-keyed tables stay valid).
//! * **Translated** — the full translator output: both programs, both
//!   compiled modules, and the runtime-op/kernel/region tables.
//! * **Run** — the *observable surface* of a finished execution: final
//!   host memory image (slot table, so [`openarc_vm::Handle`]s stay
//!   valid), simulated clock and per-category breakdown, transfer stats,
//!   coherence findings, verification verdicts, races, and the exact
//!   journal event stream for byte-identical replay. The simulated
//!   device/coherence internals are *not* stored: a cached run is
//!   read-only and consumers only touch the serialized surface.
//!
//! Every `f64` is encoded as its exact bit pattern (`u64`), so `NaN`,
//! infinities, and `-0.0` survive and a decode→encode round trip is
//! byte-identical. Closed label sets (sides, states, issue kinds, …)
//! decode by interning against the known constants; an unknown label is a
//! decode error, which the disk layer treats as corruption and recomputes.

use crate::exec::{KernelVerification, RunResult};
use crate::ir::{DataAction, DataRegionInfo, KernelInfo, KernelParam, RtOp};
use crate::knowledge::{KernelAssert, KernelBound, KernelKnowledge};
use crate::pipeline::{ArtifactId, FrontendArtifact, TranslatedArtifact};
use crate::translate::Translated;
use openarc_gpusim::{RaceReport, SimClock, TimeBreakdown, TimeCategory};
use openarc_minic::jsonio as mj;
use openarc_minic::{NodeId, Program, Sema};
use openarc_openacc::{DataClauseKind, ReductionOp};
use openarc_runtime::coherence::DevSide;
use openarc_runtime::{Direction, Issue, IssueKind, Machine, Report, St, TransferStats};
use openarc_trace::codec::{events_from_json, events_to_json, f64_to_json};
use openarc_trace::json::Json;
use openarc_trace::TraceEvent;
use openarc_vm::jsonio as vj;
use openarc_vm::{BasicEnv, Handle};

type R<T> = Result<T, String>;

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a Json, key: &str) -> R<&'a Json> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn arr<'a>(v: &'a Json, what: &str) -> R<&'a [Json]> {
    v.as_arr().ok_or_else(|| format!("{what}: expected array"))
}

fn str_of<'a>(v: &'a Json, what: &str) -> R<&'a str> {
    v.as_str().ok_or_else(|| format!("{what}: expected string"))
}

fn u64_of(v: &Json, what: &str) -> R<u64> {
    v.as_u64().ok_or_else(|| format!("{what}: expected u64"))
}

fn i64_of(v: &Json, what: &str) -> R<i64> {
    v.as_i64().ok_or_else(|| format!("{what}: expected i64"))
}

fn bool_of(v: &Json, what: &str) -> R<bool> {
    v.as_bool().ok_or_else(|| format!("{what}: expected bool"))
}

fn u64f(v: &Json, key: &str) -> R<u64> {
    u64_of(field(v, key)?, key)
}

fn f64f(v: &Json, key: &str) -> R<f64> {
    Ok(f64::from_bits(u64f(v, key)?))
}

fn strf(v: &Json, key: &str) -> R<String> {
    Ok(str_of(field(v, key)?, key)?.to_string())
}

fn boolf(v: &Json, key: &str) -> R<bool> {
    bool_of(field(v, key)?, key)
}

/// `key` present and non-null → `Some(value)`.
fn optf<'a>(v: &'a Json, key: &str) -> R<Option<&'a Json>> {
    match field(v, key)? {
        Json::Null => Ok(None),
        other => Ok(Some(other)),
    }
}

fn opt_string(s: &Option<String>) -> Json {
    match s {
        Some(s) => Json::from(s.as_str()),
        None => Json::Null,
    }
}

fn strings_to_json(xs: &[String]) -> Json {
    Json::Arr(xs.iter().map(|s| Json::from(s.as_str())).collect())
}

fn strings_from_json(v: &Json, what: &str) -> R<Vec<String>> {
    arr(v, what)?
        .iter()
        .map(|s| Ok(str_of(s, what)?.to_string()))
        .collect()
}

// ---------------------------------------------------------------------------
// Closed label sets
// ---------------------------------------------------------------------------

fn clause_label(c: DataClauseKind) -> &'static str {
    match c {
        DataClauseKind::Copy => "copy",
        DataClauseKind::CopyIn => "copyin",
        DataClauseKind::CopyOut => "copyout",
        DataClauseKind::Create => "create",
        DataClauseKind::Present => "present",
        DataClauseKind::PresentOrCopy => "pcopy",
        DataClauseKind::PresentOrCopyIn => "pcopyin",
        DataClauseKind::PresentOrCopyOut => "pcopyout",
        DataClauseKind::PresentOrCreate => "pcreate",
        DataClauseKind::DevicePtr => "deviceptr",
    }
}

fn clause_from(s: &str) -> R<DataClauseKind> {
    Ok(match s {
        "copy" => DataClauseKind::Copy,
        "copyin" => DataClauseKind::CopyIn,
        "copyout" => DataClauseKind::CopyOut,
        "create" => DataClauseKind::Create,
        "present" => DataClauseKind::Present,
        "pcopy" => DataClauseKind::PresentOrCopy,
        "pcopyin" => DataClauseKind::PresentOrCopyIn,
        "pcopyout" => DataClauseKind::PresentOrCopyOut,
        "pcreate" => DataClauseKind::PresentOrCreate,
        "deviceptr" => DataClauseKind::DevicePtr,
        other => return Err(format!("unknown data clause {other:?}")),
    })
}

fn red_from(s: &str) -> R<ReductionOp> {
    for op in [
        ReductionOp::Add,
        ReductionOp::Mul,
        ReductionOp::Max,
        ReductionOp::Min,
        ReductionOp::BitAnd,
        ReductionOp::BitOr,
        ReductionOp::BitXor,
        ReductionOp::LogAnd,
        ReductionOp::LogOr,
    ] {
        if op.symbol() == s {
            return Ok(op);
        }
    }
    Err(format!("unknown reduction op {s:?}"))
}

fn side_label(s: DevSide) -> &'static str {
    match s {
        DevSide::Cpu => "cpu",
        DevSide::Gpu => "gpu",
    }
}

fn side_from(s: &str) -> R<DevSide> {
    match s {
        "cpu" => Ok(DevSide::Cpu),
        "gpu" => Ok(DevSide::Gpu),
        other => Err(format!("unknown side {other:?}")),
    }
}

fn st_label(s: St) -> &'static str {
    match s {
        St::NotStale => "notstale",
        St::MayStale => "maystale",
        St::Stale => "stale",
    }
}

fn st_from(s: &str) -> R<St> {
    match s {
        "notstale" => Ok(St::NotStale),
        "maystale" => Ok(St::MayStale),
        "stale" => Ok(St::Stale),
        other => Err(format!("unknown coherence state {other:?}")),
    }
}

fn kind_label(k: IssueKind) -> &'static str {
    match k {
        IssueKind::Redundant => "redundant",
        IssueKind::MayRedundant => "may_redundant",
        IssueKind::Incorrect => "incorrect",
        IssueKind::MayIncorrect => "may_incorrect",
        IssueKind::Missing => "missing",
        IssueKind::MayMissing => "may_missing",
    }
}

fn kind_from(s: &str) -> R<IssueKind> {
    Ok(match s {
        "redundant" => IssueKind::Redundant,
        "may_redundant" => IssueKind::MayRedundant,
        "incorrect" => IssueKind::Incorrect,
        "may_incorrect" => IssueKind::MayIncorrect,
        "missing" => IssueKind::Missing,
        "may_missing" => IssueKind::MayMissing,
        other => return Err(format!("unknown issue kind {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// IR tables
// ---------------------------------------------------------------------------

fn action_to_json(a: &DataAction) -> Json {
    Json::obj(vec![
        ("var", Json::from(a.var.as_str())),
        ("map", Json::from(a.map)),
        ("in", Json::from(a.copyin)),
        ("out", Json::from(a.copyout)),
        (
            "clause",
            match a.from_clause {
                Some(c) => Json::from(clause_label(c)),
                None => Json::Null,
            },
        ),
        (
            "region",
            match a.covering_region {
                Some(r) => Json::from(r as u64),
                None => Json::Null,
            },
        ),
        ("written", Json::from(a.written)),
    ])
}

fn action_from_json(v: &Json) -> R<DataAction> {
    Ok(DataAction {
        var: strf(v, "var")?,
        map: boolf(v, "map")?,
        copyin: boolf(v, "in")?,
        copyout: boolf(v, "out")?,
        from_clause: optf(v, "clause")?
            .map(|c| clause_from(str_of(c, "clause")?))
            .transpose()?,
        covering_region: optf(v, "region")?
            .map(|r| Ok::<usize, String>(u64_of(r, "region")? as usize))
            .transpose()?,
        written: boolf(v, "written")?,
    })
}

fn actions_to_json(actions: &[DataAction]) -> Json {
    Json::Arr(actions.iter().map(action_to_json).collect())
}

fn actions_from_json(v: &Json) -> R<Vec<DataAction>> {
    arr(v, "actions")?.iter().map(action_from_json).collect()
}

fn param_to_json(p: &KernelParam) -> Json {
    Json::Arr(match p {
        KernelParam::Aggregate { var } => vec![Json::from("agg"), Json::from(var.as_str())],
        KernelParam::Scalar { var } => vec![Json::from("scalar"), Json::from(var.as_str())],
        KernelParam::SharedCell { var, init_global } => vec![
            Json::from("cell"),
            Json::from(var.as_str()),
            opt_string(init_global),
        ],
        KernelParam::ReductionSlot { var, op } => vec![
            Json::from("red"),
            Json::from(var.as_str()),
            Json::from(op.symbol()),
        ],
    })
}

fn param_from_json(v: &Json) -> R<KernelParam> {
    let a = arr(v, "param")?;
    let tag = str_of(a.first().ok_or("param: empty")?, "param tag")?;
    let var = || {
        Ok::<String, String>(
            str_of(a.get(1).ok_or("param: missing var")?, "param var")?.to_string(),
        )
    };
    Ok(match tag {
        "agg" => KernelParam::Aggregate { var: var()? },
        "scalar" => KernelParam::Scalar { var: var()? },
        "cell" => KernelParam::SharedCell {
            var: var()?,
            init_global: match a.get(2).ok_or("cell: missing init")? {
                Json::Null => None,
                other => Some(str_of(other, "cell init")?.to_string()),
            },
        },
        "red" => KernelParam::ReductionSlot {
            var: var()?,
            op: red_from(str_of(a.get(2).ok_or("red: missing op")?, "red op")?)?,
        },
        other => return Err(format!("unknown param tag {other:?}")),
    })
}

fn knowledge_to_json(k: &KernelKnowledge) -> Json {
    Json::obj(vec![
        (
            "bounds",
            Json::Arr(
                k.bounds
                    .iter()
                    .map(|b| {
                        Json::Arr(vec![
                            Json::from(b.var.as_str()),
                            f64_to_json(b.lo),
                            f64_to_json(b.hi),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "asserts",
            Json::Arr(
                k.asserts
                    .iter()
                    .map(|a| {
                        Json::Arr(match a {
                            KernelAssert::ChecksumWithin { var, expected, tol } => vec![
                                Json::from("checksum"),
                                Json::from(var.as_str()),
                                f64_to_json(*expected),
                                f64_to_json(*tol),
                            ],
                            KernelAssert::AllFinite { var } => {
                                vec![Json::from("finite"), Json::from(var.as_str())]
                            }
                            KernelAssert::NonNegative { var } => {
                                vec![Json::from("nonneg"), Json::from(var.as_str())]
                            }
                        })
                    })
                    .collect(),
            ),
        ),
    ])
}

fn knowledge_from_json(v: &Json) -> R<KernelKnowledge> {
    let mut out = KernelKnowledge::default();
    for b in arr(field(v, "bounds")?, "bounds")? {
        let b = arr(b, "bound")?;
        if b.len() != 3 {
            return Err("bound: expected [var, lo, hi]".into());
        }
        out.bounds.push(KernelBound {
            var: str_of(&b[0], "bound var")?.to_string(),
            lo: f64::from_bits(u64_of(&b[1], "bound lo")?),
            hi: f64::from_bits(u64_of(&b[2], "bound hi")?),
        });
    }
    for a in arr(field(v, "asserts")?, "asserts")? {
        let a = arr(a, "assert")?;
        let tag = str_of(a.first().ok_or("assert: empty")?, "assert tag")?;
        let var = str_of(a.get(1).ok_or("assert: missing var")?, "assert var")?.to_string();
        out.asserts.push(match tag {
            "checksum" => KernelAssert::ChecksumWithin {
                var,
                expected: f64::from_bits(u64_of(
                    a.get(2).ok_or("checksum: missing expected")?,
                    "expected",
                )?),
                tol: f64::from_bits(u64_of(a.get(3).ok_or("checksum: missing tol")?, "tol")?),
            },
            "finite" => KernelAssert::AllFinite { var },
            "nonneg" => KernelAssert::NonNegative { var },
            other => return Err(format!("unknown assert tag {other:?}")),
        });
    }
    Ok(out)
}

fn kernel_to_json(k: &KernelInfo) -> Json {
    Json::obj(vec![
        ("name", Json::from(k.name.as_str())),
        ("seq", Json::from(k.seq_name.as_str())),
        ("nthreads", Json::from(k.n_threads_global.as_str())),
        (
            "params",
            Json::Arr(k.params.iter().map(param_to_json).collect()),
        ),
        ("actions", actions_to_json(&k.actions)),
        ("gpu_reads", strings_to_json(&k.gpu_reads)),
        ("gpu_writes", strings_to_json(&k.gpu_writes)),
        ("hoisted", strings_to_json(&k.hoisted_writes)),
        (
            "reductions",
            Json::Arr(
                k.reductions
                    .iter()
                    .map(|(var, op)| {
                        Json::Arr(vec![Json::from(var.as_str()), Json::from(op.symbol())])
                    })
                    .collect(),
            ),
        ),
        ("knowledge", knowledge_to_json(&k.knowledge)),
        (
            "wave",
            match k.wave_override {
                Some(w) => Json::from(u64::from(w)),
                None => Json::Null,
            },
        ),
        (
            "queue",
            match k.queue {
                Some(q) => Json::from(q),
                None => Json::Null,
            },
        ),
        ("if", opt_string(&k.if_global)),
        ("stmt", Json::from(u64::from(k.stmt))),
        ("line", Json::from(u64::from(k.line))),
    ])
}

fn kernel_from_json(v: &Json) -> R<KernelInfo> {
    Ok(KernelInfo {
        name: strf(v, "name")?,
        seq_name: strf(v, "seq")?,
        n_threads_global: strf(v, "nthreads")?,
        params: arr(field(v, "params")?, "params")?
            .iter()
            .map(param_from_json)
            .collect::<R<_>>()?,
        actions: actions_from_json(field(v, "actions")?)?,
        gpu_reads: strings_from_json(field(v, "gpu_reads")?, "gpu_reads")?,
        gpu_writes: strings_from_json(field(v, "gpu_writes")?, "gpu_writes")?,
        hoisted_writes: strings_from_json(field(v, "hoisted")?, "hoisted")?,
        reductions: arr(field(v, "reductions")?, "reductions")?
            .iter()
            .map(|r| {
                let r = arr(r, "reduction")?;
                if r.len() != 2 {
                    return Err("reduction: expected [var, op]".into());
                }
                Ok((
                    str_of(&r[0], "reduction var")?.to_string(),
                    red_from(str_of(&r[1], "reduction op")?)?,
                ))
            })
            .collect::<R<_>>()?,
        knowledge: knowledge_from_json(field(v, "knowledge")?)?,
        wave_override: optf(v, "wave")?
            .map(|w| Ok::<u32, String>(u64_of(w, "wave")? as u32))
            .transpose()?,
        queue: optf(v, "queue")?.map(|q| i64_of(q, "queue")).transpose()?,
        if_global: optf(v, "if")?
            .map(|s| Ok::<String, String>(str_of(s, "if")?.to_string()))
            .transpose()?,
        stmt: u64f(v, "stmt")? as NodeId,
        line: u64f(v, "line")? as u32,
    })
}

fn region_to_json(r: &DataRegionInfo) -> Json {
    Json::obj(vec![
        ("actions", actions_to_json(&r.actions)),
        ("if", opt_string(&r.if_global)),
        ("stmt", Json::from(u64::from(r.stmt))),
    ])
}

fn region_from_json(v: &Json) -> R<DataRegionInfo> {
    Ok(DataRegionInfo {
        actions: actions_from_json(field(v, "actions")?)?,
        if_global: optf(v, "if")?
            .map(|s| Ok::<String, String>(str_of(s, "if")?.to_string()))
            .transpose()?,
        stmt: u64f(v, "stmt")? as NodeId,
    })
}

fn op_to_json(op: &RtOp) -> Json {
    Json::Arr(match op {
        RtOp::DataEnter(i) => vec![Json::from("data_enter"), Json::from(*i as u64)],
        RtOp::DataExit(i) => vec![Json::from("data_exit"), Json::from(*i as u64)],
        RtOp::Launch(i) => vec![Json::from("launch"), Json::from(*i as u64)],
        RtOp::Update {
            to_host,
            to_device,
            queue,
            site,
            if_global,
        } => vec![
            Json::from("update"),
            strings_to_json(to_host),
            strings_to_json(to_device),
            match queue {
                Some(q) => Json::from(*q),
                None => Json::Null,
            },
            Json::from(site.as_str()),
            opt_string(if_global),
        ],
        RtOp::Wait(q) => vec![
            Json::from("wait"),
            match q {
                Some(q) => Json::from(*q),
                None => Json::Null,
            },
        ],
        RtOp::CheckRead { var, side, site } => vec![
            Json::from("check_read"),
            Json::from(var.as_str()),
            Json::from(side_label(*side)),
            Json::from(site.as_str()),
        ],
        RtOp::CheckWrite {
            var,
            side,
            total,
            site,
        } => vec![
            Json::from("check_write"),
            Json::from(var.as_str()),
            Json::from(side_label(*side)),
            Json::from(*total),
            Json::from(site.as_str()),
        ],
        RtOp::ResetStatus { var, side, st } => vec![
            Json::from("reset"),
            Json::from(var.as_str()),
            Json::from(side_label(*side)),
            Json::from(st_label(*st)),
        ],
        RtOp::LoopEnter { label } => vec![Json::from("loop_enter"), Json::from(label.as_str())],
        RtOp::LoopTick => vec![Json::from("loop_tick")],
        RtOp::LoopExit => vec![Json::from("loop_exit")],
    })
}

fn op_from_json(v: &Json) -> R<RtOp> {
    let a = arr(v, "op")?;
    let tag = str_of(a.first().ok_or("op: empty")?, "op tag")?;
    let at = |i: usize| a.get(i).ok_or_else(|| format!("op {tag}: missing arg {i}"));
    Ok(match tag {
        "data_enter" => RtOp::DataEnter(u64_of(at(1)?, "index")? as usize),
        "data_exit" => RtOp::DataExit(u64_of(at(1)?, "index")? as usize),
        "launch" => RtOp::Launch(u64_of(at(1)?, "index")? as usize),
        "update" => RtOp::Update {
            to_host: strings_from_json(at(1)?, "to_host")?,
            to_device: strings_from_json(at(2)?, "to_device")?,
            queue: match at(3)? {
                Json::Null => None,
                q => Some(i64_of(q, "queue")?),
            },
            site: str_of(at(4)?, "site")?.to_string(),
            if_global: match at(5)? {
                Json::Null => None,
                s => Some(str_of(s, "if")?.to_string()),
            },
        },
        "wait" => RtOp::Wait(match at(1)? {
            Json::Null => None,
            q => Some(i64_of(q, "queue")?),
        }),
        "check_read" => RtOp::CheckRead {
            var: str_of(at(1)?, "var")?.to_string(),
            side: side_from(str_of(at(2)?, "side")?)?,
            site: str_of(at(3)?, "site")?.to_string(),
        },
        "check_write" => RtOp::CheckWrite {
            var: str_of(at(1)?, "var")?.to_string(),
            side: side_from(str_of(at(2)?, "side")?)?,
            total: bool_of(at(3)?, "total")?,
            site: str_of(at(4)?, "site")?.to_string(),
        },
        "reset" => RtOp::ResetStatus {
            var: str_of(at(1)?, "var")?.to_string(),
            side: side_from(str_of(at(2)?, "side")?)?,
            st: st_from(str_of(at(3)?, "st")?)?,
        },
        "loop_enter" => RtOp::LoopEnter {
            label: str_of(at(1)?, "label")?.to_string(),
        },
        "loop_tick" => RtOp::LoopTick,
        "loop_exit" => RtOp::LoopExit,
        other => return Err(format!("unknown op tag {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// Frontend artifact
// ---------------------------------------------------------------------------

/// Encode a frontend artifact's payload (program + semantic tables).
pub fn frontend_payload(program: &Program, sema: &Sema) -> Json {
    Json::obj(vec![
        ("program", mj::program_to_json(program)),
        ("sema", mj::sema_to_json(sema)),
    ])
}

/// Decode a frontend artifact stored via [`frontend_payload`].
pub fn frontend_from_payload(id: ArtifactId, v: &Json) -> R<FrontendArtifact> {
    Ok(FrontendArtifact {
        id,
        program: mj::program_from_json(field(v, "program")?)?,
        sema: mj::sema_from_json(field(v, "sema")?)?,
    })
}

// ---------------------------------------------------------------------------
// Translated artifact
// ---------------------------------------------------------------------------

/// Encode a translation artifact's payload.
pub fn translated_payload(art: &TranslatedArtifact) -> Json {
    let tr = &art.tr;
    Json::obj(vec![
        ("instrumented", Json::from(art.instrumented)),
        ("host_program", mj::program_to_json(&tr.host_program)),
        ("host_sema", mj::sema_to_json(&tr.host_sema)),
        ("host_module", vj::module_to_json(&tr.host_module)),
        ("kernel_program", mj::program_to_json(&tr.kernel_program)),
        ("kernel_module", vj::module_to_json(&tr.kernel_module)),
        ("ops", Json::Arr(tr.ops.iter().map(op_to_json).collect())),
        (
            "kernels",
            Json::Arr(tr.kernels.iter().map(kernel_to_json).collect()),
        ),
        (
            "data_regions",
            Json::Arr(tr.data_regions.iter().map(region_to_json).collect()),
        ),
        (
            "update_sites",
            Json::Arr(
                tr.update_sites
                    .iter()
                    .map(|(site, id)| {
                        Json::Arr(vec![Json::from(site.as_str()), Json::from(u64::from(*id))])
                    })
                    .collect(),
            ),
        ),
        ("declares", actions_to_json(&tr.declares)),
    ])
}

/// Decode a translation artifact stored via [`translated_payload`].
pub fn translated_from_payload(id: ArtifactId, v: &Json) -> R<TranslatedArtifact> {
    Ok(TranslatedArtifact {
        id,
        instrumented: boolf(v, "instrumented")?,
        tr: Translated {
            host_program: mj::program_from_json(field(v, "host_program")?)?,
            host_sema: mj::sema_from_json(field(v, "host_sema")?)?,
            host_module: vj::module_from_json(field(v, "host_module")?)?,
            kernel_program: mj::program_from_json(field(v, "kernel_program")?)?,
            kernel_module: vj::module_from_json(field(v, "kernel_module")?)?,
            ops: arr(field(v, "ops")?, "ops")?
                .iter()
                .map(op_from_json)
                .collect::<R<_>>()?,
            kernels: arr(field(v, "kernels")?, "kernels")?
                .iter()
                .map(kernel_from_json)
                .collect::<R<_>>()?,
            data_regions: arr(field(v, "data_regions")?, "data_regions")?
                .iter()
                .map(region_from_json)
                .collect::<R<_>>()?,
            update_sites: arr(field(v, "update_sites")?, "update_sites")?
                .iter()
                .map(|s| {
                    let s = arr(s, "update_site")?;
                    if s.len() != 2 {
                        return Err("update_site: expected [site, stmt]".into());
                    }
                    Ok((
                        str_of(&s[0], "site")?.to_string(),
                        u64_of(&s[1], "stmt")? as NodeId,
                    ))
                })
                .collect::<R<_>>()?,
            declares: actions_from_json(field(v, "declares")?)?,
        },
    })
}

// ---------------------------------------------------------------------------
// Run artifact
// ---------------------------------------------------------------------------

fn issue_to_json(i: &Issue) -> Json {
    Json::obj(vec![
        ("kind", Json::from(kind_label(i.kind))),
        ("var", Json::from(i.var.as_str())),
        ("site", Json::from(i.site.as_str())),
        (
            "dir",
            match i.direction {
                Some(Direction::ToDevice) => Json::from("to_device"),
                Some(Direction::ToHost) => Json::from("to_host"),
                None => Json::Null,
            },
        ),
        ("loops", loops_to_json(&i.loop_context)),
    ])
}

fn issue_from_json(v: &Json) -> R<Issue> {
    Ok(Issue {
        kind: kind_from(str_of(field(v, "kind")?, "kind")?)?,
        var: strf(v, "var")?,
        site: strf(v, "site")?,
        direction: match optf(v, "dir")? {
            None => None,
            Some(d) => Some(match str_of(d, "dir")? {
                "to_device" => Direction::ToDevice,
                "to_host" => Direction::ToHost,
                other => return Err(format!("unknown direction {other:?}")),
            }),
        },
        loop_context: loops_from_json(field(v, "loops")?)?,
    })
}

fn loops_to_json(loops: &[(String, i64)]) -> Json {
    Json::Arr(
        loops
            .iter()
            .map(|(label, i)| Json::Arr(vec![Json::from(label.as_str()), Json::from(*i)]))
            .collect(),
    )
}

fn loops_from_json(v: &Json) -> R<Vec<(String, i64)>> {
    arr(v, "loops")?
        .iter()
        .map(|l| {
            let l = arr(l, "loop")?;
            if l.len() != 2 {
                return Err("loop: expected [label, index]".into());
            }
            Ok((
                str_of(&l[0], "loop label")?.to_string(),
                i64_of(&l[1], "loop index")?,
            ))
        })
        .collect()
}

fn kv_to_json(k: &KernelVerification) -> Json {
    Json::obj(vec![
        ("kernel", Json::from(k.kernel.as_str())),
        ("launches", Json::from(k.launches)),
        ("failed", Json::from(k.failed_launches)),
        ("compared", Json::from(k.compared_elems)),
        ("mismatched", Json::from(k.mismatched_elems)),
        ("max_abs_err", f64_to_json(k.max_abs_err)),
        ("asserts_failed", Json::from(k.assertion_failures)),
    ])
}

fn kv_from_json(v: &Json) -> R<KernelVerification> {
    Ok(KernelVerification {
        kernel: strf(v, "kernel")?,
        launches: u64f(v, "launches")?,
        failed_launches: u64f(v, "failed")?,
        compared_elems: u64f(v, "compared")?,
        mismatched_elems: u64f(v, "mismatched")?,
        max_abs_err: f64f(v, "max_abs_err")?,
        assertion_failures: u64f(v, "asserts_failed")?,
    })
}

fn race_to_json(r: &RaceReport) -> Json {
    Json::obj(vec![
        ("handle", Json::from(u64::from(r.handle.0))),
        ("label", Json::from(r.label.as_str())),
        ("conflicts", Json::from(r.conflicts)),
        ("idx", Json::from(r.example_idx)),
        (
            "threads",
            Json::Arr(vec![
                Json::from(r.example_threads.0),
                Json::from(r.example_threads.1),
            ]),
        ),
    ])
}

fn race_from_json(v: &Json) -> R<RaceReport> {
    let threads = arr(field(v, "threads")?, "threads")?;
    if threads.len() != 2 {
        return Err("threads: expected [a, b]".into());
    }
    Ok(RaceReport {
        handle: Handle(u64f(v, "handle")? as u32),
        label: strf(v, "label")?,
        conflicts: u64f(v, "conflicts")?,
        example_idx: u64f(v, "idx")?,
        example_threads: (
            u64_of(&threads[0], "thread")?,
            u64_of(&threads[1], "thread")?,
        ),
    })
}

/// Encode a finished run's observable surface plus its recorded journal
/// event stream (empty for unjournaled plans).
pub fn run_payload(r: &RunResult, events: &[TraceEvent]) -> Json {
    let m = &r.machine;
    Json::obj(vec![
        ("now", f64_to_json(m.clock.now())),
        (
            "breakdown",
            Json::Arr(
                TimeCategory::ALL
                    .iter()
                    .map(|c| f64_to_json(m.clock.breakdown.get(*c)))
                    .collect(),
            ),
        ),
        (
            "queues",
            Json::Arr(
                m.clock
                    .queue_snapshot()
                    .into_iter()
                    .map(|(dev, q, end)| {
                        Json::Arr(vec![
                            Json::from(u64::from(dev.0)),
                            Json::from(q),
                            f64_to_json(end),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "globals",
            Json::Arr(m.host.globals.iter().map(vj::value_to_json).collect()),
        ),
        ("mem", vj::memspace_to_json(&m.host.mem)),
        (
            "stats",
            Json::obj(vec![
                ("h2d_bytes", Json::from(m.stats.h2d_bytes)),
                ("d2h_bytes", Json::from(m.stats.d2h_bytes)),
                ("d2d_bytes", Json::from(m.stats.d2d_bytes)),
                ("h2d_count", Json::from(m.stats.h2d_count)),
                ("d2h_count", Json::from(m.stats.d2h_count)),
                ("d2d_count", Json::from(m.stats.d2d_count)),
                ("dev_allocs", Json::from(m.stats.dev_allocs)),
                ("dev_frees", Json::from(m.stats.dev_frees)),
            ]),
        ),
        (
            "issues",
            Json::Arr(m.report.issues.iter().map(issue_to_json).collect()),
        ),
        ("loops", loops_to_json(&m.loop_context)),
        (
            "verify",
            Json::Arr(r.verify.iter().map(kv_to_json).collect()),
        ),
        (
            "races",
            Json::Arr(
                r.races
                    .iter()
                    .map(|(name, race)| {
                        Json::Arr(vec![Json::from(name.as_str()), race_to_json(race)])
                    })
                    .collect(),
            ),
        ),
        ("kernel_launches", Json::from(r.kernel_launches)),
        ("host_instrs", Json::from(r.host_instrs)),
        ("events", events_to_json(events)),
    ])
}

/// Decode a run stored via [`run_payload`]. The machine is rebuilt around
/// the restored host memory image; simulated-device internals (device
/// memory, present table, coherence tracker) restart empty — a cached run
/// is read-only and only its serialized surface is observable.
pub fn run_from_payload(v: &Json) -> R<(RunResult, Vec<TraceEvent>)> {
    let globals = arr(field(v, "globals")?, "globals")?
        .iter()
        .map(vj::value_from_json)
        .collect::<R<Vec<_>>>()?;
    let mem = vj::memspace_from_json(field(v, "mem")?)?;
    let mut machine = Machine::new(BasicEnv { globals, mem }, false);

    let bits = arr(field(v, "breakdown")?, "breakdown")?;
    if bits.len() != TimeCategory::ALL.len() {
        return Err(format!(
            "breakdown: expected {} categories, got {}",
            TimeCategory::ALL.len(),
            bits.len()
        ));
    }
    let mut breakdown = TimeBreakdown::default();
    for (cat, b) in TimeCategory::ALL.iter().zip(bits) {
        breakdown.add(*cat, f64::from_bits(u64_of(b, "breakdown")?));
    }
    let queues = arr(field(v, "queues")?, "queues")?
        .iter()
        .map(|q| {
            let t = arr(q, "queues entry")?;
            if t.len() != 3 {
                return Err("queues entry: expected [dev, queue, end]".to_string());
            }
            Ok((
                openarc_gpusim::DeviceId(u64_of(&t[0], "queue dev")? as u32),
                i64_of(&t[1], "queue id")?,
                f64::from_bits(u64_of(&t[2], "queue end")?),
            ))
        })
        .collect::<R<Vec<_>>>()?;
    machine.clock = SimClock::restore(f64f(v, "now")?, breakdown, queues);

    let st = field(v, "stats")?;
    machine.stats = TransferStats {
        h2d_bytes: u64f(st, "h2d_bytes")?,
        d2h_bytes: u64f(st, "d2h_bytes")?,
        d2d_bytes: u64f(st, "d2d_bytes")?,
        h2d_count: u64f(st, "h2d_count")?,
        d2h_count: u64f(st, "d2h_count")?,
        d2d_count: u64f(st, "d2d_count")?,
        dev_allocs: u64f(st, "dev_allocs")?,
        dev_frees: u64f(st, "dev_frees")?,
    };

    machine.report = Report {
        issues: arr(field(v, "issues")?, "issues")?
            .iter()
            .map(issue_from_json)
            .collect::<R<_>>()?,
    };
    machine.loop_context = loops_from_json(field(v, "loops")?)?;

    let result = RunResult {
        machine,
        verify: arr(field(v, "verify")?, "verify")?
            .iter()
            .map(kv_from_json)
            .collect::<R<_>>()?,
        races: arr(field(v, "races")?, "races")?
            .iter()
            .map(|race| {
                let race = arr(race, "race")?;
                if race.len() != 2 {
                    return Err("race: expected [kernel, report]".into());
                }
                Ok((
                    str_of(&race[0], "race kernel")?.to_string(),
                    race_from_json(&race[1])?,
                ))
            })
            .collect::<R<_>>()?,
        kernel_launches: u64f(v, "kernel_launches")?,
        host_instrs: u64f(v, "host_instrs")?,
    };
    let events = events_from_json(field(v, "events")?)?;
    Ok((result, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use crate::translate::{translate, TranslateOptions};
    use openarc_minic::frontend;
    use openarc_trace::Journal;

    const SRC: &str = "double q[16];\ndouble w[16];\ndouble acc;\nvoid main() {\n int j;\n for (j = 0; j < 16; j++) { w[j] = (double) j; }\n #pragma acc data copyin(w) copyout(q)\n {\n  #pragma openarc verify bounds(q, 0.0, 100.0)\n  #pragma acc kernels loop gang reduction(+:acc)\n  for (j = 0; j < 16; j++) { q[j] = w[j] * 2.0; acc = acc + w[j]; }\n  #pragma acc update host(q) if(1)\n }\n}";

    fn translated(instrument: bool) -> TranslatedArtifact {
        let (p, s) = frontend(SRC).unwrap();
        let tr = translate(
            &p,
            &s,
            &TranslateOptions {
                instrument,
                ..Default::default()
            },
        )
        .unwrap();
        TranslatedArtifact {
            id: ArtifactId(42),
            instrumented: instrument,
            tr,
        }
    }

    #[test]
    fn frontend_round_trips_byte_identically() {
        let (p, s) = frontend(SRC).unwrap();
        let payload = frontend_payload(&p, &s);
        let fe = frontend_from_payload(ArtifactId(7), &payload).unwrap();
        assert_eq!(fe.id, ArtifactId(7));
        assert_eq!(fe.program, p);
        // Re-encoding the decoded artifact reproduces the exact bytes.
        assert_eq!(
            frontend_payload(&fe.program, &fe.sema).pretty(),
            payload.pretty()
        );
    }

    #[test]
    fn translated_round_trips_byte_identically() {
        for instrument in [false, true] {
            let art = translated(instrument);
            let payload = translated_payload(&art);
            let back = translated_from_payload(art.id, &payload).unwrap();
            assert_eq!(back.instrumented, instrument);
            assert_eq!(back.tr.ops, art.tr.ops);
            assert_eq!(back.tr.kernels.len(), art.tr.kernels.len());
            assert_eq!(translated_payload(&back).pretty(), payload.pretty());
        }
    }

    #[test]
    fn restored_translation_still_executes() {
        let art = translated(true);
        let payload = translated_payload(&art);
        let back = translated_from_payload(art.id, &payload).unwrap();
        let a = execute(&art.tr, &ExecOptions::default()).unwrap();
        let b = execute(&back.tr, &ExecOptions::default()).unwrap();
        assert_eq!(a.sim_time_us(), b.sim_time_us());
        assert_eq!(a.kernel_launches, b.kernel_launches);
        assert_eq!(a.machine.stats, b.machine.stats);
    }

    #[test]
    fn run_round_trips_byte_identically() {
        let art = translated(true);
        let journal = Journal::enabled();
        let opts = ExecOptions {
            check_transfers: true,
            journal: journal.clone(),
            ..Default::default()
        };
        let r = execute(&art.tr, &opts).unwrap();
        let events = journal.drain();
        assert!(!events.is_empty());

        let payload = run_payload(&r, &events);
        let (back, back_events) = run_from_payload(&payload).unwrap();
        assert_eq!(back_events, events, "journal replay stream is exact");
        assert_eq!(back.sim_time_us().to_bits(), r.sim_time_us().to_bits());
        assert_eq!(back.kernel_launches, r.kernel_launches);
        assert_eq!(back.host_instrs, r.host_instrs);
        assert_eq!(back.machine.stats, r.machine.stats);
        assert_eq!(back.machine.report.issues, r.machine.report.issues);
        // Final host state survives: globals (including buffer handles) and
        // the memory image they point into.
        assert_eq!(
            back.global_array(&art.tr, "q"),
            r.global_array(&art.tr, "q")
        );
        assert_eq!(
            back.global_scalar(&art.tr, "acc"),
            r.global_scalar(&art.tr, "acc")
        );
        // Re-encode: byte-identical, so a disk round trip is stable.
        assert_eq!(run_payload(&back, &back_events).pretty(), payload.pretty());
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        for bad in [
            Json::Null,
            Json::obj(vec![("instrumented", Json::from(true))]),
            Json::obj(vec![("now", Json::from(0u64))]),
            Json::Arr(vec![]),
        ] {
            assert!(frontend_from_payload(ArtifactId(0), &bad).is_err());
            assert!(translated_from_payload(ArtifactId(0), &bad).is_err());
            assert!(run_from_payload(&bad).is_err());
        }
    }
}
