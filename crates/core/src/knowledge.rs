//! §III-C: application-knowledge-guided debugging directives.
//!
//! The paper introduces (1) "a set of directives to allow users to bound
//! the values of the variables in the target GPU kernel" — differences
//! within the bound are not reported — and (2) "a debug assertion API ...
//! inserted at the end of the kernel call to enable automatic error
//! detection" (e.g. checksums).
//!
//! OpenARC's own extension pragmas use the `openarc` namespace; we follow
//! suit. Attached to a compute construct:
//!
//! ```c
//! #pragma openarc verify bounds(temp, 0.0, 100.0)
//! #pragma openarc verify assert_checksum(q, 4096.0, 0.5)
//! #pragma openarc verify assert_finite(q)
//! #pragma openarc verify assert_nonnegative(q)
//! #pragma acc kernels loop gang worker
//! for (...) { ... }
//! ```

use openarc_minic::span::Diagnostic;
use openarc_minic::{Span, Stmt};

/// A user-declared value bound for one variable (§III-C item 1).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBound {
    /// Bounded variable.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// A user-declared kernel-exit assertion (§III-C item 2).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelAssert {
    /// Σ elements must be within `tol` of `expected`.
    ChecksumWithin {
        /// Asserted variable.
        var: String,
        /// Expected checksum.
        expected: f64,
        /// Allowed absolute deviation.
        tol: f64,
    },
    /// Every element must be finite.
    AllFinite {
        /// Asserted variable.
        var: String,
    },
    /// Every element must be ≥ 0.
    NonNegative {
        /// Asserted variable.
        var: String,
    },
}

impl KernelAssert {
    /// The asserted variable.
    pub fn var(&self) -> &str {
        match self {
            KernelAssert::ChecksumWithin { var, .. }
            | KernelAssert::AllFinite { var }
            | KernelAssert::NonNegative { var } => var,
        }
    }
}

/// Knowledge attached to one compute construct.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelKnowledge {
    /// Value bounds.
    pub bounds: Vec<KernelBound>,
    /// Exit assertions.
    pub asserts: Vec<KernelAssert>,
}

impl KernelKnowledge {
    /// True when nothing was declared.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty() && self.asserts.is_empty()
    }
}

/// Parse all `openarc verify ...` pragmas attached to a statement.
pub fn knowledge_of(stmt: &Stmt) -> Result<KernelKnowledge, Diagnostic> {
    let mut out = KernelKnowledge::default();
    for pr in &stmt.pragmas {
        let Some(rest) = pr.text.strip_prefix("openarc ") else {
            continue;
        };
        let Some(rest) = rest.trim().strip_prefix("verify ") else {
            return Err(Diagnostic::error(
                format!("unknown openarc pragma: `{}`", pr.text),
                pr.span,
            ));
        };
        parse_clause(rest.trim(), &mut out, pr.span)?;
    }
    Ok(out)
}

fn parse_clause(text: &str, out: &mut KernelKnowledge, span: Span) -> Result<(), Diagnostic> {
    let (head, args) = split_call(text, span)?;
    match head {
        "bounds" => {
            let (var, nums) = var_and_floats(&args, 2, "bounds", span)?;
            let (lo, hi) = (nums[0], nums[1]);
            if lo > hi {
                return Err(Diagnostic::error(
                    format!("bounds({var}, {lo}, {hi}): lower bound exceeds upper"),
                    span,
                ));
            }
            out.bounds.push(KernelBound { var, lo, hi });
        }
        "assert_checksum" => {
            let (var, nums) = var_and_floats(&args, 2, "assert_checksum", span)?;
            out.asserts.push(KernelAssert::ChecksumWithin {
                var,
                expected: nums[0],
                tol: nums[1],
            });
        }
        "assert_finite" => {
            let (var, _) = var_and_floats(&args, 0, "assert_finite", span)?;
            out.asserts.push(KernelAssert::AllFinite { var });
        }
        "assert_nonnegative" => {
            let (var, _) = var_and_floats(&args, 0, "assert_nonnegative", span)?;
            out.asserts.push(KernelAssert::NonNegative { var });
        }
        other => {
            return Err(Diagnostic::error(
                format!("unknown openarc verify clause `{other}`"),
                span,
            ))
        }
    }
    Ok(())
}

/// Split `name(a, b, c)` into the name and raw argument list.
fn split_call(text: &str, span: Span) -> Result<(&str, Vec<String>), Diagnostic> {
    let open = text
        .find('(')
        .ok_or_else(|| Diagnostic::error(format!("expected `(` in `{text}`"), span))?;
    if !text.ends_with(')') {
        return Err(Diagnostic::error(
            format!("expected `)` at end of `{text}`"),
            span,
        ));
    }
    let head = text[..open].trim();
    let inner = &text[open + 1..text.len() - 1];
    let args = inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    Ok((head, args))
}

fn var_and_floats(
    args: &[String],
    n_floats: usize,
    what: &str,
    span: Span,
) -> Result<(String, Vec<f64>), Diagnostic> {
    if args.len() != n_floats + 1 {
        return Err(Diagnostic::error(
            format!(
                "{what} expects a variable and {n_floats} number(s), got {} argument(s)",
                args.len()
            ),
            span,
        ));
    }
    let var = args[0].clone();
    if !var
        .chars()
        .next()
        .map(|c| c.is_alphabetic() || c == '_')
        .unwrap_or(false)
    {
        return Err(Diagnostic::error(
            format!("{what}: `{var}` is not a variable name"),
            span,
        ));
    }
    let mut nums = Vec::with_capacity(n_floats);
    for a in &args[1..] {
        nums.push(
            a.parse::<f64>()
                .map_err(|_| Diagnostic::error(format!("{what}: bad number `{a}`"), span))?,
        );
    }
    Ok((var, nums))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::parse;

    fn knowledge(pragmas: &str) -> Result<KernelKnowledge, Diagnostic> {
        let src = format!(
            "double a[4];\nvoid main() {{\n int j;\n{pragmas}\n #pragma acc kernels loop gang\n for (j = 0; j < 4; j++) {{ a[j] = 1.0; }}\n}}"
        );
        let p = parse(&src).unwrap();
        let f = p.func("main").unwrap();
        knowledge_of(&f.body.stmts[1])
    }

    #[test]
    fn parses_bounds() {
        let k = knowledge(" #pragma openarc verify bounds(a, 0.0, 100.0)").unwrap();
        assert_eq!(
            k.bounds,
            vec![KernelBound {
                var: "a".into(),
                lo: 0.0,
                hi: 100.0
            }]
        );
    }

    #[test]
    fn parses_assertions() {
        let k = knowledge(
            " #pragma openarc verify assert_checksum(a, 4.0, 0.1)\n #pragma openarc verify assert_finite(a)\n #pragma openarc verify assert_nonnegative(a)",
        )
        .unwrap();
        assert_eq!(k.asserts.len(), 3);
        assert_eq!(k.asserts[0].var(), "a");
        assert!(matches!(k.asserts[1], KernelAssert::AllFinite { .. }));
    }

    #[test]
    fn negative_and_exponent_literals() {
        let k = knowledge(" #pragma openarc verify bounds(a, -1e3, 1e3)").unwrap();
        assert_eq!(k.bounds[0].lo, -1000.0);
    }

    #[test]
    fn inverted_bounds_rejected() {
        assert!(knowledge(" #pragma openarc verify bounds(a, 5.0, 1.0)").is_err());
    }

    #[test]
    fn unknown_clause_rejected() {
        assert!(knowledge(" #pragma openarc verify frobnicate(a)").is_err());
        assert!(knowledge(" #pragma openarc something_else(a)").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(knowledge(" #pragma openarc verify bounds(a, 1.0)").is_err());
        assert!(knowledge(" #pragma openarc verify assert_finite(a, 1.0)").is_err());
    }

    #[test]
    fn acc_pragmas_ignored() {
        let k = knowledge("").unwrap();
        assert!(k.is_empty());
    }
}
