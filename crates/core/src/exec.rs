//! Executor: runs a [`Translated`] program on the simulated machine.
//!
//! Three modes:
//!
//! * **Normal** — the production run: data regions, transfers, device
//!   kernels, coherence checks (when instrumented).
//! * **CpuOnly** — the reference run: every compute region executes its
//!   sequential fallback on the host; no device traffic (the normalization
//!   baseline of Figures 1 and 3).
//! * **Verify** — the paper's §III-A kernel verification: target kernels
//!   run on the device *and* sequentially on the host (asynchronously
//!   overlapped, post-demotion semantics), outputs are compared with a
//!   configurable error margin, and the host's sequential results remain
//!   canonical so errors never propagate.

use crate::ir::{KernelParam, RtOp};
use crate::translate::Translated;
use openarc_gpusim::{launch, tree_combine, LaunchConfig, RaceReport, TimeCategory};
use openarc_minic::ast::BinOp;
use openarc_minic::ScalarTy;
use openarc_openacc::ReductionOp;
use openarc_runtime::{DevSide, Machine};
use openarc_trace::Journal;
use openarc_vm::interp::{eval_bin, BasicEnv};
use openarc_vm::{Env, Handle, ThreadState, Value, VmError, GLOBALS_INIT};
use std::collections::{BTreeSet, HashMap};

/// §III-C application-knowledge assertion kinds.
#[derive(Debug, Clone)]
pub enum AssertKind {
    /// Sum of all elements must be within `tol` of `expected`.
    ChecksumWithin {
        /// Expected checksum.
        expected: f64,
        /// Allowed absolute deviation.
        tol: f64,
    },
    /// Every element must be finite.
    AllFinite,
    /// Every element must be `>= 0`.
    NonNegative,
}

/// A user-provided kernel assertion (§III-C debug-assertion API).
#[derive(Debug, Clone)]
pub struct KernelAssertion {
    /// Kernel name it applies to.
    pub kernel: String,
    /// Variable whose device result is checked.
    pub var: String,
    /// The predicate.
    pub kind: AssertKind,
}

/// Kernel-verification configuration (§III-A).
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Kernels to verify (names). `None` = all.
    pub targets: Option<BTreeSet<String>>,
    /// Invert the target set (the paper's `complement=1`).
    pub complement: bool,
    /// Relative error tolerance.
    pub rel_tol: f64,
    /// Absolute error tolerance.
    pub abs_tol: f64,
    /// `minValueToCheck`: compare only when `|cpu| >=` this threshold.
    pub min_value_to_check: f64,
    /// §III-C user value bounds per variable: differences where both values
    /// fall inside the bound are accepted.
    pub bounds: HashMap<String, (f64, f64)>,
    /// §III-C assertions evaluated on device results.
    pub assertions: Vec<KernelAssertion>,
    /// Async queue used for the demoted transfers/kernels.
    pub queue: i64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            targets: None,
            complement: false,
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            min_value_to_check: 0.0,
            bounds: HashMap::new(),
            assertions: Vec::new(),
            queue: 1,
        }
    }
}

/// Identity of one transfer site for interactive edits: the report site
/// label, the variable, and the direction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransferKey {
    /// Report site label (e.g. `update0`, `data_enter0`, `main_kernel2`).
    pub site: String,
    /// Variable name.
    pub var: String,
    /// True for host→device.
    pub to_device: bool,
}

/// Programmer edits applied on top of the translated transfer plan — the
/// concrete form of "modify data clauses in the input program according to
/// the suggestions" (§IV-C).
#[derive(Debug, Clone, Default)]
pub struct TransferOverlay {
    /// Transfers removed entirely (e.g. `copy` → `create`).
    pub disable: std::collections::BTreeSet<TransferKey>,
    /// Transfers moved after their enclosing loop (the Listing 4 deferral:
    /// "the memory transfer can be deferred until the k-loop finishes").
    pub defer: std::collections::BTreeSet<TransferKey>,
}

impl TransferOverlay {
    /// Number of edits applied.
    pub fn len(&self) -> usize {
        self.disable.len() + self.defer.len()
    }

    /// True when no edits are applied.
    pub fn is_empty(&self) -> bool {
        self.disable.is_empty() && self.defer.is_empty()
    }
}

/// Execution mode.
#[derive(Debug, Clone, Default)]
pub enum ExecMode {
    /// Production run.
    #[default]
    Normal,
    /// Sequential reference run.
    CpuOnly,
    /// Kernel verification run.
    Verify(VerifyOptions),
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Mode.
    pub mode: ExecMode,
    /// Enable the coherence tracker (memory-transfer verification).
    pub check_transfers: bool,
    /// Device race oracle on/off.
    pub race_detect: bool,
    /// Device launch knobs.
    pub launch: LaunchConfig,
    /// Host instruction budget.
    pub step_budget: u64,
    /// Interactive transfer edits.
    pub overlay: TransferOverlay,
    /// Event journal threaded through the machine; disabled by default.
    pub journal: Journal,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Normal,
            check_transfers: false,
            race_detect: true,
            launch: LaunchConfig::default(),
            step_budget: 5_000_000_000,
            overlay: TransferOverlay::default(),
            journal: Journal::disabled(),
        }
    }
}

/// Verification verdict for one kernel.
#[derive(Debug, Clone, Default)]
pub struct KernelVerification {
    /// Kernel name.
    pub kernel: String,
    /// Times the kernel was verified.
    pub launches: u64,
    /// Launches whose outputs diverged beyond the margin.
    pub failed_launches: u64,
    /// Elements compared in total.
    pub compared_elems: u64,
    /// Elements that diverged.
    pub mismatched_elems: u64,
    /// Largest absolute divergence seen.
    pub max_abs_err: f64,
    /// Assertion failures (§III-C).
    pub assertion_failures: u64,
}

impl KernelVerification {
    /// Did verification flag this kernel?
    pub fn flagged(&self) -> bool {
        self.failed_launches > 0 || self.assertion_failures > 0
    }
}

/// Result of one execution.
#[derive(Debug)]
pub struct RunResult {
    /// The machine after the run (clock, stats, coherence report, memory).
    pub machine: Machine,
    /// Per-kernel verification outcomes (verify mode).
    pub verify: Vec<KernelVerification>,
    /// Races observed by the device oracle, per kernel name.
    pub races: Vec<(String, RaceReport)>,
    /// Total kernel launches.
    pub kernel_launches: u64,
    /// Host instructions interpreted.
    pub host_instrs: u64,
}

impl RunResult {
    /// Simulated wall-clock time, µs.
    pub fn sim_time_us(&self) -> f64 {
        self.machine.clock.now()
    }

    /// Read a named global scalar from the final host state.
    pub fn global_scalar(&self, tr: &Translated, name: &str) -> Option<Value> {
        let slot = tr.host_module.global_slot(name)?;
        self.machine.host.globals.get(slot as usize).copied()
    }

    /// Snapshot a named global aggregate as f64s from the final host state.
    pub fn global_array(&self, tr: &Translated, name: &str) -> Option<Vec<f64>> {
        let slot = tr.host_module.global_slot(name)?;
        match self.machine.host.globals.get(slot as usize)? {
            Value::Ptr(h) if !h.is_null() => {
                let buf = self.machine.host.mem.get(*h).ok()?;
                Some(
                    (0..buf.len())
                        .map(|i| buf.get(i as u64).unwrap().as_f64())
                        .collect(),
                )
            }
            _ => None,
        }
    }
}

/// Execute a translated program.
pub fn execute(tr: &Translated, opts: &ExecOptions) -> Result<RunResult, VmError> {
    let host = BasicEnv::for_module(&tr.host_module);
    let mut machine = Machine::new(host, opts.check_transfers);
    machine.device.race_detect = opts.race_detect;
    machine.set_journal(opts.journal.clone());
    let mut env = ExecEnv {
        tr,
        opts,
        machine,
        verify: tr
            .kernels
            .iter()
            .map(|k| KernelVerification {
                kernel: k.name.clone(),
                ..Default::default()
            })
            .collect(),
        races: Vec::new(),
        pending_cpu: 0,
        device_cells: HashMap::new(),
        host_cells: HashMap::new(),
        kernel_launches: 0,
        deferred: Vec::new(),
        region_active: HashMap::new(),
    };

    let mut t = ThreadState::new(&tr.host_module, GLOBALS_INIT, &[])?;
    while !t.is_done() {
        t.step(&tr.host_module, &mut env)?;
    }
    // `declare` clauses: program-lifetime device residency.
    if !matches!(opts.mode, ExecMode::CpuOnly | ExecMode::Verify(_)) {
        for a in &tr.declares {
            if a.map {
                let h = env.resolve(&a.var)?;
                env.machine.map_to_device(h)?;
                if a.copyin {
                    env.do_copy(&a.var, "declare", true, None)?;
                }
            }
        }
    }
    let mut t = ThreadState::new(&tr.host_module, "main", &[])?;
    let mut steps: u64 = 0;
    while !t.is_done() {
        t.step(&tr.host_module, &mut env)?;
        env.pending_cpu += 1;
        steps += 1;
        if steps > opts.step_budget {
            return Err(VmError::StepLimit(opts.step_budget));
        }
    }
    env.flush_cpu();
    if !matches!(opts.mode, ExecMode::CpuOnly | ExecMode::Verify(_)) {
        for a in &tr.declares {
            if a.map {
                if a.copyout {
                    env.do_copy(&a.var, "declare", false, None)?;
                }
                let h = env.resolve(&a.var)?;
                env.machine.unmap_from_device(h)?;
            }
        }
    }
    env.machine.clock.wait_all();
    Ok(RunResult {
        machine: env.machine,
        verify: env.verify,
        races: env.races,
        kernel_launches: env.kernel_launches,
        host_instrs: steps,
    })
}

/// A deferred transfer: (var, site, to_device, async queue).
type DeferredCopy = (String, String, bool, Option<i64>);

struct ExecEnv<'a> {
    tr: &'a Translated,
    opts: &'a ExecOptions,
    machine: Machine,
    verify: Vec<KernelVerification>,
    races: Vec<(String, RaceReport)>,
    pending_cpu: u64,
    /// Persistent device cells for falsely-shared scalars (like CUDA
    /// `__device__` temporaries).
    device_cells: HashMap<String, Handle>,
    /// Host-side cells for sequential fallbacks.
    host_cells: HashMap<String, Handle>,
    kernel_launches: u64,
    /// Pending deferred transfers per active loop (innermost last).
    deferred: Vec<Vec<DeferredCopy>>,
    /// Data regions currently active (if-clause decisions at enter time).
    region_active: HashMap<usize, bool>,
}

impl ExecEnv<'_> {
    fn flush_cpu(&mut self) {
        if self.pending_cpu > 0 {
            self.machine.charge_cpu(self.pending_cpu);
            self.pending_cpu = 0;
        }
    }

    /// Host buffer handle of a global aggregate.
    fn resolve(&mut self, var: &str) -> Result<Handle, VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        match self.machine.host.globals[slot as usize] {
            Value::Ptr(h) if !h.is_null() => Ok(h),
            Value::Ptr(h) => Err(VmError::BadHandle(h)),
            other => Err(VmError::TypeError(format!(
                "`{var}` is not a buffer: {other}"
            ))),
        }
    }

    fn scalar_value(&self, var: &str) -> Result<Value, VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        Ok(self.machine.host.globals[slot as usize])
    }

    fn store_scalar(&mut self, var: &str, v: Value) -> Result<(), VmError> {
        let slot = self
            .tr
            .host_module
            .global_slot(var)
            .ok_or_else(|| VmError::Internal(format!("unknown global `{var}`")))?;
        self.machine.host.globals[slot as usize] = v;
        Ok(())
    }

    fn scalar_elem_of(&self, var: &str) -> ScalarTy {
        self.tr
            .host_module
            .global_slot(var)
            .and_then(|s| self.tr.host_module.globals.get(s as usize))
            .and_then(|g| g.ty.elem())
            .unwrap_or(ScalarTy::Double)
    }

    /// Perform (or skip/defer, per the interactive overlay) one transfer.
    fn do_copy(
        &mut self,
        var: &str,
        site: &str,
        to_device: bool,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        let key = TransferKey {
            site: site.to_string(),
            var: var.to_string(),
            to_device,
        };
        if self.opts.overlay.disable.contains(&key) {
            return Ok(());
        }
        if self.opts.overlay.defer.contains(&key) {
            if let Some(frame) = self.deferred.last_mut() {
                // Replace any earlier pending copy of the same var/direction
                // (only the final value matters).
                frame.retain(|(v, _, d, _)| !(v == var && *d == to_device));
                frame.push((
                    var.to_string(),
                    format!("{site}_deferred"),
                    to_device,
                    queue,
                ));
                return Ok(());
            }
            // No enclosing loop: execute in place.
        }
        let h = self.resolve(var)?;
        if to_device {
            self.machine.copy_to_device_named(h, site, queue, Some(var))
        } else {
            self.machine.copy_to_host_named(h, site, queue, Some(var))
        }
    }

    fn flush_deferred(&mut self) -> Result<(), VmError> {
        if let Some(frame) = self.deferred.pop() {
            for (var, site, to_device, queue) in frame {
                let h = self.resolve(&var)?;
                if to_device {
                    self.machine
                        .copy_to_device_named(h, &site, queue, Some(&var))?;
                } else {
                    self.machine
                        .copy_to_host_named(h, &site, queue, Some(&var))?;
                }
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, id: u16) -> Result<(), VmError> {
        self.flush_cpu();
        let op = self
            .tr
            .ops
            .get(id as usize)
            .cloned()
            .ok_or_else(|| VmError::Internal(format!("bad host op id {id}")))?;
        let verify_mode = matches!(self.opts.mode, ExecMode::Verify(_));
        let cpu_only = matches!(self.opts.mode, ExecMode::CpuOnly);
        match op {
            RtOp::LoopEnter { label } => {
                self.machine.loop_context.push((label, 0));
                self.deferred.push(Vec::new());
            }
            RtOp::LoopTick => {
                if let Some(last) = self.machine.loop_context.last_mut() {
                    last.1 += 1;
                }
            }
            RtOp::LoopExit => {
                self.machine.loop_context.pop();
                if !verify_mode && !cpu_only {
                    self.flush_deferred()?;
                } else {
                    self.deferred.pop();
                }
            }
            RtOp::Wait(q) => {
                if !verify_mode && !cpu_only {
                    match q {
                        Some(q) => self.machine.clock.wait(q),
                        None => self.machine.clock.wait_all(),
                    }
                }
            }
            RtOp::DataEnter(r) => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let active = self.region_condition(r)?;
                self.region_active.insert(r, active);
                if !active {
                    return Ok(());
                }
                let actions = self.tr.data_regions[r].actions.clone();
                for a in &actions {
                    if a.map {
                        let h = self.resolve(&a.var)?;
                        self.machine.map_to_device(h)?;
                        if a.copyin {
                            self.do_copy(&a.var, &format!("data_enter{r}"), true, None)?;
                        }
                    }
                }
            }
            RtOp::DataExit(r) => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                // An exit mirrors its matching enter's decision, even if
                // the condition's inputs changed in between.
                if !self.region_active.remove(&r).unwrap_or(true) {
                    return Ok(());
                }
                let actions = self.tr.data_regions[r].actions.clone();
                for a in &actions {
                    if a.map {
                        if a.copyout {
                            self.do_copy(&a.var, &format!("data_exit{r}"), false, None)?;
                        }
                        let h = self.resolve(&a.var)?;
                        self.machine.unmap_from_device(h)?;
                    }
                }
            }
            RtOp::Update {
                to_host,
                to_device,
                queue,
                site,
                if_global,
            } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                if let Some(g) = &if_global {
                    if !self.scalar_value(g)?.truthy() {
                        return Ok(());
                    }
                }
                for v in &to_host {
                    self.do_copy(v, &site, false, queue)?;
                }
                for v in &to_device {
                    self.do_copy(v, &site, true, queue)?;
                }
            }
            RtOp::CheckRead { var, side, site } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(&var) {
                    self.machine.check_read(h, side, &site);
                }
            }
            RtOp::CheckWrite {
                var,
                side,
                total,
                site,
            } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(&var) {
                    self.machine.check_write(h, side, total, &site);
                }
            }
            RtOp::ResetStatus { var, side, st } => {
                if verify_mode || cpu_only {
                    return Ok(());
                }
                let dt = self.machine.cost.check_us;
                self.machine.clock.advance(TimeCategory::CpuTime, dt);
                if let Ok(h) = self.resolve(&var) {
                    self.machine.coherence.reset_status(h, side, st);
                }
            }
            RtOp::Launch(k) => {
                self.kernel_launches += 1;
                // `if(cond)` false → host execution (OpenACC semantics).
                let offload = match &self.tr.kernels[k].if_global {
                    Some(g) => self.scalar_value(g)?.truthy(),
                    None => true,
                };
                match self.opts.mode.clone() {
                    ExecMode::Normal if !offload => self.launch_seq(k)?,
                    ExecMode::Normal => self.launch_normal(k)?,
                    ExecMode::CpuOnly => self.launch_seq(k)?,
                    ExecMode::Verify(v) => {
                        let name = &self.tr.kernels[k].name;
                        let in_set = v.targets.as_ref().map(|t| t.contains(name)).unwrap_or(true);
                        let selected = in_set != v.complement;
                        if selected {
                            self.launch_verified(k, &v)?;
                        } else {
                            self.launch_seq(k)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate a data region's `if(...)` value (true when absent).
    fn region_condition(&self, r: usize) -> Result<bool, VmError> {
        match &self.tr.data_regions[r].if_global {
            Some(g) => Ok(self.scalar_value(g)?.truthy()),
            None => Ok(true),
        }
    }

    /// Launch configuration for kernel `k`: `num_workers`/`vector_length`
    /// clauses override the default lockstep wave width.
    fn launch_cfg(&self, k: usize) -> LaunchConfig {
        let mut cfg = self.opts.launch.clone();
        if let Some(w) = self.tr.kernels[k].wave_override {
            cfg.wave = w;
        }
        cfg
    }

    fn n_threads(&self, k: usize) -> Result<u64, VmError> {
        let v = self.scalar_value(&self.tr.kernels[k].n_threads_global)?;
        Ok(v.as_i64().max(0) as u64)
    }

    /// Build kernel args. `on_device` selects device or host buffers; the
    /// returned vec lists `(reduction var, op, partial buffer)` to finalize
    /// and the set of handles to free afterwards (reduction buffers).
    #[allow(clippy::type_complexity)]
    fn build_args(
        &mut self,
        k: usize,
        n: u64,
        on_device: bool,
    ) -> Result<
        (
            Vec<Value>,
            Vec<(String, ReductionOp, Handle)>,
            Vec<Handle>,
            Vec<(String, Handle)>,
        ),
        VmError,
    > {
        let params = self.tr.kernels[k].params.clone();
        let mut args = Vec::with_capacity(params.len());
        let mut reds = Vec::new();
        let mut temps = Vec::new();
        let mut cell_writebacks = Vec::new();
        for p in &params {
            match p {
                KernelParam::Aggregate { var } => {
                    let host_h = self.resolve(var)?;
                    let h = if on_device {
                        self.machine.device_of(host_h)?
                    } else {
                        host_h
                    };
                    args.push(Value::Ptr(h));
                }
                KernelParam::Scalar { var } => args.push(self.scalar_value(var)?),
                KernelParam::SharedCell { var, init_global } => {
                    let elem = init_global
                        .as_deref()
                        .map(|g| self.scalar_elem_of(g))
                        .unwrap_or(ScalarTy::Double);
                    let key = format!("{}::{}", var, on_device);
                    let cells: &mut HashMap<String, Handle> = if on_device {
                        &mut self.device_cells
                    } else {
                        &mut self.host_cells
                    };
                    let h = match cells.get(&key) {
                        Some(h) => *h,
                        None => {
                            let mem = if on_device {
                                &mut self.machine.device.mem
                            } else {
                                &mut self.machine.host.mem
                            };
                            let h = mem.alloc(elem, 1, format!("__cell_{var}"));
                            if on_device {
                                self.device_cells.insert(key, h);
                            } else {
                                self.host_cells.insert(key, h);
                            }
                            if let Some(g) = init_global {
                                let init = self.scalar_value(g)?;
                                let mem = if on_device {
                                    &mut self.machine.device.mem
                                } else {
                                    &mut self.machine.host.mem
                                };
                                mem.store(h, 0, init)?;
                            }
                            h
                        }
                    };
                    args.push(Value::Ptr(h));
                    // A falsely-shared GLOBAL scalar behaves like a CUDA
                    // __device__ global: its final value flows back to the
                    // host variable after the kernel.
                    if init_global.as_deref() == Some(var.as_str()) {
                        cell_writebacks.push((var.clone(), h));
                    }
                }
                KernelParam::ReductionSlot { var, op } => {
                    let elem = self.scalar_elem_of(var);
                    let mem = if on_device {
                        &mut self.machine.device.mem
                    } else {
                        &mut self.machine.host.mem
                    };
                    let h = mem.alloc(elem, n.max(1) as usize, format!("__red_{var}"));
                    args.push(Value::Ptr(h));
                    reds.push((var.clone(), *op, h));
                    temps.push(h);
                }
            }
        }
        Ok((args, reds, temps, cell_writebacks))
    }

    /// Copy falsely-shared global scalars back to their host variables.
    fn writeback_cells(
        &mut self,
        cells: &[(String, Handle)],
        on_device: bool,
    ) -> Result<(), VmError> {
        for (var, h) in cells {
            let v = if on_device {
                self.machine.device.mem.load(*h, 0)?
            } else {
                self.machine.host.mem.load(*h, 0)?
            };
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, v.cast(elem))?;
        }
        Ok(())
    }

    /// Production launch (Normal mode).
    fn launch_normal(&mut self, k: usize) -> Result<(), VmError> {
        let info = self.tr.kernels[k].clone();
        let n = self.n_threads(k)?;
        let queue = info.queue;
        // Data-region-at-kernel semantics: map + copyin. OpenACC `copy`
        // semantics are present_or_copy: data already mapped by an
        // enclosing region (possibly under an aliasing name) moves nothing.
        let mut fresh: std::collections::BTreeSet<String> = Default::default();
        // A region-managed variable whose region's if(...) evaluated false
        // falls back to the default per-kernel copy policy.
        let effective = |env: &Self, a: &crate::ir::DataAction| -> (bool, bool) {
            match a.covering_region {
                Some(r) if !env.region_active.get(&r).copied().unwrap_or(false) => {
                    (true, a.written)
                }
                _ => (a.copyin, a.copyout),
            }
        };
        let mut plans: Vec<(crate::ir::DataAction, bool, bool)> = Vec::new();
        for a in &info.actions {
            let (ci, co) = effective(self, a);
            plans.push((a.clone(), ci, co));
        }
        for (a, copyin, _) in &plans {
            if a.map {
                let h = self.resolve(&a.var)?;
                let (_, newly) = self.machine.map_to_device(h)?;
                if newly {
                    fresh.insert(a.var.clone());
                }
                if *copyin && newly {
                    self.do_copy(&a.var, &info.name, true, queue)?;
                }
            }
        }
        // GPU-side coherence checks at the kernel boundary.
        for v in &info.gpu_reads {
            if let Ok(h) = self.resolve(v) {
                self.machine.check_read(h, DevSide::Gpu, &info.name);
            }
        }
        for v in &info.gpu_writes {
            if info.hoisted_writes.contains(v) {
                continue;
            }
            if let Ok(h) = self.resolve(v) {
                self.machine.check_write(h, DevSide::Gpu, false, &info.name);
            }
        }
        let (args, reds, temps, cells) = self.build_args(k, n, true)?;
        let cfg = self.launch_cfg(k);
        let outcome = launch(
            &mut self.machine.device,
            &self.tr.kernel_module,
            &info.name,
            &args,
            n,
            &cfg,
        )?;
        for r in outcome.races.clone() {
            self.races.push((info.name.clone(), r));
        }
        self.machine
            .charge_kernel_named(&info.name, &outcome, queue);
        self.writeback_cells(&cells, true)?;
        // Reductions finalize on the CPU (device partials → host scalar).
        for (var, op, buf) in &reds {
            if let Some(q) = queue {
                self.machine.clock.wait(q);
            }
            let gpu_val = self.fold_device(*buf, *op, n)?;
            let init = self.scalar_value(var)?;
            let final_v = red_eval(*op, init, gpu_val)?;
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, final_v.cast(elem))?;
            // One scalar-sized transfer for the result.
            let dt = self.machine.cost.transfer_time(elem.size_bytes());
            self.machine.clock.advance(TimeCategory::MemTransfer, dt);
        }
        for t in temps {
            self.machine.device.mem.free(t)?;
        }
        // Copyout + unmap (copyout only for mappings this launch created —
        // region-managed data stays resident).
        for (a, _, copyout) in &plans {
            if *copyout && fresh.contains(&a.var) {
                self.do_copy(&a.var, &info.name, false, queue)?;
            }
        }
        for a in &info.actions {
            if a.map {
                let h = self.resolve(&a.var)?;
                if let Some(q) = queue {
                    // Don't free under in-flight async work.
                    self.machine.clock.wait(q);
                }
                self.machine.unmap_from_device(h)?;
            }
        }
        Ok(())
    }

    /// Sequential fallback execution (CpuOnly mode / unselected kernels in
    /// Verify mode).
    fn launch_seq(&mut self, k: usize) -> Result<(), VmError> {
        let info = self.tr.kernels[k].clone();
        let n = self.n_threads(k)?;
        let (mut args, reds, temps, cells) = self.build_args(k, n, false)?;
        args.insert(0, Value::Int(n as i64));
        let steps = self.run_host_fn(&info.seq_name, &args)?;
        self.machine.charge_cpu(steps);
        self.writeback_cells(&cells, false)?;
        for (var, op, buf) in &reds {
            let cpu_val = self.fold_host(*buf, *op, n)?;
            let init = self.scalar_value(var)?;
            let final_v = red_eval(*op, init, cpu_val)?;
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, final_v.cast(elem))?;
        }
        for t in temps {
            self.machine.host.mem.free(t)?;
        }
        Ok(())
    }

    /// Verified launch (§III-A): demoted transfers, async GPU + sequential
    /// CPU reference, comparison, CPU results stay canonical.
    fn launch_verified(&mut self, k: usize, v: &VerifyOptions) -> Result<(), VmError> {
        let info = self.tr.kernels[k].clone();
        let n = self.n_threads(k)?;
        let q = v.queue;
        // Demotion: copy in *everything* the kernel touches.
        let mut touched: Vec<String> = info.gpu_reads.clone();
        for w in &info.gpu_writes {
            if !touched.contains(w) {
                touched.push(w.clone());
            }
        }
        for var in &touched {
            let h = self.resolve(var)?;
            self.machine.map_to_device(h)?;
            // Staging transfers are charged synchronously (they appear as
            // the Mem Transfer component of Figure 3); the kernel itself
            // runs asynchronously and overlaps the CPU reference.
            self.machine
                .copy_to_device(h, &format!("{}_verify", info.name), None)?;
        }
        // Device run (async).
        let (args, dreds, dtemps, dcells) = self.build_args(k, n, true)?;
        let cfg = self.launch_cfg(k);
        let outcome = launch(
            &mut self.machine.device,
            &self.tr.kernel_module,
            &info.name,
            &args,
            n,
            &cfg,
        )?;
        for r in outcome.races.clone() {
            self.races.push((info.name.clone(), r));
        }
        self.machine
            .charge_kernel_named(&info.name, &outcome, Some(q));
        // CPU reference (overlapped).
        let (mut hargs, hreds, htemps, hcells) = self.build_args(k, n, false)?;
        hargs.insert(0, Value::Int(n as i64));
        let steps = self.run_host_fn(&info.seq_name, &hargs)?;
        self.machine.charge_cpu(steps);
        // Synchronize before comparing.
        self.machine.clock.wait(q);

        // Compare written aggregates element-wise.
        let rec = &mut self.verify[k];
        rec.launches += 1;
        let mut mismatches = 0u64;
        let mut compared = 0u64;
        let mut max_err = 0f64;
        for var in &info.gpu_writes {
            let host_h =
                self.machine.host.globals[self.tr.host_module.global_slot(var).unwrap() as usize];
            let Value::Ptr(host_h) = host_h else { continue };
            let dev_h = self.machine.device_of(host_h)?;
            let hbuf = self.machine.host.mem.get(host_h)?.clone();
            let dbuf = self.machine.device.mem.get(dev_h)?.clone();
            let bound = v.bounds.get(var).copied().or_else(|| {
                info.knowledge
                    .bounds
                    .iter()
                    .find(|b| b.var == *var)
                    .map(|b| (b.lo, b.hi))
            });
            for i in 0..hbuf.len() as u64 {
                let c = hbuf.get(i)?.as_f64();
                let g = dbuf.get(i)?.as_f64();
                if c.abs() < v.min_value_to_check {
                    continue;
                }
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    // User-specified value bounds can absolve the diff.
                    if let Some((lo, hi)) = bound {
                        if c >= lo && c <= hi && g >= lo && g <= hi {
                            continue;
                        }
                    }
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
        }
        // Reductions: compare scalar results; CPU value stays canonical.
        for ((var, op, dbuf), (_, _, hbuf)) in dreds.iter().zip(&hreds) {
            let gpu_val = self.fold_device(*dbuf, *op, n)?;
            let cpu_val = self.fold_host(*hbuf, *op, n)?;
            let init = self.scalar_value(var)?;
            let cpu_final = red_eval(*op, init, cpu_val)?;
            let gpu_final = red_eval(*op, init, gpu_val)?;
            let (c, g) = (cpu_final.as_f64(), gpu_final.as_f64());
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, cpu_final.cast(elem))?;
        }
        // Falsely-shared global scalars: compare the device cell against
        // the sequential cell; the CPU value stays canonical.
        for ((var, dh), (_, hh)) in dcells.iter().zip(&hcells) {
            let g = self.machine.device.mem.load(*dh, 0)?.as_f64();
            let c = self.machine.host.mem.load(*hh, 0)?.as_f64();
            if c.abs() >= v.min_value_to_check {
                compared += 1;
                let err = (c - g).abs();
                if err > v.abs_tol + v.rel_tol * c.abs() {
                    mismatches += 1;
                    if err > max_err {
                        max_err = err;
                    }
                }
            }
            let elem = self.scalar_elem_of(var);
            self.store_scalar(var, Value::F64(c).cast(elem))?;
        }
        // §III-C assertions on the device results: API-supplied ones plus
        // any `openarc verify assert_*` pragmas attached to the kernel.
        let mut checks: Vec<(String, AssertKind)> = v
            .assertions
            .iter()
            .filter(|a| a.kernel == info.name)
            .map(|a| (a.var.clone(), a.kind.clone()))
            .collect();
        for ka in &info.knowledge.asserts {
            let kind = match ka {
                crate::knowledge::KernelAssert::ChecksumWithin { expected, tol, .. } => {
                    AssertKind::ChecksumWithin {
                        expected: *expected,
                        tol: *tol,
                    }
                }
                crate::knowledge::KernelAssert::AllFinite { .. } => AssertKind::AllFinite,
                crate::knowledge::KernelAssert::NonNegative { .. } => AssertKind::NonNegative,
            };
            checks.push((ka.var().to_string(), kind));
        }
        let mut assertion_failures = 0u64;
        for (var, kind) in &checks {
            if let Ok(host_h) = self.resolve(var) {
                if let Ok(dev_h) = self.machine.device_of(host_h) {
                    let dbuf = self.machine.device.mem.get(dev_h)?.clone();
                    let vals: Vec<f64> = (0..dbuf.len() as u64)
                        .map(|i| dbuf.get(i).unwrap().as_f64())
                        .collect();
                    let ok = match kind {
                        AssertKind::ChecksumWithin { expected, tol } => {
                            (vals.iter().sum::<f64>() - expected).abs() <= *tol
                        }
                        AssertKind::AllFinite => vals.iter().all(|x| x.is_finite()),
                        AssertKind::NonNegative => vals.iter().all(|x| *x >= 0.0),
                    };
                    if !ok {
                        assertion_failures += 1;
                    }
                }
            }
        }
        // Charge the result comparison (~2 interpreted instrs per element).
        let dt = self.machine.cost.cpu_time(compared * 2);
        self.machine.clock.advance(TimeCategory::ResultComp, dt);

        let rec = &mut self.verify[k];
        rec.compared_elems += compared;
        rec.mismatched_elems += mismatches;
        rec.max_abs_err = rec.max_abs_err.max(max_err);
        rec.assertion_failures += assertion_failures;
        if mismatches > 0 {
            rec.failed_launches += 1;
        }
        if self.machine.journal().is_enabled() {
            self.machine.clock.journal.emit(openarc_trace::TraceEvent {
                ts_us: self.machine.clock.now(),
                dur_us: 0.0,
                track: openarc_trace::Track::Host,
                kind: openarc_trace::EventKind::Verification {
                    kernel: info.name.clone(),
                    passed: mismatches == 0 && assertion_failures == 0,
                    compared_elems: compared,
                    mismatched_elems: mismatches,
                    max_abs_err: max_err,
                },
            });
        }

        // Discard device results: free temporaries, unmap everything.
        for t in dtemps {
            self.machine.device.mem.free(t)?;
        }
        for t in htemps {
            self.machine.host.mem.free(t)?;
        }
        for var in &touched {
            let h = self.resolve(var)?;
            self.machine.unmap_from_device(h)?;
        }
        Ok(())
    }

    /// Run a host-module function to completion against host memory only.
    fn run_host_fn(&mut self, name: &str, args: &[Value]) -> Result<u64, VmError> {
        let mut t = ThreadState::new(&self.tr.host_module, name, args)?;
        // The fallback touches only parameters, so a plain host env view is
        // enough; reuse self as the env (globals resolve fine).
        while !t.is_done() {
            t.step(&self.tr.host_module, self)?;
        }
        Ok(t.steps)
    }

    fn fold_device(&mut self, buf: Handle, op: ReductionOp, n: u64) -> Result<Value, VmError> {
        let b = self.machine.device.mem.get(buf)?;
        let vals: Vec<Value> = (0..n).map(|i| b.get(i)).collect::<Result<_, _>>()?;
        let f = move |a: Value, b: Value| red_eval(op, a, b);
        match tree_combine(&vals, &f)? {
            Some(v) => Ok(v),
            None => Ok(identity_value(op)),
        }
    }

    fn fold_host(&mut self, buf: Handle, op: ReductionOp, n: u64) -> Result<Value, VmError> {
        let b = self.machine.host.mem.get(buf)?;
        let mut acc: Option<Value> = None;
        for i in 0..n {
            let v = b.get(i)?;
            acc = Some(match acc {
                None => v,
                Some(a) => red_eval(op, a, v)?,
            });
        }
        Ok(acc.unwrap_or_else(|| identity_value(op)))
    }
}

/// Identity element as a [`Value`].
fn identity_value(op: ReductionOp) -> Value {
    Value::F64(op.identity())
}

/// Apply a reduction operator to two values.
pub fn red_eval(op: ReductionOp, a: Value, b: Value) -> Result<Value, VmError> {
    match op {
        ReductionOp::Add => eval_bin(BinOp::Add, a, b),
        ReductionOp::Mul => eval_bin(BinOp::Mul, a, b),
        ReductionOp::Max => {
            if a.as_f64() >= b.as_f64() {
                Ok(a)
            } else {
                Ok(b)
            }
        }
        ReductionOp::Min => {
            if a.as_f64() <= b.as_f64() {
                Ok(a)
            } else {
                Ok(b)
            }
        }
        ReductionOp::BitAnd => eval_bin(BinOp::BitAnd, a, b),
        ReductionOp::BitOr => eval_bin(BinOp::BitOr, a, b),
        ReductionOp::BitXor => eval_bin(BinOp::BitXor, a, b),
        ReductionOp::LogAnd => Ok(Value::Int((a.truthy() && b.truthy()) as i64)),
        ReductionOp::LogOr => Ok(Value::Int((a.truthy() || b.truthy()) as i64)),
    }
}

impl Env for ExecEnv<'_> {
    fn load_global(&mut self, slot: u16) -> Result<Value, VmError> {
        self.machine.host.load_global(slot)
    }

    fn store_global(&mut self, slot: u16, v: Value) -> Result<(), VmError> {
        self.machine.host.store_global(slot, v)
    }

    fn load_elem(&mut self, h: Handle, idx: u64) -> Result<Value, VmError> {
        self.machine.host.load_elem(h, idx)
    }

    fn store_elem(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError> {
        self.machine.host.store_elem(h, idx, v)
    }

    fn malloc(&mut self, elem: ScalarTy, len: u64, label: &str) -> Result<Handle, VmError> {
        self.machine.host.malloc(elem, len, label)
    }

    fn free(&mut self, h: Handle) -> Result<(), VmError> {
        // Freeing a host allocation invalidates any device mapping and its
        // coherence record.
        while self.machine.present.contains(h) {
            self.machine.unmap_from_device(h)?;
        }
        self.machine.coherence.untrack(h);
        self.machine.host.free(h)
    }

    fn host_op(&mut self, id: u16) -> Result<(), VmError> {
        self.dispatch(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, TranslateOptions};
    use openarc_minic::frontend;
    use openarc_runtime::IssueKind;

    fn run_src(
        src: &str,
        topts: &TranslateOptions,
        eopts: &ExecOptions,
    ) -> (Translated, RunResult) {
        let (p, s) = frontend(src).expect("frontend");
        let tr = translate(&p, &s, topts).expect("translate");
        let r = execute(&tr, eopts).expect("execute");
        (tr, r)
    }

    const COPY_SRC: &str = "double q[64];\ndouble w[64];\nvoid main() {\n int j;\n for (j = 0; j < 64; j++) { w[j] = (double) j; }\n #pragma acc kernels loop gang worker\n for (j = 0; j < 64; j++) { q[j] = w[j] * 2.0; }\n}";

    #[test]
    fn normal_mode_produces_correct_output() {
        let (tr, r) = run_src(
            COPY_SRC,
            &TranslateOptions::default(),
            &ExecOptions::default(),
        );
        let q = r.global_array(&tr, "q").unwrap();
        for (i, v) in q.iter().enumerate() {
            assert_eq!(*v, i as f64 * 2.0);
        }
        assert_eq!(r.kernel_launches, 1);
        assert!(r.races.is_empty());
        // Naive policy: q and w copied in, q copied out.
        assert_eq!(r.machine.stats.h2d_count, 2);
        assert_eq!(r.machine.stats.d2h_count, 1);
        assert!(r.sim_time_us() > 0.0);
    }

    #[test]
    fn cpu_only_mode_matches_normal_output() {
        let eopts = ExecOptions {
            mode: ExecMode::CpuOnly,
            ..Default::default()
        };
        let (tr, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        let q = r.global_array(&tr, "q").unwrap();
        for (i, v) in q.iter().enumerate() {
            assert_eq!(*v, i as f64 * 2.0);
        }
        assert_eq!(r.machine.stats.total_count(), 0, "no transfers in CPU mode");
        assert_eq!(r.machine.stats.dev_allocs, 0);
    }

    #[test]
    fn reduction_finalizes_on_host() {
        let src = "double a[100];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 100; j++) { a[j] = 1.0; }\n s = 5.0;\n #pragma acc kernels loop gang reduction(+:s)\n for (j = 0; j < 100; j++) { s += a[j]; }\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 105.0);
    }

    #[test]
    fn data_region_avoids_per_kernel_transfers() {
        let src = "double q[64];\ndouble w[64];\nvoid main() {\n int k; int j;\n #pragma acc data copyin(w) copyout(q)\n {\n  for (k = 0; k < 5; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 64; j++) { q[j] = w[j] + (double) k; }\n  }\n }\n}";
        let (_, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        // One copyin at region enter, one copyout at region exit.
        assert_eq!(r.machine.stats.h2d_count, 1);
        assert_eq!(r.machine.stats.d2h_count, 1);
        assert_eq!(r.machine.stats.dev_allocs, 2);
        // Versus naive: 5 kernels × 2 copyins + 5 copyouts.
        let naive_src = src.replace("#pragma acc data copyin(w) copyout(q)\n {\n", "{\n");
        let (p, s) = frontend(&naive_src).unwrap();
        let tr = translate(&p, &s, &TranslateOptions::default()).unwrap();
        let rn = execute(&tr, &ExecOptions::default()).unwrap();
        assert!(rn.machine.stats.total_bytes() > 5 * r.machine.stats.total_bytes());
    }

    #[test]
    fn update_host_transfers_back() {
        let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n  #pragma acc update host(q)\n }\n s = q[3];\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 1.0);
    }

    #[test]
    fn missing_update_leaves_stale_host_data() {
        // Same as above without the update: host q stays zero.
        let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 16; j++) { w[j] = 2.0; }\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n }\n s = q[3];\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(
            r.global_scalar(&tr, "s").unwrap().as_f64(),
            0.0,
            "bug reproduced: host never updated"
        );
    }

    #[test]
    fn coherence_detects_missing_transfer() {
        let src = "double q[16];\ndouble w[16];\ndouble s;\nvoid main() {\n int j;\n #pragma acc data copyin(w) create(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 16; j++) { q[j] = w[j] + 1.0; }\n }\n s = q[3];\n}";
        let (p, se) = frontend(src).unwrap();
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let tr = translate(&p, &se, &topts).unwrap();
        let eopts = ExecOptions {
            check_transfers: true,
            ..Default::default()
        };
        let r = execute(&tr, &eopts).unwrap();
        assert!(
            r.machine.report.count(IssueKind::Missing) >= 1,
            "report: {}",
            r.machine.report
        );
    }

    #[test]
    fn coherence_detects_redundant_transfer() {
        // w never changes after the region entry copyin, yet an update
        // device(w) inside the loop re-copies it every iteration.
        let src = "double q[16];\ndouble w[16];\nvoid main() {\n int k; int j;\n #pragma acc data copyin(w) copyout(q)\n {\n  for (k = 0; k < 3; k++) {\n   #pragma acc update device(w)\n   #pragma acc kernels loop gang\n   for (j = 0; j < 16; j++) { q[j] = w[j]; }\n  }\n }\n}";
        let (p, se) = frontend(src).unwrap();
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let tr = translate(&p, &se, &topts).unwrap();
        let eopts = ExecOptions {
            check_transfers: true,
            ..Default::default()
        };
        let r = execute(&tr, &eopts).unwrap();
        assert!(
            r.machine.report.count(IssueKind::Redundant) >= 3,
            "report: {}",
            r.machine.report
        );
        // Context strings include the enclosing loop iteration (Listing 4).
        let text = r.machine.report.to_string();
        assert!(text.contains("k-loop index ="), "{text}");
    }

    #[test]
    fn verify_mode_passes_clean_kernel() {
        let vopts = VerifyOptions::default();
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let (_, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        assert_eq!(r.verify.len(), 1);
        assert_eq!(r.verify[0].launches, 1);
        assert!(!r.verify[0].flagged(), "{:?}", r.verify[0]);
        assert!(r.verify[0].compared_elems > 0);
        // Verification moves data: breakdown has transfer + result comp.
        assert!(r.machine.clock.breakdown.get(TimeCategory::ResultComp) > 0.0);
        assert!(r.machine.clock.breakdown.get(TimeCategory::GpuMemFree) > 0.0);
    }

    #[test]
    fn verify_mode_catches_injected_race() {
        // Shared temporary without privatization: lockstep corrupts it.
        let src = "double a[64];\ndouble tmp;\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 64; j++) { tmp = (double) j; a[j] = tmp * 2.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let tr = translate(&p, &s, &topts).unwrap();
        let eopts = ExecOptions {
            mode: ExecMode::Verify(VerifyOptions::default()),
            ..Default::default()
        };
        let r = execute(&tr, &eopts).unwrap();
        assert!(
            r.verify[0].flagged(),
            "verification must catch the race: {:?}",
            r.verify[0]
        );
        // The oracle saw the race too.
        assert!(r
            .races
            .iter()
            .any(|(k, rr)| k == "main_kernel0" && rr.label.contains("tmp")));
    }

    #[test]
    fn verify_untargeted_kernels_run_sequentially() {
        let vopts = VerifyOptions {
            targets: Some(std::iter::once("main_kernel9".to_string()).collect()),
            ..Default::default()
        };
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let (tr, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        // Kernel not selected: ran on CPU, output still correct.
        assert_eq!(r.verify[0].launches, 0);
        let q = r.global_array(&tr, "q").unwrap();
        assert_eq!(q[10], 20.0);
        assert_eq!(r.machine.stats.total_count(), 0);
    }

    #[test]
    fn verify_complement_selects_inverse() {
        let vopts = VerifyOptions {
            targets: Some(std::iter::once("main_kernel9".to_string()).collect()),
            complement: true,
            ..Default::default()
        };
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let (_, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        assert_eq!(r.verify[0].launches, 1);
    }

    #[test]
    fn min_value_to_check_skips_tiny_values() {
        let vopts = VerifyOptions {
            min_value_to_check: 1e9,
            ..Default::default()
        };
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let (_, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        assert_eq!(r.verify[0].compared_elems, 0);
    }

    #[test]
    fn assertion_api_flags_bad_checksum() {
        let vopts = VerifyOptions {
            assertions: vec![KernelAssertion {
                kernel: "main_kernel0".into(),
                var: "q".into(),
                kind: AssertKind::ChecksumWithin {
                    expected: -1.0,
                    tol: 0.5,
                },
            }],
            ..Default::default()
        };
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts),
            ..Default::default()
        };
        let (_, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        assert_eq!(r.verify[0].assertion_failures, 1);
        let vopts_ok = VerifyOptions {
            assertions: vec![KernelAssertion {
                kernel: "main_kernel0".into(),
                var: "q".into(),
                kind: AssertKind::NonNegative,
            }],
            ..Default::default()
        };
        let eopts = ExecOptions {
            mode: ExecMode::Verify(vopts_ok),
            ..Default::default()
        };
        let (_, r) = run_src(COPY_SRC, &TranslateOptions::default(), &eopts);
        assert_eq!(r.verify[0].assertion_failures, 0);
    }

    #[test]
    fn async_kernel_overlaps_and_waits() {
        let src = "double q[64];\ndouble w[64];\nint z;\nvoid main() {\n int j;\n #pragma acc kernels loop async(1) gang copy(q) copyin(w)\n for (j = 0; j < 64; j++) { q[j] = w[j]; }\n for (j = 0; j < 1000; j++) { z = z + 1; }\n #pragma acc wait(1)\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(r.global_scalar(&tr, "z").unwrap(), Value::Int(1000));
        assert!(r.sim_time_us() > 0.0);
    }

    #[test]
    fn collapse_kernel_runs_correctly() {
        let src = "double g[8][8];\ndouble s;\nvoid main() {\n int i; int j;\n #pragma acc kernels loop gang collapse(2)\n for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) { g[i][j] = (double)(i * 8 + j); }\n s = g[7][7];\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 63.0);
        let g = r.global_array(&tr, "g").unwrap();
        assert_eq!(g[13], 13.0);
    }

    #[test]
    fn malloc_backed_pointers_work_in_kernels() {
        let src = "double *p;\nint n;\ndouble s;\nvoid main() {\n int j;\n n = 32;\n p = (double *) malloc(n * sizeof(double));\n for (j = 0; j < n; j++) { p[j] = 1.0; }\n #pragma acc kernels loop gang\n for (j = 0; j < n; j++) { p[j] = p[j] + 1.0; }\n s = p[31];\n}";
        let (tr, r) = run_src(src, &TranslateOptions::default(), &ExecOptions::default());
        assert_eq!(r.global_scalar(&tr, "s").unwrap().as_f64(), 2.0);
    }

    #[test]
    fn seq_and_gpu_reduction_roundings_differ_but_within_margin() {
        // Large float reduction: tree vs sequential rounding differ.
        let src = "float a[4096];\ndouble s;\nvoid main() {\n int j;\n for (j = 0; j < 4096; j++) { a[j] = 0.1f; }\n #pragma acc kernels loop gang reduction(+:s)\n for (j = 0; j < 4096; j++) { s += (double) a[j]; }\n}";
        let eopts = ExecOptions {
            mode: ExecMode::Verify(VerifyOptions::default()),
            ..Default::default()
        };
        let (tr, r) = run_src(src, &TranslateOptions::default(), &eopts);
        assert!(!r.verify[0].flagged(), "{:?}", r.verify[0]);
        let s = r.global_scalar(&tr, "s").unwrap().as_f64();
        assert!((s - 409.6).abs() < 0.1, "{s}");
    }
}
