//! The OpenACC → device-program translator.
//!
//! This is OpenARC's front half: compute regions are outlined into kernel
//! functions (first parameter = global thread id), multi-dimensional array
//! accesses are flattened, scalars are classified (value parameter /
//! privatized local / recognized reduction / **falsely-shared cell** when
//! recognition is disabled — the §IV-B fault injection), data clauses
//! become per-launch [`DataAction`]s, and every directive statement in the
//! host AST is replaced by a `__host_op(id)` marker dispatched at run time.
//!
//! Every kernel also gets a sequential CPU fallback (`__seq_*`) in the host
//! module: the same body wrapped in a plain loop. The kernel-verification
//! pass (§III-A) runs it as the reference; because the fallback shares the
//! translated body, any divergence observed on the device is attributable
//! to *parallel execution* (races, reduction reordering) — exactly what the
//! paper's tool hunts.

use crate::instrument::{plan, Instrumentation};
use crate::ir::{DataAction, DataRegionInfo, KernelInfo, KernelParam, RtOp};
use openarc_minic::ast::*;
use openarc_minic::sema::FuncInfo;
use openarc_minic::span::Diagnostic;
use openarc_minic::{Sema, Span};
use openarc_openacc::{directives_of, ComputeSpec, DataClause, Directive, ReductionOp};
use openarc_vm::{compile as vm_compile, Module};
use std::collections::{BTreeMap, BTreeSet};

/// Translator configuration.
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Insert memory-transfer verification instrumentation (§III-B).
    pub instrument: bool,
    /// Use optimized check placement (first-access, hoisting) rather than
    /// checking every access.
    pub optimize_checks: bool,
    /// Hoist GPU-side write checks out of kernel-free-transfer loops
    /// (Listing 3). Disabling reproduces the prior schemes the paper
    /// compares against, which miss the per-iteration redundant copyouts.
    pub hoist_gpu_checks: bool,
    /// Automatic privatization of written-first scalars.
    pub auto_privatize: bool,
    /// Automatic reduction recognition.
    pub auto_reduction: bool,
    /// Validate directives against the program (§II-B notes real compilers
    /// sometimes silently accept conflicting directives; turning this off
    /// reproduces that).
    pub validate: bool,
    /// Update statements whose transfers the interactive user has removed:
    /// re-instrumentation treats them as absent (the paper's workflow
    /// recompiles the edited program every iteration).
    pub ignored_update_stmts: std::collections::BTreeSet<openarc_minic::NodeId>,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            instrument: false,
            optimize_checks: true,
            hoist_gpu_checks: true,
            auto_privatize: true,
            auto_reduction: true,
            validate: true,
            ignored_update_stmts: std::collections::BTreeSet::new(),
        }
    }
}

/// Output of translation.
#[derive(Debug)]
pub struct Translated {
    /// Lowered host program (directives → `__host_op`, plus synthesized
    /// argument globals and `__seq_*` fallbacks).
    pub host_program: Program,
    /// Extended host semantic tables.
    pub host_sema: Sema,
    /// Compiled host module.
    pub host_module: Module,
    /// Kernel program (one function per compute region).
    pub kernel_program: Program,
    /// Compiled kernel module.
    pub kernel_module: Module,
    /// Runtime-op table indexed by `__host_op` ids.
    pub ops: Vec<RtOp>,
    /// Kernel launch table.
    pub kernels: Vec<KernelInfo>,
    /// Structured data region table.
    pub data_regions: Vec<DataRegionInfo>,
    /// Update directive sites: (site label, statement id).
    pub update_sites: Vec<(String, openarc_minic::NodeId)>,
    /// `declare` clause actions applied for the whole program run.
    pub declares: Vec<DataAction>,
}

/// Translate a checked program.
///
/// ```
/// use openarc_core::translate::{translate, TranslateOptions};
/// let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}";
/// let (program, sema) = openarc_minic::frontend(src).unwrap();
/// let tr = translate(&program, &sema, &TranslateOptions::default()).unwrap();
/// assert_eq!(tr.kernels[0].name, "main_kernel0");
/// assert!(tr.kernel_module.chunk("main_kernel0").is_some());
/// ```
pub fn translate(
    program: &Program,
    sema: &Sema,
    opts: &TranslateOptions,
) -> Result<Translated, Vec<Diagnostic>> {
    let mut tx = Tx {
        sema,
        opts,
        ops: Vec::new(),
        kernels: Vec::new(),
        data_regions: Vec::new(),
        synth_globals: Vec::new(),
        seq_funcs: Vec::new(),
        kernel_funcs: Vec::new(),
        next_id: program.next_id,
        errors: Vec::new(),
        region_stack: Vec::new(),
        update_count: 0,
        update_sites: Vec::new(),
        declares: Vec::new(),
        instr: Instrumentation::default(),
        cur_func: String::new(),
    };

    let mut items: Vec<Item> = Vec::new();
    for item in &program.items {
        match item {
            Item::Global(g) => items.push(Item::Global(g.clone())),
            Item::Func(f) => {
                let lowered = tx.lower_func(f);
                items.push(Item::Func(lowered));
            }
        }
    }
    if !tx.errors.is_empty() {
        return Err(tx.errors);
    }
    for g in tx.synth_globals.drain(..).collect::<Vec<_>>() {
        items.push(Item::Global(g));
    }
    for f in tx.seq_funcs.drain(..).collect::<Vec<_>>() {
        items.push(Item::Func(f));
    }
    let host_program = Program {
        items,
        next_id: tx.next_id,
    };

    // Extend the host sema with synthesized globals and functions.
    let mut host_sema = sema.clone();
    for g in host_program.globals() {
        host_sema
            .globals
            .entry(g.name.clone())
            .or_insert_with(|| g.ty.clone());
    }
    for item in &host_program.items {
        if let Item::Func(f) = item {
            host_sema
                .funcs
                .entry(f.name.clone())
                .or_insert_with(|| build_funcinfo(f));
        }
    }
    let host_module = vm_compile(&host_program, &host_sema).map_err(|d| vec![d])?;

    let kernel_program = Program {
        items: tx.kernel_funcs.drain(..).map(Item::Func).collect(),
        next_id: tx.next_id,
    };
    let mut kernel_sema = Sema::default();
    for item in &kernel_program.items {
        if let Item::Func(f) = item {
            kernel_sema.funcs.insert(f.name.clone(), build_funcinfo(f));
        }
    }
    let kernel_module = vm_compile(&kernel_program, &kernel_sema).map_err(|d| vec![d])?;

    Ok(Translated {
        host_program,
        host_sema,
        host_module,
        kernel_program,
        kernel_module,
        ops: tx.ops,
        kernels: tx.kernels,
        data_regions: tx.data_regions,
        update_sites: tx.update_sites,
        declares: tx.declares,
    })
}

/// Build a [`FuncInfo`] for a synthesized function.
fn build_funcinfo(f: &Func) -> FuncInfo {
    let mut locals = std::collections::HashMap::new();
    for p in &f.params {
        locals.insert(p.name.clone(), p.ty.clone());
    }
    walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Decl(d) = &s.kind {
            locals.insert(d.name.clone(), d.ty.clone());
        }
    });
    FuncInfo {
        ret: f.ret.clone(),
        params: f.params.clone(),
        locals,
    }
}

struct Tx<'a> {
    sema: &'a Sema,
    opts: &'a TranslateOptions,
    ops: Vec<RtOp>,
    kernels: Vec<KernelInfo>,
    data_regions: Vec<DataRegionInfo>,
    synth_globals: Vec<VarDecl>,
    seq_funcs: Vec<Func>,
    kernel_funcs: Vec<Func>,
    next_id: NodeId,
    errors: Vec<Diagnostic>,
    region_stack: Vec<(usize, Vec<DataClause>)>,
    update_count: usize,
    update_sites: Vec<(String, NodeId)>,
    declares: Vec<DataAction>,
    instr: Instrumentation,
    cur_func: String,
}

impl Tx<'_> {
    fn id(&mut self) -> NodeId {
        let i = self.next_id;
        self.next_id += 1;
        i
    }

    fn err(&mut self, msg: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::error(msg, span));
    }

    fn push_op(&mut self, op: RtOp) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn host_op_stmt(&mut self, op: RtOp, span: Span) -> Stmt {
        let id = self.push_op(op);
        let call_id = self.id();
        let arg_id = self.id();
        let stmt_id = self.id();
        Stmt {
            id: stmt_id,
            span,
            pragmas: Vec::new(),
            kind: StmtKind::Expr(Expr {
                id: call_id,
                span,
                kind: ExprKind::Call {
                    name: openarc_vm::HOST_OP.to_string(),
                    args: vec![Expr {
                        id: arg_id,
                        span,
                        kind: ExprKind::IntLit(id as i64),
                    }],
                },
            }),
        }
    }

    fn synth_global(&mut self, name: &str, ty: Ty, span: Span) {
        let id = self.id();
        self.synth_globals.push(VarDecl {
            id,
            name: name.to_string(),
            ty,
            init: None,
            span,
        });
    }

    fn assign_global_stmt(&mut self, name: &str, value: Expr, span: Span) -> Stmt {
        let id = self.id();
        Stmt {
            id,
            span,
            pragmas: Vec::new(),
            kind: StmtKind::Assign {
                target: LValue::Var(name.to_string()),
                op: AssignOp::Set,
                value,
            },
        }
    }

    // ------------------------------------------------------------ lowering

    fn lower_func(&mut self, f: &Func) -> Func {
        self.cur_func = f.name.clone();
        self.instr = if self.opts.instrument {
            match plan(
                f,
                self.sema,
                self.opts.optimize_checks,
                self.opts.hoist_gpu_checks,
                &self.opts.ignored_update_stmts,
            ) {
                Ok(i) => i,
                Err(d) => {
                    self.errors.push(d);
                    Instrumentation::default()
                }
            }
        } else {
            Instrumentation::default()
        };
        // `declare` coverage is function-scoped; don't leak it across
        // functions.
        let saved_regions = std::mem::take(&mut self.region_stack);
        let body = self.lower_block(&f.body);
        self.region_stack = saved_regions;
        Func {
            id: f.id,
            name: f.name.clone(),
            ret: f.ret.clone(),
            params: f.params.clone(),
            body,
            span: f.span,
        }
    }

    fn lower_block(&mut self, b: &Block) -> Block {
        let mut out = Vec::new();
        for s in &b.stmts {
            self.lower_stmt(s, &mut out);
        }
        Block { stmts: out }
    }

    fn lower_stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        // Instrumentation before-ops.
        if let Some(ops) = self.instr.before.get(&s.id).cloned() {
            for op in ops {
                let st = self.host_op_stmt(op, s.span);
                out.push(st);
            }
        }
        self.lower_stmt_inner(s, out);
        if let Some(ops) = self.instr.after.get(&s.id).cloned() {
            for op in ops {
                let st = self.host_op_stmt(op, s.span);
                out.push(st);
            }
        }
    }

    fn lower_stmt_inner(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        let dirs = match directives_of(s) {
            Ok(d) => d,
            Err(e) => {
                self.errors.push(e);
                return;
            }
        };
        if self.opts.validate {
            for (d, pr) in &dirs {
                for diag in
                    openarc_openacc::validate_directive(d, self.sema, &self.cur_func, pr.span)
                {
                    self.errors.push(diag);
                }
            }
        }
        // Compute construct.
        if let Some((Directive::Compute(spec), _)) = dirs
            .iter()
            .find(|(d, _)| matches!(d, Directive::Compute(_)))
        {
            let spec = spec.clone();
            self.lower_compute(s, &spec, out);
            return;
        }
        // Data region.
        if let Some((Directive::Data(dspec), _)) =
            dirs.iter().find(|(d, _)| matches!(d, Directive::Data(_)))
        {
            let mut actions = Vec::new();
            for c in &dspec.clauses {
                for item in &c.items {
                    actions.push(DataAction {
                        var: item.name.clone(),
                        map: c.kind.allocates() || c.kind.checks_present(),
                        copyin: c.kind.transfers_in(),
                        copyout: c.kind.transfers_out(),
                        from_clause: Some(c.kind),
                        covering_region: None,
                        written: false,
                    });
                }
            }
            if let Some(kind) = escaping_branch(s) {
                self.err(
                    format!("`{kind}` would branch out of a structured data region (illegal in OpenACC)"),
                    s.span,
                );
                return;
            }
            let region = self.data_regions.len();
            let if_global = match &dspec.if_cond {
                Some(text) => match openarc_minic::parse_expression(text) {
                    Ok(e) => {
                        let g = format!("__d{region}_if");
                        self.synth_global(&g, Ty::Scalar(ScalarTy::Long), s.span);
                        let st = self.assign_global_stmt(&g, e, s.span);
                        out.push(st);
                        Some(g)
                    }
                    Err(d) => {
                        self.errors.push(Diagnostic::error(
                            format!("bad if(...) condition `{text}`: {d}"),
                            s.span,
                        ));
                        None
                    }
                },
                None => None,
            };
            self.data_regions.push(DataRegionInfo {
                actions,
                if_global,
                stmt: s.id,
            });
            let enter = self.host_op_stmt(RtOp::DataEnter(region), s.span);
            out.push(enter);
            self.region_stack.push((region, dspec.clauses.clone()));
            match &s.kind {
                StmtKind::Block(b) => {
                    let inner = self.lower_block(b);
                    out.extend(inner.stmts);
                }
                _ => {
                    let mut tmp = Vec::new();
                    let stripped = strip_pragmas(s);
                    self.lower_stmt(&stripped, &mut tmp);
                    out.extend(tmp);
                }
            }
            self.region_stack.pop();
            let exit = self.host_op_stmt(RtOp::DataExit(region), s.span);
            out.push(exit);
            return;
        }
        // Update.
        if let Some((Directive::Update(u), _)) =
            dirs.iter().find(|(d, _)| matches!(d, Directive::Update(_)))
        {
            let site = format!("update{}", self.update_count);
            self.update_count += 1;
            self.update_sites.push((site.clone(), s.id));
            let if_global = match &u.if_cond {
                Some(text) => match openarc_minic::parse_expression(text) {
                    Ok(e) => {
                        let g = format!("__u{}_if", self.update_count);
                        self.synth_global(&g, Ty::Scalar(ScalarTy::Long), s.span);
                        let st = self.assign_global_stmt(&g, e, s.span);
                        out.push(st);
                        Some(g)
                    }
                    Err(d) => {
                        self.errors.push(Diagnostic::error(
                            format!("bad if(...) condition `{text}`: {d}"),
                            s.span,
                        ));
                        None
                    }
                },
                None => None,
            };
            let op = RtOp::Update {
                to_host: u.host.clone(),
                to_device: u.device.clone(),
                queue: u.async_queue,
                site,
                if_global,
            };
            let st = self.host_op_stmt(op, s.span);
            out.push(st);
            return;
        }
        // Wait.
        if let Some((Directive::Wait(q), _)) =
            dirs.iter().find(|(d, _)| matches!(d, Directive::Wait(_)))
        {
            let st = self.host_op_stmt(RtOp::Wait(*q), s.span);
            out.push(st);
            return;
        }
        // `declare`: program-lifetime data clauses — the runtime maps them
        // before `main` runs.
        if let Some((Directive::Declare(cs), _)) = dirs
            .iter()
            .find(|(d, _)| matches!(d, Directive::Declare(_)))
        {
            for c in cs {
                for item in &c.items {
                    self.declares.push(DataAction {
                        var: item.name.clone(),
                        map: c.kind.allocates() || c.kind.checks_present(),
                        copyin: c.kind.transfers_in(),
                        copyout: c.kind.transfers_out(),
                        from_clause: Some(c.kind),
                        covering_region: None,
                        written: false,
                    });
                }
            }
            // Declared variables behave like an enclosing data region for
            // every later kernel in this function.
            self.region_stack.push((usize::MAX, cs.clone()));
            return;
        }
        // Unsupported standalone directives are ignored with an error for
        // host_data (which would change semantics).
        if dirs
            .iter()
            .any(|(d, _)| matches!(d, Directive::HostData { .. }))
        {
            self.err("host_data is not supported by this translator", s.span);
            return;
        }

        // Plain statement: recurse into control flow.
        match &s.kind {
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let id = self.id();
                out.push(Stmt {
                    id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::If {
                        cond: cond.clone(),
                        then_blk: self.lower_block(then_blk),
                        else_blk: else_blk.as_ref().map(|b| self.lower_block(b)),
                    },
                });
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let wrap = subtree_has_acc(s);
                let inner_body = self.lower_block(body);
                let body2 = if wrap {
                    let tick = self.host_op_stmt(RtOp::LoopTick, s.span);
                    let mut stmts = vec![tick];
                    stmts.extend(inner_body.stmts);
                    Block { stmts }
                } else {
                    inner_body
                };
                if wrap {
                    let label = loop_label(init.as_deref());
                    let enter = self.host_op_stmt(RtOp::LoopEnter { label }, s.span);
                    out.push(enter);
                }
                let id = self.id();
                out.push(Stmt {
                    id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::For {
                        init: init.clone(),
                        cond: cond.clone(),
                        step: step.clone(),
                        body: body2,
                    },
                });
                if wrap {
                    let exit = self.host_op_stmt(RtOp::LoopExit, s.span);
                    out.push(exit);
                }
            }
            StmtKind::While { cond, body } => {
                let wrap = subtree_has_acc(s);
                let inner_body = self.lower_block(body);
                let body2 = if wrap {
                    let tick = self.host_op_stmt(RtOp::LoopTick, s.span);
                    let mut stmts = vec![tick];
                    stmts.extend(inner_body.stmts);
                    Block { stmts }
                } else {
                    inner_body
                };
                if wrap {
                    let enter = self.host_op_stmt(
                        RtOp::LoopEnter {
                            label: "while-loop".into(),
                        },
                        s.span,
                    );
                    out.push(enter);
                }
                let id = self.id();
                out.push(Stmt {
                    id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::While {
                        cond: cond.clone(),
                        body: body2,
                    },
                });
                if wrap {
                    let exit = self.host_op_stmt(RtOp::LoopExit, s.span);
                    out.push(exit);
                }
            }
            StmtKind::Block(b) => {
                let id = self.id();
                out.push(Stmt {
                    id,
                    span: s.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::Block(self.lower_block(b)),
                });
            }
            _ => out.push(strip_pragmas(s)),
        }
    }

    // ------------------------------------------------------ compute region

    fn lower_compute(&mut self, s: &Stmt, spec: &ComputeSpec, out: &mut Vec<Stmt>) {
        let knowledge = match crate::knowledge::knowledge_of(s) {
            Ok(k) => k,
            Err(d) => {
                self.errors.push(d);
                return;
            }
        };
        let kernel_idx = self.kernels.len();
        let kname = format!("{}_kernel{}", self.cur_func, kernel_idx);
        let seq_name = format!("__seq_{kname}");

        // --- extract parallel loop levels -------------------------------
        let collapse = spec.loop_spec.collapse.unwrap_or(1).max(1) as usize;
        if collapse > 2 {
            // gid_to_index only decomposes one inner span; deeper collapse
            // would silently mis-index.
            self.err("collapse levels above 2 are unsupported", s.span);
            return;
        }
        let mut levels: Vec<LoopLevel> = Vec::new();
        let mut cursor: Stmt = s.clone();
        for _ in 0..collapse {
            match extract_level(&cursor) {
                Ok(level) => {
                    levels.push(level);
                    let body = &levels.last().unwrap().body;
                    if levels.len() < collapse {
                        if body.stmts.len() == 1 {
                            cursor = body.stmts[0].clone();
                        } else {
                            self.err("collapse requires perfectly nested loops", s.span);
                            return;
                        }
                    }
                }
                Err(msg) => {
                    self.err(msg, s.span);
                    return;
                }
            }
        }
        let body = levels.last().unwrap().body.clone();
        let level_vars: BTreeSet<String> = levels.iter().map(|l| l.var.clone()).collect();

        // --- collect accesses --------------------------------------------
        let acc = collect_region_accesses(&body, &level_vars, self.sema, &self.cur_func);
        for name in &acc.called_functions {
            self.err(
                format!("call to user function `{name}` inside a compute region is unsupported"),
                s.span,
            );
        }

        // --- scalar classification ---------------------------------------
        let mut explicit_private: BTreeSet<String> =
            spec.loop_spec.private.iter().cloned().collect();
        let mut explicit_fp: BTreeSet<String> =
            spec.loop_spec.firstprivate.iter().cloned().collect();
        let mut explicit_red: BTreeMap<String, ReductionOp> = BTreeMap::new();
        for r in &spec.loop_spec.reductions {
            for v in &r.vars {
                explicit_red.insert(v.clone(), r.op);
            }
        }
        // Inner `acc loop` directives contribute their clauses too.
        for inner in collect_inner_loop_specs(&body) {
            explicit_private.extend(inner.private.iter().cloned());
            explicit_fp.extend(inner.firstprivate.iter().cloned());
            for r in &inner.reductions {
                for v in &r.vars {
                    explicit_red.insert(v.clone(), r.op);
                }
            }
        }

        #[derive(Debug)]
        enum ScalarClass {
            /// Read-only (or firstprivate): passed by value.
            Param,
            /// Per-thread local declared in the kernel prologue.
            Private,
            /// Declared inside the region body — already thread-local.
            LocalAlready,
            /// Recognized (or declared) reduction.
            Reduction(ReductionOp),
            /// Falsely shared device cell — the injected-race case.
            Shared,
        }
        let mut classes: BTreeMap<String, ScalarClass> = BTreeMap::new();
        for (name, u) in &acc.scalars {
            let class = if u.declared_in_body {
                ScalarClass::LocalAlready
            } else if explicit_red.contains_key(name) {
                ScalarClass::Reduction(explicit_red[name])
            } else if explicit_private.contains(name) {
                ScalarClass::Private
            } else if explicit_fp.contains(name) || !u.written {
                ScalarClass::Param
            } else if self.opts.auto_privatize && u.first_is_write() {
                ScalarClass::Private
            } else if self.opts.auto_reduction && u.reduction_ok() {
                match u.red_op {
                    Some(op) => ScalarClass::Reduction(op),
                    None => ScalarClass::Shared,
                }
            } else {
                ScalarClass::Shared
            };
            classes.insert(name.clone(), class);
        }

        // --- kernel parameter assembly -----------------------------------
        let mut params: Vec<Param> = vec![Param {
            name: "__gid".into(),
            ty: Ty::Scalar(ScalarTy::Int),
        }];
        let mut recipes: Vec<KernelParam> = Vec::new();
        let mut capture_count = 0usize;
        let span = s.span;
        let mut pre_stmts: Vec<Stmt> = Vec::new();

        // Aggregates.
        let mut agg_dims: BTreeMap<String, Option<Vec<u64>>> = BTreeMap::new();
        for name in acc.aggregates.keys() {
            let ty = self.sema.var_ty(&self.cur_func, name).cloned();
            let (elem, dims) = match ty {
                Some(Ty::Array(e, d)) => (e, Some(d)),
                Some(Ty::Ptr(e)) => (e, None),
                _ => {
                    self.err(format!("cannot resolve aggregate `{name}`"), span);
                    continue;
                }
            };
            if !self.sema.is_global(&self.cur_func, name) {
                self.err(
                    format!(
                        "aggregate `{name}` used in a compute region must be a global (local pointer capture is unsupported)"
                    ),
                    span,
                );
                continue;
            }
            agg_dims.insert(name.clone(), dims);
            params.push(Param {
                name: name.clone(),
                ty: Ty::Ptr(elem),
            });
            recipes.push(KernelParam::Aggregate { var: name.clone() });
        }

        // Scalar inputs (params) — includes firstprivate.
        let mut scalar_param = |tx: &mut Tx, name: &str, pre: &mut Vec<Stmt>| -> String {
            // Returns the host global the executor reads.
            if tx.sema.is_global(&tx.cur_func, name) {
                name.to_string()
            } else {
                let g = format!("__k{kernel_idx}_c{capture_count}");
                capture_count += 1;
                let ty = tx
                    .sema
                    .var_ty(&tx.cur_func, name)
                    .cloned()
                    .unwrap_or(Ty::Scalar(ScalarTy::Double));
                tx.synth_global(&g, ty, span);
                let vid = tx.id();
                let value = Expr {
                    id: vid,
                    span,
                    kind: ExprKind::Var(name.to_string()),
                };
                let st = tx.assign_global_stmt(&g, value, span);
                pre.push(st);
                g
            }
        };

        for (name, class) in &classes {
            if matches!(class, ScalarClass::Param) {
                let ty = self
                    .sema
                    .var_ty(&self.cur_func, name)
                    .cloned()
                    .unwrap_or(Ty::Scalar(ScalarTy::Double));
                let resolved = scalar_param(self, name, &mut pre_stmts);
                params.push(Param {
                    name: name.clone(),
                    ty,
                });
                recipes.push(KernelParam::Scalar { var: resolved });
            }
        }

        // Loop-bound parameters: __lo{l} (+ __span for collapse).
        let n_global = format!("__k{kernel_idx}_n");
        self.synth_global(&n_global, Ty::Scalar(ScalarTy::Long), span);
        let mut n_total: Option<Expr> = None;
        for (l, level) in levels.iter().enumerate() {
            let count = level.count_expr(&mut || self.next_id_bump());
            n_total = Some(match n_total.take() {
                None => count.clone(),
                Some(prev) => Expr {
                    id: self.next_id_bump(),
                    span,
                    kind: ExprKind::Binary {
                        op: BinOp::Mul,
                        lhs: Box::new(prev),
                        rhs: Box::new(count.clone()),
                    },
                },
            });
            let lo_global = format!("__k{kernel_idx}_lo{l}");
            self.synth_global(&lo_global, Ty::Scalar(ScalarTy::Long), span);
            let st = self.assign_global_stmt(&lo_global, level.lo.clone(), span);
            pre_stmts.push(st);
            params.push(Param {
                name: format!("__lo{l}"),
                ty: Ty::Scalar(ScalarTy::Long),
            });
            recipes.push(KernelParam::Scalar { var: lo_global });
            if l == 1 {
                let span_global = format!("__k{kernel_idx}_span1");
                self.synth_global(&span_global, Ty::Scalar(ScalarTy::Long), span);
                let st = self.assign_global_stmt(&span_global, count, span);
                pre_stmts.push(st);
                params.push(Param {
                    name: "__span1".into(),
                    ty: Ty::Scalar(ScalarTy::Long),
                });
                recipes.push(KernelParam::Scalar { var: span_global });
            }
        }
        let st = self.assign_global_stmt(&n_global, n_total.expect("levels"), span);
        pre_stmts.push(st);

        // Shared cells and reduction slots.
        let mut cells: BTreeSet<String> = BTreeSet::new();
        let mut reductions: Vec<(String, ReductionOp)> = Vec::new();
        for (name, class) in &classes {
            match class {
                ScalarClass::Shared => {
                    let elem = self.scalar_elem(name);
                    let init_global = if self.sema.is_global(&self.cur_func, name) {
                        Some(name.clone())
                    } else {
                        Some(scalar_param(self, name, &mut pre_stmts))
                    };
                    params.push(Param {
                        name: format!("__cell_{name}"),
                        ty: Ty::Ptr(elem),
                    });
                    recipes.push(KernelParam::SharedCell {
                        var: name.clone(),
                        init_global,
                    });
                    cells.insert(name.clone());
                }
                ScalarClass::Reduction(op) => {
                    if !self.sema.is_global(&self.cur_func, name) {
                        self.err(
                            format!("reduction variable `{name}` must be a global"),
                            span,
                        );
                        continue;
                    }
                    let elem = self.scalar_elem(name);
                    params.push(Param {
                        name: format!("__red_{name}"),
                        ty: Ty::Ptr(elem),
                    });
                    recipes.push(KernelParam::ReductionSlot {
                        var: name.clone(),
                        op: *op,
                    });
                    reductions.push((name.clone(), *op));
                }
                _ => {}
            }
        }

        // --- kernel body --------------------------------------------------
        let mut kbody: Vec<Stmt> = Vec::new();
        // Loop variable decls + mapping from __gid.
        for (l, level) in levels.iter().enumerate() {
            let var_ty = self
                .sema
                .var_ty(&self.cur_func, &level.var)
                .cloned()
                .unwrap_or(Ty::Scalar(ScalarTy::Int));
            kbody.push(self.mk_decl(&level.var, var_ty, span));
            let idx_expr = self.gid_to_index(l, levels.len(), span);
            kbody.push(self.mk_assign_var(&level.var, idx_expr, span));
        }
        // Privates and reduction locals.
        for (name, class) in &classes {
            match class {
                ScalarClass::Private => {
                    let ty = self
                        .sema
                        .var_ty(&self.cur_func, name)
                        .cloned()
                        .unwrap_or(Ty::Scalar(ScalarTy::Double));
                    kbody.push(self.mk_decl(name, ty, span));
                }
                ScalarClass::Reduction(op) => {
                    let elem = self.scalar_elem(name);
                    let ty = Ty::Scalar(elem);
                    let mut d = self.mk_decl(name, ty, span);
                    let init = self.identity_expr(*op, elem, span);
                    if let StmtKind::Decl(vd) = &mut d.kind {
                        vd.init = Some(init);
                    }
                    kbody.push(d);
                }
                _ => {}
            }
        }
        // Rewritten body.
        for st in &body.stmts {
            kbody.push(self.rewrite_stmt(st, &agg_dims, &cells));
        }
        // Reduction epilogue: __red_s[__gid] = s;
        for (name, _) in &reductions {
            let gid = Expr {
                id: self.next_id_bump(),
                span,
                kind: ExprKind::Var("__gid".into()),
            };
            let val = Expr {
                id: self.next_id_bump(),
                span,
                kind: ExprKind::Var(name.clone()),
            };
            let sid = self.next_id_bump();
            kbody.push(Stmt {
                id: sid,
                span,
                pragmas: Vec::new(),
                kind: StmtKind::Assign {
                    target: LValue::Index {
                        base: format!("__red_{name}"),
                        indices: vec![gid],
                    },
                    op: AssignOp::Set,
                    value: val,
                },
            });
        }

        let kfunc = Func {
            id: self.next_id_bump(),
            name: kname.clone(),
            ret: Ty::Void,
            params: params.clone(),
            body: Block {
                stmts: kbody.clone(),
            },
            span,
        };
        self.kernel_funcs.push(kfunc);

        // --- sequential fallback -------------------------------------------
        let mut seq_params = vec![Param {
            name: "__n".into(),
            ty: Ty::Scalar(ScalarTy::Long),
        }];
        seq_params.extend(params.iter().skip(1).cloned());
        let loop_body = Block { stmts: kbody };
        let gid_decl_id = self.next_id_bump();
        let for_id = self.next_id_bump();
        let seq_body = Block {
            stmts: vec![Stmt {
                id: for_id,
                span,
                pragmas: Vec::new(),
                kind: StmtKind::For {
                    init: Some(Box::new(Stmt {
                        id: gid_decl_id,
                        span,
                        pragmas: Vec::new(),
                        kind: StmtKind::Decl(VarDecl {
                            id: self.next_id_bump(),
                            name: "__gid".into(),
                            ty: Ty::Scalar(ScalarTy::Int),
                            init: Some(Expr {
                                id: self.next_id_bump(),
                                span,
                                kind: ExprKind::IntLit(0),
                            }),
                            span,
                        }),
                    })),
                    cond: Some(Expr {
                        id: self.next_id_bump(),
                        span,
                        kind: ExprKind::Binary {
                            op: BinOp::Lt,
                            lhs: Box::new(Expr {
                                id: self.next_id_bump(),
                                span,
                                kind: ExprKind::Var("__gid".into()),
                            }),
                            rhs: Box::new(Expr {
                                id: self.next_id_bump(),
                                span,
                                kind: ExprKind::Var("__n".into()),
                            }),
                        },
                    }),
                    step: Some(Box::new(Stmt {
                        id: self.next_id_bump(),
                        span,
                        pragmas: Vec::new(),
                        kind: StmtKind::Assign {
                            target: LValue::Var("__gid".into()),
                            op: AssignOp::Add,
                            value: Expr {
                                id: self.next_id_bump(),
                                span,
                                kind: ExprKind::IntLit(1),
                            },
                        },
                    })),
                    body: loop_body,
                },
            }],
        };
        let seq_func_id = self.next_id_bump();
        self.seq_funcs.push(Func {
            id: seq_func_id,
            name: seq_name.clone(),
            ret: Ty::Void,
            params: seq_params,
            body: seq_body,
            span,
        });

        // --- data actions ---------------------------------------------------
        let mut actions = Vec::new();
        for (name, use_) in &acc.aggregates {
            let own_clause = spec
                .data
                .iter()
                .find(|c| c.names().any(|n| n == name))
                .map(|c| c.kind);
            let covering_region = self
                .region_stack
                .iter()
                .rev()
                .find(|(_, cs)| cs.iter().any(|c| c.names().any(|n| n == name)))
                .map(|(r, _)| *r);
            let action = if let Some(kind) = own_clause {
                DataAction {
                    var: name.clone(),
                    map: true,
                    copyin: kind.transfers_in(),
                    copyout: kind.transfers_out(),
                    from_clause: Some(kind),
                    covering_region: None,
                    written: use_.written,
                }
            } else if let Some(region) = covering_region {
                DataAction {
                    var: name.clone(),
                    map: true,
                    copyin: false,
                    copyout: false,
                    from_clause: None,
                    covering_region: Some(region),
                    written: use_.written,
                }
            } else {
                // Default OpenACC policy: copy everything in, modified data
                // out, allocate per kernel (the paper's naive scheme).
                DataAction {
                    var: name.clone(),
                    map: true,
                    copyin: true,
                    copyout: use_.written,
                    from_clause: None,
                    covering_region: None,
                    written: use_.written,
                }
            };
            actions.push(action);
        }

        let hoisted = self
            .instr
            .hoisted_kernel_writes
            .get(&s.id)
            .cloned()
            .unwrap_or_default();

        // `if(cond)`: host evaluates the condition into a synthesized
        // global; a falsy value makes the executor run the sequential
        // fallback (OpenACC 1.0 §2.4.3).
        let if_global = match &spec.if_cond {
            Some(text) => match openarc_minic::parse_expression(text) {
                Ok(e) => {
                    let g = format!("__k{kernel_idx}_if");
                    self.synth_global(&g, Ty::Scalar(ScalarTy::Long), span);
                    let st = self.assign_global_stmt(&g, e, span);
                    pre_stmts.push(st);
                    Some(g)
                }
                Err(d) => {
                    self.errors.push(Diagnostic::error(
                        format!("bad if(...) condition `{text}`: {d}"),
                        span,
                    ));
                    None
                }
            },
            None => None,
        };

        self.kernels.push(KernelInfo {
            name: kname,
            seq_name,
            n_threads_global: n_global,
            params: recipes,
            actions,
            gpu_reads: acc
                .aggregates
                .iter()
                .filter(|(_, u)| u.read)
                .map(|(n, _)| n.clone())
                .collect(),
            gpu_writes: acc
                .aggregates
                .iter()
                .filter(|(_, u)| u.written)
                .map(|(n, _)| n.clone())
                .collect(),
            hoisted_writes: hoisted,
            reductions,
            knowledge,
            wave_override: wave_of(spec),
            queue: spec.async_queue,
            if_global,
            stmt: s.id,
            line: s.span.line,
        });

        out.extend(pre_stmts);
        let launch = self.host_op_stmt(RtOp::Launch(kernel_idx), span);
        out.push(launch);
    }

    fn next_id_bump(&mut self) -> NodeId {
        self.id()
    }

    fn scalar_elem(&self, name: &str) -> ScalarTy {
        match self.sema.var_ty(&self.cur_func, name) {
            Some(Ty::Scalar(s)) => *s,
            _ => ScalarTy::Double,
        }
    }

    fn mk_decl(&mut self, name: &str, ty: Ty, span: Span) -> Stmt {
        let id = self.id();
        let did = self.id();
        Stmt {
            id,
            span,
            pragmas: Vec::new(),
            kind: StmtKind::Decl(VarDecl {
                id: did,
                name: name.to_string(),
                ty,
                init: None,
                span,
            }),
        }
    }

    fn mk_assign_var(&mut self, name: &str, value: Expr, span: Span) -> Stmt {
        let id = self.id();
        Stmt {
            id,
            span,
            pragmas: Vec::new(),
            kind: StmtKind::Assign {
                target: LValue::Var(name.to_string()),
                op: AssignOp::Set,
                value,
            },
        }
    }

    /// Identity literal for a reduction operator.
    fn identity_expr(&mut self, op: ReductionOp, elem: ScalarTy, span: Span) -> Expr {
        let id = self.id();
        let kind = match (op, elem.is_float()) {
            (
                ReductionOp::Add | ReductionOp::BitOr | ReductionOp::BitXor | ReductionOp::LogOr,
                true,
            ) => ExprKind::FloatLit(0.0, elem == ScalarTy::Float),
            (
                ReductionOp::Add | ReductionOp::BitOr | ReductionOp::BitXor | ReductionOp::LogOr,
                false,
            ) => ExprKind::IntLit(0),
            (ReductionOp::Mul | ReductionOp::LogAnd, true) => {
                ExprKind::FloatLit(1.0, elem == ScalarTy::Float)
            }
            (ReductionOp::Mul | ReductionOp::LogAnd, false) => ExprKind::IntLit(1),
            (ReductionOp::Max, true) => ExprKind::FloatLit(-1e30, elem == ScalarTy::Float),
            (ReductionOp::Max, false) => ExprKind::IntLit(i64::MIN / 2),
            (ReductionOp::Min, true) => ExprKind::FloatLit(1e30, elem == ScalarTy::Float),
            (ReductionOp::Min, false) => ExprKind::IntLit(i64::MAX / 2),
            (ReductionOp::BitAnd, _) => ExprKind::IntLit(-1),
        };
        Expr { id, span, kind }
    }

    /// Index reconstruction from `__gid` for loop level `l`.
    fn gid_to_index(&mut self, l: usize, n_levels: usize, span: Span) -> Expr {
        let e = |kind: ExprKind, tx: &mut Tx| Expr {
            id: tx.id(),
            span,
            kind,
        };
        let gid = e(ExprKind::Var("__gid".into()), self);
        let local = if n_levels == 1 {
            gid
        } else if l == 0 {
            // __gid / __span1
            let span1 = e(ExprKind::Var("__span1".into()), self);
            e(
                ExprKind::Binary {
                    op: BinOp::Div,
                    lhs: Box::new(gid),
                    rhs: Box::new(span1),
                },
                self,
            )
        } else {
            // __gid % __span1
            let span1 = e(ExprKind::Var("__span1".into()), self);
            e(
                ExprKind::Binary {
                    op: BinOp::Rem,
                    lhs: Box::new(gid),
                    rhs: Box::new(span1),
                },
                self,
            )
        };
        let lo = e(ExprKind::Var(format!("__lo{l}")), self);
        e(
            ExprKind::Binary {
                op: BinOp::Add,
                lhs: Box::new(lo),
                rhs: Box::new(local),
            },
            self,
        )
    }

    // ------------------------------------------------- kernel body rewrite

    fn rewrite_stmt(
        &mut self,
        s: &Stmt,
        aggs: &BTreeMap<String, Option<Vec<u64>>>,
        cells: &BTreeSet<String>,
    ) -> Stmt {
        let kind = match &s.kind {
            StmtKind::Decl(d) => StmtKind::Decl(VarDecl {
                id: d.id,
                name: d.name.clone(),
                ty: d.ty.clone(),
                init: d.init.as_ref().map(|e| self.rewrite_expr(e, aggs, cells)),
                span: d.span,
            }),
            StmtKind::Expr(e) => StmtKind::Expr(self.rewrite_expr(e, aggs, cells)),
            StmtKind::Assign { target, op, value } => StmtKind::Assign {
                target: self.rewrite_lvalue(target, aggs, cells, s.span),
                op: *op,
                value: self.rewrite_expr(value, aggs, cells),
            },
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => StmtKind::If {
                cond: self.rewrite_expr(cond, aggs, cells),
                then_blk: self.rewrite_block(then_blk, aggs, cells),
                else_blk: else_blk
                    .as_ref()
                    .map(|b| self.rewrite_block(b, aggs, cells)),
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => StmtKind::For {
                init: init
                    .as_ref()
                    .map(|i| Box::new(self.rewrite_stmt(i, aggs, cells))),
                cond: cond.as_ref().map(|c| self.rewrite_expr(c, aggs, cells)),
                step: step
                    .as_ref()
                    .map(|st| Box::new(self.rewrite_stmt(st, aggs, cells))),
                body: self.rewrite_block(body, aggs, cells),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.rewrite_expr(cond, aggs, cells),
                body: self.rewrite_block(body, aggs, cells),
            },
            StmtKind::Block(b) => StmtKind::Block(self.rewrite_block(b, aggs, cells)),
            other => other.clone(),
        };
        Stmt {
            id: s.id,
            span: s.span,
            pragmas: Vec::new(),
            kind,
        }
    }

    fn rewrite_block(
        &mut self,
        b: &Block,
        aggs: &BTreeMap<String, Option<Vec<u64>>>,
        cells: &BTreeSet<String>,
    ) -> Block {
        Block {
            stmts: b
                .stmts
                .iter()
                .map(|s| self.rewrite_stmt(s, aggs, cells))
                .collect(),
        }
    }

    fn rewrite_lvalue(
        &mut self,
        lv: &LValue,
        aggs: &BTreeMap<String, Option<Vec<u64>>>,
        cells: &BTreeSet<String>,
        span: Span,
    ) -> LValue {
        match lv {
            LValue::Var(n) if cells.contains(n) => LValue::Index {
                base: format!("__cell_{n}"),
                indices: vec![Expr {
                    id: self.id(),
                    span,
                    kind: ExprKind::IntLit(0),
                }],
            },
            LValue::Var(n) => LValue::Var(n.clone()),
            LValue::Index { base, indices } => {
                let rewritten: Vec<Expr> = indices
                    .iter()
                    .map(|e| self.rewrite_expr(e, aggs, cells))
                    .collect();
                match aggs.get(base) {
                    Some(Some(dims)) if dims.len() > 1 => LValue::Index {
                        base: base.clone(),
                        indices: vec![self.linearize(dims, rewritten, span)],
                    },
                    _ => LValue::Index {
                        base: base.clone(),
                        indices: rewritten,
                    },
                }
            }
        }
    }

    fn rewrite_expr(
        &mut self,
        e: &Expr,
        aggs: &BTreeMap<String, Option<Vec<u64>>>,
        cells: &BTreeSet<String>,
    ) -> Expr {
        let kind = match &e.kind {
            ExprKind::Var(n) if cells.contains(n) => ExprKind::Index {
                base: format!("__cell_{n}"),
                indices: vec![Expr {
                    id: self.id(),
                    span: e.span,
                    kind: ExprKind::IntLit(0),
                }],
            },
            ExprKind::Index { base, indices } => {
                let rewritten: Vec<Expr> = indices
                    .iter()
                    .map(|x| self.rewrite_expr(x, aggs, cells))
                    .collect();
                match aggs.get(base) {
                    Some(Some(dims)) if dims.len() > 1 => ExprKind::Index {
                        base: base.clone(),
                        indices: vec![self.linearize(dims, rewritten, e.span)],
                    },
                    _ => ExprKind::Index {
                        base: base.clone(),
                        indices: rewritten,
                    },
                }
            }
            ExprKind::Unary { op, expr } => ExprKind::Unary {
                op: *op,
                expr: Box::new(self.rewrite_expr(expr, aggs, cells)),
            },
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.rewrite_expr(lhs, aggs, cells)),
                rhs: Box::new(self.rewrite_expr(rhs, aggs, cells)),
            },
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => ExprKind::Ternary {
                cond: Box::new(self.rewrite_expr(cond, aggs, cells)),
                then_e: Box::new(self.rewrite_expr(then_e, aggs, cells)),
                else_e: Box::new(self.rewrite_expr(else_e, aggs, cells)),
            },
            ExprKind::Call { name, args } => ExprKind::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rewrite_expr(a, aggs, cells))
                    .collect(),
            },
            ExprKind::Cast { ty, expr } => ExprKind::Cast {
                ty: ty.clone(),
                expr: Box::new(self.rewrite_expr(expr, aggs, cells)),
            },
            other => other.clone(),
        };
        Expr {
            id: e.id,
            span: e.span,
            kind,
        }
    }

    /// `((i0 * d1 + i1) * d2 + i2) ...`
    fn linearize(&mut self, dims: &[u64], indices: Vec<Expr>, span: Span) -> Expr {
        let mut it = indices.into_iter();
        let mut acc = it.next().expect("at least one index");
        for (k, ix) in it.enumerate() {
            let d = dims[k + 1];
            let dc = Expr {
                id: self.id(),
                span,
                kind: ExprKind::IntLit(d as i64),
            };
            let mul = Expr {
                id: self.id(),
                span,
                kind: ExprKind::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(acc),
                    rhs: Box::new(dc),
                },
            };
            acc = Expr {
                id: self.id(),
                span,
                kind: ExprKind::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(mul),
                    rhs: Box::new(ix),
                },
            };
        }
        acc
    }
}

// ------------------------------------------------------------- utilities

/// One extracted parallel loop level.
#[derive(Debug, Clone)]
struct LoopLevel {
    var: String,
    lo: Expr,
    hi: Expr,
    inclusive: bool,
    body: Block,
}

impl LoopLevel {
    /// Iteration count expression `hi - lo (+ 1)`.
    fn count_expr(&self, fresh: &mut dyn FnMut() -> NodeId) -> Expr {
        let span = self.lo.span;
        let sub = Expr {
            id: fresh(),
            span,
            kind: ExprKind::Binary {
                op: BinOp::Sub,
                lhs: Box::new(self.hi.clone()),
                rhs: Box::new(self.lo.clone()),
            },
        };
        if self.inclusive {
            Expr {
                id: fresh(),
                span,
                kind: ExprKind::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(sub),
                    rhs: Box::new(Expr {
                        id: fresh(),
                        span,
                        kind: ExprKind::IntLit(1),
                    }),
                },
            }
        } else {
            sub
        }
    }
}

/// Extract a canonical parallel loop: `for (i = lo; i </(<=) hi; i++/i+=1)`.
fn extract_level(s: &Stmt) -> Result<LoopLevel, String> {
    let StmtKind::For {
        init,
        cond,
        step,
        body,
    } = &s.kind
    else {
        return Err("compute construct must annotate a for loop".into());
    };
    let (var, lo) = match init.as_deref() {
        Some(Stmt {
            kind:
                StmtKind::Assign {
                    target: LValue::Var(v),
                    op: AssignOp::Set,
                    value,
                },
            ..
        }) => (v.clone(), value.clone()),
        Some(Stmt {
            kind: StmtKind::Decl(d),
            ..
        }) => match &d.init {
            Some(init) => (d.name.clone(), init.clone()),
            None => return Err("parallel loop variable must be initialized".into()),
        },
        _ => return Err("parallel loop must initialize its induction variable".into()),
    };
    let (hi, inclusive) = match cond {
        Some(Expr {
            kind: ExprKind::Binary { op, lhs, rhs },
            ..
        }) => {
            let ok_var = matches!(&lhs.kind, ExprKind::Var(v) if *v == var);
            if !ok_var {
                return Err("parallel loop condition must compare the induction variable".into());
            }
            match op {
                BinOp::Lt => ((**rhs).clone(), false),
                BinOp::Le => ((**rhs).clone(), true),
                _ => return Err("parallel loop condition must use < or <=".into()),
            }
        }
        _ => return Err("parallel loop must have a condition".into()),
    };
    match step.as_deref() {
        Some(Stmt {
            kind:
                StmtKind::Assign {
                    target: LValue::Var(v),
                    op: AssignOp::Add,
                    value,
                },
            ..
        }) if *v == var && matches!(value.kind, ExprKind::IntLit(1)) => {}
        _ => return Err("parallel loop step must be i++ or i += 1".into()),
    }
    Ok(LoopLevel {
        var,
        lo,
        hi,
        inclusive,
        body: body.clone(),
    })
}

/// First event observed for a scalar inside a region.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FirstEvent {
    PlainRead,
    PlainWrite,
    RedWrite,
}

/// Per-scalar usage inside a region.
#[derive(Debug, Default, Clone)]
struct ScalarUse {
    first: Option<FirstEvent>,
    written: bool,
    plain_read: bool,
    plain_write: bool,
    red_op: Option<ReductionOp>,
    red_conflict: bool,
    declared_in_body: bool,
}

impl ScalarUse {
    fn see(&mut self, ev: FirstEvent) {
        if self.first.is_none() {
            self.first = Some(ev);
        }
    }

    /// First access is an unconditional write → privatizable.
    fn first_is_write(&self) -> bool {
        self.first == Some(FirstEvent::PlainWrite)
    }

    /// Every write is the same reduction pattern and there is no other
    /// read of the variable.
    fn reduction_ok(&self) -> bool {
        !self.plain_read && !self.plain_write && self.red_op.is_some() && !self.red_conflict
    }
}

/// Per-aggregate usage inside a region.
#[derive(Debug, Default, Clone)]
struct AggUse {
    read: bool,
    written: bool,
}

#[derive(Debug, Default)]
struct RegionAccesses {
    aggregates: BTreeMap<String, AggUse>,
    scalars: BTreeMap<String, ScalarUse>,
    called_functions: BTreeSet<String>,
}

/// Walk the region body in program order, recording first-access kinds and
/// reduction patterns.
fn collect_region_accesses(
    body: &Block,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
) -> RegionAccesses {
    let mut acc = RegionAccesses::default();
    collect_block(body, exclude, sema, func, &mut acc);
    acc
}

fn is_aggregate(sema: &Sema, func: &str, name: &str) -> bool {
    sema.var_ty(func, name)
        .map(|t| t.is_aggregate())
        .unwrap_or(false)
}

fn note_read(
    acc: &mut RegionAccesses,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
    name: &str,
) {
    if exclude.contains(name) {
        return;
    }
    if is_aggregate(sema, func, name) {
        acc.aggregates.entry(name.to_string()).or_default().read = true;
    } else {
        let u = acc.scalars.entry(name.to_string()).or_default();
        u.see(FirstEvent::PlainRead);
        // A read outside a reduction statement disqualifies the pattern.
        u.plain_read = true;
    }
}

fn note_expr_reads(
    e: &Expr,
    acc: &mut RegionAccesses,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
) {
    e.walk(&mut |x| match &x.kind {
        ExprKind::Var(n) => note_read(acc, exclude, sema, func, n),
        ExprKind::Index { base, .. } => note_read(acc, exclude, sema, func, base),
        ExprKind::Call { name, .. } if !openarc_minic::sema::is_intrinsic(name) => {
            acc.called_functions.insert(name.clone());
        }
        _ => {}
    });
}

fn note_write(
    acc: &mut RegionAccesses,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
    name: &str,
    red: Option<ReductionOp>,
) {
    if exclude.contains(name) {
        return;
    }
    if is_aggregate(sema, func, name) {
        acc.aggregates.entry(name.to_string()).or_default().written = true;
        return;
    }
    let u = acc.scalars.entry(name.to_string()).or_default();
    u.written = true;
    match red {
        Some(op) => {
            u.see(FirstEvent::RedWrite);
            if let Some(prev) = u.red_op {
                if prev != op {
                    u.red_conflict = true;
                }
            } else {
                u.red_op = Some(op);
            }
        }
        None => {
            u.see(FirstEvent::PlainWrite);
            u.plain_write = true;
        }
    }
}

/// Detect reduction-shaped statements: `s += e`, `s = s + e`, `s = e + s`,
/// `s *= e`, `s = max/min/fmax/fmin(s, e)`.
fn reduction_shape(target: &str, op: AssignOp, value: &Expr) -> Option<ReductionOp> {
    match op {
        AssignOp::Add => return (!expr_reads_var(value, target)).then_some(ReductionOp::Add),
        AssignOp::Mul => return (!expr_reads_var(value, target)).then_some(ReductionOp::Mul),
        AssignOp::Sub | AssignOp::Div => return None,
        AssignOp::Set => {}
    }
    match &value.kind {
        ExprKind::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => {
            if is_var(lhs, target) && !expr_reads_var(rhs, target) {
                return Some(ReductionOp::Add);
            }
            if is_var(rhs, target) && !expr_reads_var(lhs, target) {
                return Some(ReductionOp::Add);
            }
            None
        }
        ExprKind::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => {
            if is_var(lhs, target) && !expr_reads_var(rhs, target) {
                return Some(ReductionOp::Mul);
            }
            if is_var(rhs, target) && !expr_reads_var(lhs, target) {
                return Some(ReductionOp::Mul);
            }
            None
        }
        ExprKind::Call { name, args } if args.len() == 2 => {
            let op = match name.as_str() {
                "max" | "fmax" => ReductionOp::Max,
                "min" | "fmin" => ReductionOp::Min,
                _ => return None,
            };
            if (is_var(&args[0], target) && !expr_reads_var(&args[1], target))
                || (is_var(&args[1], target) && !expr_reads_var(&args[0], target))
            {
                Some(op)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn is_var(e: &Expr, name: &str) -> bool {
    matches!(&e.kind, ExprKind::Var(n) if n == name)
}

fn expr_reads_var(e: &Expr, name: &str) -> bool {
    e.reads().iter().any(|r| r == name)
}

fn collect_block(
    b: &Block,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
    acc: &mut RegionAccesses,
) {
    for s in &b.stmts {
        collect_stmt(s, exclude, sema, func, acc);
    }
}

fn collect_stmt(
    s: &Stmt,
    exclude: &BTreeSet<String>,
    sema: &Sema,
    func: &str,
    acc: &mut RegionAccesses,
) {
    match &s.kind {
        StmtKind::Decl(d) => {
            // A declaration inside the region makes the scalar thread-local
            // by construction (it cannot be shared with the host).
            if let Some(init) = &d.init {
                note_expr_reads(init, acc, exclude, sema, func);
            }
            if !exclude.contains(&d.name) && !is_aggregate(sema, func, &d.name) {
                let u = acc.scalars.entry(d.name.clone()).or_default();
                u.declared_in_body = true;
                u.written = true;
            }
        }
        StmtKind::Expr(e) => note_expr_reads(e, acc, exclude, sema, func),
        StmtKind::Assign { target, op, value } => {
            let red = reduction_shape(target.base(), *op, value);
            // Reads of the value and indices come first...
            if red.is_none() {
                note_expr_reads(value, acc, exclude, sema, func);
                if op.binop().is_some() {
                    note_read(acc, exclude, sema, func, target.base());
                }
            } else {
                // Reduction-shaped: the self-read does not count as a
                // disqualifying read; other operands still count.
                match &value.kind {
                    ExprKind::Binary { lhs, rhs, .. } => {
                        if !is_var(lhs, target.base()) {
                            note_expr_reads(lhs, acc, exclude, sema, func);
                        }
                        if !is_var(rhs, target.base()) {
                            note_expr_reads(rhs, acc, exclude, sema, func);
                        }
                    }
                    ExprKind::Call { args, .. } => {
                        for a in args {
                            if !is_var(a, target.base()) {
                                note_expr_reads(a, acc, exclude, sema, func);
                            }
                        }
                    }
                    other_value => {
                        let e = Expr {
                            id: 0,
                            span: s.span,
                            kind: other_value.clone(),
                        };
                        note_expr_reads(&e, acc, exclude, sema, func);
                    }
                }
            }
            if let LValue::Index { indices, .. } = target {
                for ix in indices {
                    note_expr_reads(ix, acc, exclude, sema, func);
                }
            }
            match target {
                LValue::Var(n) => note_write(acc, exclude, sema, func, n, red),
                LValue::Index { base, .. } => note_write(acc, exclude, sema, func, base, None),
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            note_expr_reads(cond, acc, exclude, sema, func);
            collect_block(then_blk, exclude, sema, func, acc);
            if let Some(e) = else_blk {
                collect_block(e, exclude, sema, func, acc);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt(i, exclude, sema, func, acc);
            }
            if let Some(c) = cond {
                note_expr_reads(c, acc, exclude, sema, func);
            }
            if let Some(st) = step {
                collect_stmt(st, exclude, sema, func, acc);
            }
            collect_block(body, exclude, sema, func, acc);
        }
        StmtKind::While { cond, body } => {
            note_expr_reads(cond, acc, exclude, sema, func);
            collect_block(body, exclude, sema, func, acc);
        }
        StmtKind::Block(b) => collect_block(b, exclude, sema, func, acc),
        StmtKind::Return(Some(e)) => note_expr_reads(e, acc, exclude, sema, func),
        _ => {}
    }
}

/// Inner `acc loop` directives within a region contribute private /
/// reduction clauses.
fn collect_inner_loop_specs(body: &Block) -> Vec<openarc_openacc::LoopSpec> {
    let mut out = Vec::new();
    walk_stmts(body, &mut |s| {
        if let Ok(dirs) = directives_of(s) {
            for (d, _) in dirs {
                if let Directive::Loop(ls) = d {
                    out.push(ls);
                }
            }
        }
    });
    out
}

/// Resident-thread (lockstep wave) width implied by the construct's
/// `num_workers`/`vector_length` clauses: workers × vector lanes execute
/// together, like a resident thread block.
fn wave_of(spec: &ComputeSpec) -> Option<u32> {
    match (spec.num_workers, spec.vector_length) {
        (None, None) => None,
        (w, v) => {
            let w = w.unwrap_or(1).max(1) as u32;
            let v = v.unwrap_or(1).max(1) as u32;
            Some((w.saturating_mul(v)).clamp(1, 4096))
        }
    }
}

/// If the region body contains a `break`/`continue` not enclosed in a loop
/// inside the region, or any `return`, name the offending construct.
/// OpenACC forbids branching out of a structured data region; allowing it
/// would unbalance the present table.
fn escaping_branch(s: &Stmt) -> Option<&'static str> {
    fn scan(b: &Block, loop_depth: u32) -> Option<&'static str> {
        for st in &b.stmts {
            match &st.kind {
                StmtKind::Break if loop_depth == 0 => return Some("break"),
                StmtKind::Continue if loop_depth == 0 => return Some("continue"),
                StmtKind::Return(_) => return Some("return"),
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    if let Some(k) = scan(then_blk, loop_depth) {
                        return Some(k);
                    }
                    if let Some(e) = else_blk {
                        if let Some(k) = scan(e, loop_depth) {
                            return Some(k);
                        }
                    }
                }
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                    if let Some(k) = scan(body, loop_depth + 1) {
                        return Some(k);
                    }
                }
                StmtKind::Block(inner) => {
                    if let Some(k) = scan(inner, loop_depth) {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }
    match &s.kind {
        StmtKind::Block(b) => scan(b, 0),
        _ => None,
    }
}

/// Does this statement's subtree carry any `acc` pragma?
fn subtree_has_acc(s: &Stmt) -> bool {
    let mut found = false;
    walk_stmt(s, &mut |x| {
        if x.pragmas.iter().any(|p| p.text.starts_with("acc")) {
            found = true;
        }
    });
    found
}

/// Clone a statement with pragmas removed (recursively at the top level
/// only — nested pragmas are unreachable once regions are lowered).
fn strip_pragmas(s: &Stmt) -> Stmt {
    let mut c = s.clone();
    c.pragmas.clear();
    c
}

/// Loop label for reports: `i-loop` when the induction variable is known.
fn loop_label(init: Option<&Stmt>) -> String {
    match init.map(|s| &s.kind) {
        Some(StmtKind::Assign {
            target: LValue::Var(v),
            ..
        }) => format!("{v}-loop"),
        Some(StmtKind::Decl(d)) => format!("{}-loop", d.name),
        _ => "loop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::frontend;

    fn translate_src(src: &str) -> Translated {
        let (p, s) = frontend(src).expect("frontend");
        translate(&p, &s, &TranslateOptions::default())
            .unwrap_or_else(|e| panic!("translate failed: {e:?}"))
    }

    const COPY_SRC: &str = "double q[100];\ndouble w[100];\nvoid main() {\n int j;\n #pragma acc kernels loop gang worker\n for (j = 0; j < 100; j++) { q[j] = w[j]; }\n}";

    #[test]
    fn outlines_one_kernel() {
        let t = translate_src(COPY_SRC);
        assert_eq!(t.kernels.len(), 1);
        let k = &t.kernels[0];
        assert_eq!(k.name, "main_kernel0");
        assert!(t.kernel_module.chunk("main_kernel0").is_some());
        assert!(t.host_module.chunk(&k.seq_name).is_some());
        assert_eq!(k.gpu_writes, vec!["q"]);
        assert_eq!(k.gpu_reads, vec!["w"]);
    }

    #[test]
    fn default_policy_copies_everything() {
        let t = translate_src(COPY_SRC);
        let k = &t.kernels[0];
        let aq = k.actions.iter().find(|a| a.var == "q").unwrap();
        let aw = k.actions.iter().find(|a| a.var == "w").unwrap();
        assert!(aq.copyin && aq.copyout && aq.map);
        assert!(aw.copyin && !aw.copyout);
    }

    #[test]
    fn data_region_suppresses_kernel_transfers() {
        let src = "double q[10];\ndouble w[10];\nvoid main() {\n int j;\n #pragma acc data create(q, w)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 10; j++) { q[j] = w[j]; }\n }\n}";
        let t = translate_src(src);
        let k = &t.kernels[0];
        for a in &k.actions {
            assert!(!a.copyin && !a.copyout, "{a:?}");
        }
        assert_eq!(t.data_regions.len(), 1);
        assert_eq!(t.data_regions[0].actions.len(), 2);
        assert!(
            !t.data_regions[0].actions[0].copyin,
            "create does not transfer"
        );
    }

    #[test]
    fn kernel_own_clauses_override() {
        let src = "double q[10];\ndouble w[10];\nvoid main() {\n int j;\n #pragma acc kernels loop gang copy(q) copyin(w)\n for (j = 0; j < 10; j++) { q[j] = w[j]; }\n}";
        let t = translate_src(src);
        let k = &t.kernels[0];
        let aq = k.actions.iter().find(|a| a.var == "q").unwrap();
        assert!(aq.copyin && aq.copyout);
        let aw = k.actions.iter().find(|a| a.var == "w").unwrap();
        assert!(aw.copyin && !aw.copyout);
    }

    #[test]
    fn scalar_classification() {
        let src = "double a[10];\ndouble s;\nint n;\nvoid main() {\n int j; double tmp;\n #pragma acc kernels loop gang reduction(+:s)\n for (j = 0; j < 10; j++) { tmp = a[j] * 2.0; s += tmp + (double) n; }\n}";
        let t = translate_src(src);
        let k = &t.kernels[0];
        // tmp auto-privatized (first access is a write), s reduction, n param.
        assert!(k.params.iter().any(
            |p| matches!(p, KernelParam::ReductionSlot { var, op: ReductionOp::Add } if var == "s")
        ));
        assert!(k
            .params
            .iter()
            .any(|p| matches!(p, KernelParam::Scalar { var } if var == "n")));
        assert!(!k
            .params
            .iter()
            .any(|p| matches!(p, KernelParam::SharedCell { var, .. } if var == "tmp")));
        assert_eq!(k.reductions.len(), 1);
    }

    #[test]
    fn auto_reduction_recognized_without_clause() {
        let src = "double a[10];\ndouble s;\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 10; j++) { s += a[j]; }\n}";
        let t = translate_src(src);
        assert_eq!(
            t.kernels[0].reductions,
            vec![("s".to_string(), ReductionOp::Add)]
        );
    }

    #[test]
    fn disabled_recognition_creates_shared_cell() {
        let src = "double a[10];\ndouble s;\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 10; j++) { s += a[j]; }\n}";
        let (p, sm) = frontend(src).unwrap();
        let opts = TranslateOptions {
            auto_reduction: false,
            auto_privatize: false,
            ..Default::default()
        };
        let t = translate(&p, &sm, &opts).unwrap();
        assert!(t.kernels[0]
            .params
            .iter()
            .any(|pr| matches!(pr, KernelParam::SharedCell { var, .. } if var == "s")));
        assert!(t.kernels[0].reductions.is_empty());
    }

    #[test]
    fn collapse_two_levels() {
        let src = "double g[8][8];\nvoid main() {\n int i; int j;\n #pragma acc kernels loop gang worker collapse(2)\n for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) { g[i][j] = 1.0; }\n}";
        let t = translate_src(src);
        let k = &t.kernels[0];
        assert!(
            k.params
                .iter()
                .filter(|p| matches!(p, KernelParam::Scalar { var } if var.contains("_lo")))
                .count()
                == 2
        );
        assert!(k
            .params
            .iter()
            .any(|p| matches!(p, KernelParam::Scalar { var } if var.contains("span1"))));
    }

    #[test]
    fn local_bound_captured_via_synth_global() {
        let src = "double a[100];\nvoid main() {\n int j; int n2; n2 = 50;\n #pragma acc kernels loop gang\n for (j = 0; j < n2; j++) { a[j] = 1.0; }\n}";
        let t = translate_src(src);
        // A synthesized global holds the captured bound.
        assert!(t
            .host_program
            .globals()
            .any(|g| g.name.starts_with("__k0_")));
        // And n threads global exists.
        assert!(t.host_module.global_slot("__k0_n").is_some());
    }

    #[test]
    fn update_and_wait_lowered_to_ops() {
        let src = "double b[4];\nvoid main() {\n #pragma acc update host(b)\n #pragma acc wait(1)\n b[0] = 1.0;\n}";
        let t = translate_src(src);
        assert!(t.ops.iter().any(
            |o| matches!(o, RtOp::Update { to_host, .. } if to_host == &vec!["b".to_string()])
        ));
        assert!(t.ops.iter().any(|o| matches!(o, RtOp::Wait(Some(1)))));
    }

    #[test]
    fn loop_context_ops_inserted_around_kernel_loops() {
        let src = "double q[8];\ndouble w[8];\nvoid main() {\n int k; int j;\n for (k = 0; k < 3; k++) {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 8; j++) { q[j] = w[j]; }\n }\n}";
        let t = translate_src(src);
        assert!(t
            .ops
            .iter()
            .any(|o| matches!(o, RtOp::LoopEnter { label } if label == "k-loop")));
        assert!(t.ops.contains(&RtOp::LoopTick));
        assert!(t.ops.contains(&RtOp::LoopExit));
    }

    #[test]
    fn multidim_access_linearized_in_kernel() {
        let src = "double g[4][6];\nvoid main() {\n int i;\n #pragma acc kernels loop gang\n for (i = 0; i < 4; i++) { g[i][2] = 1.0; }\n}";
        let t = translate_src(src);
        let chunk = t.kernel_module.chunk("main_kernel0").unwrap();
        // Row stride 6 must appear in kernel constants.
        assert!(chunk.consts.contains(&openarc_vm::Value::Int(6)));
    }

    #[test]
    fn async_queue_recorded() {
        let src = "double q[8];\ndouble w[8];\nvoid main() {\n int j;\n #pragma acc kernels loop async(1) gang worker copy(q) copyin(w)\n for (j = 0; j < 8; j++) { q[j] = w[j]; }\n #pragma acc wait(1)\n}";
        let t = translate_src(src);
        assert_eq!(t.kernels[0].queue, Some(1));
    }

    #[test]
    fn rejects_unsupported_loop_shape() {
        let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 8; j > 0; j--) { a[j-1] = 1.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        assert!(translate(&p, &s, &TranslateOptions::default()).is_err());
    }

    #[test]
    fn rejects_user_call_in_region() {
        let src = "double f(double x) { return x; }\ndouble a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = f(1.0); }\n}";
        let (p, s) = frontend(src).unwrap();
        assert!(translate(&p, &s, &TranslateOptions::default()).is_err());
    }

    #[test]
    fn validation_catches_bad_directive_vars() {
        let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang copyin(zzz)\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        let err = translate(&p, &s, &TranslateOptions::default()).unwrap_err();
        assert!(err.iter().any(|d| d.message.contains("unknown variable")));
    }

    #[test]
    fn instrumented_translation_adds_check_ops() {
        let src = "double a[8];\nint z;\nvoid main() {\n int j;\n z = (int) a[0];\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        let opts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        let t = translate(&p, &s, &opts).unwrap();
        assert!(t.ops.iter().any(|o| matches!(o, RtOp::CheckRead { .. })));
    }
}
#[cfg(test)]
mod escape_tests {
    use super::*;
    use openarc_minic::frontend;

    #[test]
    fn break_out_of_data_region_rejected() {
        let src = "double a[4];\nvoid main() {\n int j;\n for (j = 0; j < 4; j++) {\n  #pragma acc data copyin(a)\n  {\n   if (j == 2) { break; }\n  }\n }\n}";
        let (p, s) = frontend(src).unwrap();
        let err = translate(&p, &s, &TranslateOptions::default()).unwrap_err();
        assert!(
            err.iter()
                .any(|d| d.message.contains("branch out of a structured data region")),
            "{err:?}"
        );
    }

    #[test]
    fn break_within_loop_inside_region_allowed() {
        let src = "double a[8];\nvoid main() {\n int j;\n #pragma acc data copyin(a)\n {\n  for (j = 0; j < 8; j++) { if (j == 2) { break; } }\n }\n}";
        let (p, s) = frontend(src).unwrap();
        assert!(translate(&p, &s, &TranslateOptions::default()).is_ok());
    }

    #[test]
    fn return_inside_data_region_rejected() {
        let src = "double a[4];\nvoid main() {\n #pragma acc data copyin(a)\n {\n  return;\n }\n}";
        let (p, s) = frontend(src).unwrap();
        assert!(translate(&p, &s, &TranslateOptions::default()).is_err());
    }
}

#[cfg(test)]
mod wave_tests {
    use super::*;
    use openarc_minic::frontend;

    fn kernel0(src: &str) -> crate::ir::KernelInfo {
        let (p, s) = frontend(src).unwrap();
        translate(&p, &s, &TranslateOptions::default())
            .unwrap()
            .kernels[0]
            .clone()
    }

    #[test]
    fn workers_times_vector_sets_wave() {
        let k = kernel0(
            "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang num_workers(8) vector_length(32)\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}",
        );
        assert_eq!(k.wave_override, Some(256));
    }

    #[test]
    fn absent_clauses_leave_default() {
        let k = kernel0(
            "double a[8];\nvoid main() {\n int j;\n #pragma acc kernels loop gang worker\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n}",
        );
        assert_eq!(k.wave_override, None);
    }

    #[test]
    fn single_lane_wave_serializes_thread_execution() {
        // With num_workers(1) vector_length(1), threads run one at a time:
        // the injected shared-temp race cannot interleave, so the result
        // matches the sequential one (the ablation-3 effect, driven from a
        // directive).
        let src = "double a[32];\ndouble tmp;\nvoid main() {\n int j;\n #pragma acc kernels loop gang num_workers(1) vector_length(1)\n for (j = 0; j < 32; j++) { tmp = (double) j; a[j] = tmp + 1.0; }\n}";
        let (p, s) = frontend(src).unwrap();
        let topts = TranslateOptions {
            auto_privatize: false,
            auto_reduction: false,
            ..Default::default()
        };
        let tr = translate(&p, &s, &topts).unwrap();
        let r = crate::exec::execute(&tr, &crate::exec::ExecOptions::default()).unwrap();
        let a = r.global_array(&tr, "a").unwrap();
        assert!((0..32).all(|i| a[i] == i as f64 + 1.0), "{a:?}");
        // The oracle still records the (cross-thread) conflicting accesses.
        assert!(!r.races.is_empty());
    }
}
