//! Coherence-check placement (§III-B).
//!
//! Computes where the compiler inserts `check_read` / `check_write` /
//! `reset_status` runtime calls, applying the paper's placement
//! optimizations:
//!
//! * GPU-side checks only at kernel boundaries (built into the launch
//!   handler; this module only *subtracts* hoisted write checks from it).
//! * CPU-side checks only at may-be-first reads/writes since program entry
//!   or the last kernel call ([`openarc_dataflow::first_access`]).
//! * `reset_status` for remote-dead variables only at last writes
//!   ([`openarc_dataflow::last_write`], Algorithm 2) and kernel boundaries.
//! * Checks whose first access sits in a kernel-free loop hoist before the
//!   loop; kernel GPU write checks hoist out of loops under the Listing-3
//!   conditions, enabling detection of per-iteration redundant copyouts.

use crate::ir::RtOp;
use openarc_dataflow::{
    dead_live_compute, first_access, last_write, natural_loops, AccessSel, Cfg, Deadness, NodeKind,
    Side,
};
use openarc_minic::span::Diagnostic;
use openarc_minic::{Func, NodeId, Sema};
use openarc_runtime::{DevSide, St};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Planned instrumentation for one function.
#[derive(Debug, Default)]
pub struct Instrumentation {
    /// Ops to run before a statement.
    pub before: HashMap<NodeId, Vec<RtOp>>,
    /// Ops to run after a statement.
    pub after: HashMap<NodeId, Vec<RtOp>>,
    /// Kernel statement → aggregate vars whose GPU write check is hoisted
    /// (the launch skips their state transition; a pre-loop op does it).
    pub hoisted_kernel_writes: HashMap<NodeId, Vec<String>>,
}

impl Instrumentation {
    fn before_push(&mut self, id: NodeId, op: RtOp) {
        let v = self.before.entry(id).or_default();
        if !v.contains(&op) {
            v.push(op);
        }
    }

    fn after_push(&mut self, id: NodeId, op: RtOp) {
        let v = self.after.entry(id).or_default();
        if !v.contains(&op) {
            v.push(op);
        }
    }

    /// Total number of planned check/reset ops (used by overhead tests).
    pub fn op_count(&self) -> usize {
        self.before.values().map(Vec::len).sum::<usize>()
            + self.after.values().map(Vec::len).sum::<usize>()
    }
}

/// The aggregate (tracked) variables visible in `func`.
pub fn tracked_vars(func: &Func, sema: &Sema) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (name, ty) in &sema.globals {
        if ty.is_aggregate() {
            out.insert(name.clone());
        }
    }
    if let Some(info) = sema.funcs.get(&func.name) {
        for (name, ty) in &info.locals {
            if ty.is_aggregate() {
                out.insert(name.clone());
            }
        }
    }
    let _ = func;
    out
}

/// Plan instrumentation for `func`. With `optimize` false, checks go at
/// every access (the naive placement the paper's optimizations replace).
pub fn plan(
    func: &Func,
    sema: &Sema,
    optimize: bool,
    hoist_gpu: bool,
    ignored_updates: &BTreeSet<NodeId>,
) -> Result<Instrumentation, Diagnostic> {
    let cfg = Cfg::build_typed(func, sema)?;
    let tracked = tracked_vars(func, sema);
    let mut ins = Instrumentation::default();
    if tracked.is_empty() {
        return Ok(ins);
    }

    let loops = natural_loops(&cfg);
    // Map: node → innermost-to-outermost loops containing it.
    let loops_of = |n: usize| -> Vec<&openarc_dataflow::NaturalLoop> {
        let mut ls: Vec<_> = loops.iter().filter(|l| l.body.contains(&n)).collect();
        ls.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        ls
    };
    let loop_has_kernel = |l: &openarc_dataflow::NaturalLoop| -> bool {
        l.body.iter().any(|&n| cfg.nodes[n].is_kernel())
    };
    // Listing-3 condition (ii): "no memory transfer call for the variable
    // exists BEFORE the write_check() call within the loop" — only
    // transfers preceding the kernel in the iteration matter (the paper's
    // own example keeps the post-kernel memcpyout and still hoists).
    let loop_has_transfer_of_before =
        |l: &openarc_dataflow::NaturalLoop, var: &str, kernel_node: usize| -> bool {
            l.body.iter().any(|&n| match &cfg.nodes[n].kind {
                NodeKind::Update(u) => {
                    // User-removed updates no longer transfer anything.
                    let removed = cfg.nodes[n]
                        .stmt
                        .map(|id| ignored_updates.contains(&id))
                        .unwrap_or(false);
                    !removed && n < kernel_node && u.host.iter().chain(&u.device).any(|v| v == var)
                }
                NodeKind::DataEnter(_) | NodeKind::DataExit(_) => true,
                _ => false,
            })
        };
    let loop_has_host_access_of = |l: &openarc_dataflow::NaturalLoop, var: &str| -> bool {
        l.body.iter().any(|&n| {
            let node = &cfg.nodes[n];
            !node.is_kernel()
                && !matches!(node.kind, NodeKind::Update(_))
                && (node.host.reads.contains(var) || node.host.writes.contains(var))
        })
    };

    // ---- CPU-side read/write checks -------------------------------------
    let (reads_at, writes_at): (Vec<BTreeSet<String>>, Vec<BTreeSet<String>>) = if optimize {
        (
            first_access(&cfg, Side::Host, AccessSel::Read),
            first_access(&cfg, Side::Host, AccessSel::Write),
        )
    } else {
        // Naive: every access is checked.
        (
            cfg.nodes.iter().map(|n| n.host.reads.clone()).collect(),
            cfg.nodes.iter().map(|n| n.host.writes.clone()).collect(),
        )
    };

    for (n, node) in cfg.nodes.iter().enumerate() {
        // Kernel and update nodes manage coherence in their handlers.
        if node.is_kernel() || matches!(node.kind, NodeKind::Update(_)) {
            continue;
        }
        let Some(stmt) = node.stmt else { continue };
        for var in reads_at[n].iter().filter(|v| tracked.contains(*v)) {
            let site = format!("cpu_read@{stmt}");
            let op = RtOp::CheckRead {
                var: var.clone(),
                side: DevSide::Cpu,
                site,
            };
            let target = if optimize {
                hoist_target(&cfg, &loops_of(n), &loop_has_kernel, stmt)
            } else {
                stmt
            };
            ins.before_push(target, op);
        }
        for var in writes_at[n].iter().filter(|v| tracked.contains(*v)) {
            let total = node.host.total_writes.contains(var);
            let site = format!("cpu_write@{stmt}");
            let op = RtOp::CheckWrite {
                var: var.clone(),
                side: DevSide::Cpu,
                total,
                site,
            };
            let target = if optimize {
                hoist_target(&cfg, &loops_of(n), &loop_has_kernel, stmt)
            } else {
                stmt
            };
            ins.before_push(target, op);
        }
    }

    // ---- reset_status at last CPU writes (remote = GPU deadness) --------
    let dl_gpu = dead_live_compute(&cfg, Side::Gpu);
    let lw_host = last_write(&cfg, Side::Host, true);
    for (n, node) in cfg.nodes.iter().enumerate() {
        if node.is_kernel() || matches!(node.kind, NodeKind::Update(_)) {
            continue;
        }
        let Some(stmt) = node.stmt else { continue };
        let candidates: BTreeSet<String> = if optimize {
            lw_host.last_written_at(&cfg, Side::Host, n)
        } else {
            node.host.writes.clone()
        };
        // A reset after a write inside a kernel-free loop hoists to after
        // the loop (only the final iteration's state matters, and keeping
        // the call out of the hot loop is where the paper's low Figure 4
        // overhead comes from).
        let target = if optimize {
            hoist_target(&cfg, &loops_of(n), &loop_has_kernel, stmt)
        } else {
            stmt
        };
        for var in candidates.iter().filter(|v| tracked.contains(*v)) {
            match dl_gpu.after(n, var) {
                Deadness::MustDead => ins.after_push(
                    target,
                    RtOp::ResetStatus {
                        var: var.clone(),
                        side: DevSide::Gpu,
                        st: St::NotStale,
                    },
                ),
                Deadness::MayDead => ins.after_push(
                    target,
                    RtOp::ResetStatus {
                        var: var.clone(),
                        side: DevSide::Gpu,
                        st: St::MayStale,
                    },
                ),
                Deadness::Live => {}
            }
        }
    }

    // ---- reset_status for dead CPU copies at kernel boundaries ----------
    let dl_host = dead_live_compute(&cfg, Side::Host);
    for &k in &cfg.kernel_nodes() {
        let stmt = cfg.nodes[k].stmt.expect("kernel stmt");
        let written: Vec<String> = cfg.nodes[k].gpu.writes.iter().cloned().collect();
        for var in written.iter().filter(|v| tracked.contains(*v)) {
            match dl_host.after(k, var) {
                Deadness::MustDead => ins.after_push(
                    stmt,
                    RtOp::ResetStatus {
                        var: var.clone(),
                        side: DevSide::Cpu,
                        st: St::NotStale,
                    },
                ),
                Deadness::MayDead => ins.after_push(
                    stmt,
                    RtOp::ResetStatus {
                        var: var.clone(),
                        side: DevSide::Cpu,
                        st: St::MayStale,
                    },
                ),
                Deadness::Live => {}
            }
        }
    }

    // ---- Listing-3 hoisting of GPU write checks --------------------------
    if optimize && hoist_gpu {
        for &k in &cfg.kernel_nodes() {
            let kstmt = cfg.nodes[k].stmt.expect("kernel stmt");
            let enclosing = loops_of(k);
            let Some(outer) = enclosing.first() else {
                continue;
            };
            for var in cfg.nodes[k].gpu.writes.clone() {
                if !tracked.contains(&var) {
                    continue;
                }
                let ok = !loop_has_host_access_of(outer, &var)
                    && !loop_has_transfer_of_before(outer, &var, k);
                if ok {
                    let head_stmt = cfg.nodes[outer.head].stmt.expect("loop head stmt");
                    ins.before_push(
                        head_stmt,
                        RtOp::CheckWrite {
                            var: var.clone(),
                            side: DevSide::Gpu,
                            total: false,
                            site: format!("gpu_write_hoisted@{kstmt}"),
                        },
                    );
                    ins.hoisted_kernel_writes
                        .entry(kstmt)
                        .or_default()
                        .push(var);
                }
            }
        }
    }

    Ok(ins)
}

/// Hoist a CPU check out of kernel-free loops: returns the statement to
/// insert before (outermost kernel-free enclosing loop, else the access).
fn hoist_target(
    cfg: &Cfg,
    enclosing: &[&openarc_dataflow::NaturalLoop],
    loop_has_kernel: &dyn Fn(&openarc_dataflow::NaturalLoop) -> bool,
    stmt: NodeId,
) -> NodeId {
    // `enclosing` is sorted outermost-first.
    for l in enclosing {
        if !loop_has_kernel(l) {
            if let Some(s) = cfg.nodes[l.head].stmt {
                return s;
            }
        }
    }
    stmt
}

/// Count ops of each kind (diagnostics and tests).
pub fn op_histogram(ins: &Instrumentation) -> BTreeMap<&'static str, usize> {
    let mut h: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut bump = |op: &RtOp| {
        let k = match op {
            RtOp::CheckRead { .. } => "check_read",
            RtOp::CheckWrite { .. } => "check_write",
            RtOp::ResetStatus { .. } => "reset_status",
            _ => "other",
        };
        *h.entry(k).or_insert(0) += 1;
    };
    for ops in ins.before.values().chain(ins.after.values()) {
        for op in ops {
            bump(op);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::frontend;

    fn planned(src: &str, optimize: bool) -> (openarc_minic::Program, Instrumentation) {
        let (p, s) = frontend(src).expect("frontend");
        let f = p.func("main").unwrap().clone();
        let ins = plan(&f, &s, optimize, true, &Default::default()).expect("plan");
        (p, ins)
    }

    #[test]
    fn no_aggregates_no_ops() {
        let (_, ins) = planned("int n;\nvoid main() { n = 1; }", true);
        assert_eq!(ins.op_count(), 0);
    }

    #[test]
    fn first_read_checked_once() {
        let src = "double a[8];\nint z;\nvoid main() { z = (int) a[0]; z = (int) a[1]; }";
        let (_, ins) = planned(src, true);
        let h = op_histogram(&ins);
        assert_eq!(h.get("check_read").copied().unwrap_or(0), 1);
    }

    #[test]
    fn naive_mode_checks_every_access() {
        let src = "double a[8];\nint z;\nvoid main() { z = (int) a[0]; z = (int) a[1]; }";
        let (_, ins) = planned(src, false);
        let h = op_histogram(&ins);
        assert_eq!(h.get("check_read").copied().unwrap_or(0), 2);
        // Optimized placement is strictly cheaper.
        let (_, opt) = planned(src, true);
        assert!(opt.op_count() < ins.op_count());
    }

    #[test]
    fn check_hoisted_out_of_kernel_free_loop() {
        let src = "double a[8];\nint z;\nvoid main() { int j; for (j = 0; j < 8; j++) { z = z + (int) a[j]; } }";
        let (p, ins) = planned(src, true);
        // The check must be attached to the for statement, not the body.
        let f = p.func("main").unwrap();
        let for_id = f.body.stmts[1].id;
        assert!(
            ins.before
                .get(&for_id)
                .map(|v| v
                    .iter()
                    .any(|op| matches!(op, RtOp::CheckRead { var, .. } if var == "a")))
                .unwrap_or(false),
            "{ins:?}"
        );
    }

    #[test]
    fn check_not_hoisted_past_kernel_in_loop() {
        let src = "double a[8];\nint z;\nvoid main() {\n int k; int j;\n for (k = 0; k < 3; k++) {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 8; j++) { a[j] = 1.0; }\n  z = (int) a[0];\n }\n}";
        let (p, ins) = planned(src, true);
        let f = p.func("main").unwrap();
        let outer_for = f.body.stmts[2].id;
        // The host read of `a` after the kernel must NOT hoist out of the
        // kernel-containing loop.
        let hoisted_read = ins
            .before
            .get(&outer_for)
            .map(|v| v.iter().any(|op| matches!(op, RtOp::CheckRead { .. })))
            .unwrap_or(false);
        assert!(!hoisted_read);
        // But some check_read must exist inside the loop.
        let h = op_histogram(&ins);
        assert!(h.get("check_read").copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn reset_status_after_last_write_when_gpu_dead() {
        // CPU writes `a`; GPU never touches it → GPU copy must-dead.
        let src = "double a[8];\ndouble b[8];\nvoid main() {\n int j;\n a[0] = 1.0;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { b[j] = 2.0; }\n}";
        let (_, ins) = planned(src, true);
        let resets: Vec<&RtOp> = ins
            .after
            .values()
            .flatten()
            .filter(
                |op| matches!(op, RtOp::ResetStatus { var, side: DevSide::Gpu, .. } if var == "a"),
            )
            .collect();
        assert!(!resets.is_empty(), "{ins:?}");
    }

    #[test]
    fn listing3_gpu_write_check_hoisted() {
        // Kernel in a loop, var `b` written by kernel, no CPU access or
        // transfer of `b` inside the loop, data region outside.
        let src = "double a[8];\ndouble b[8];\nvoid main() {\n int k; int j;\n #pragma acc data create(a, b)\n {\n  for (k = 0; k < 4; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 8; j++) { b[j] = a[j] + 1.0; }\n  }\n }\n}";
        let (p, ins) = planned(src, true);
        // Find the kernel statement id (the annotated for).
        let mut kernel_id = None;
        openarc_minic::ast::walk_stmts(&p.func("main").unwrap().body, &mut |s| {
            if s.pragmas.iter().any(|pr| pr.text.contains("kernels")) {
                kernel_id = Some(s.id);
            }
        });
        let kid = kernel_id.unwrap();
        let hoisted = ins
            .hoisted_kernel_writes
            .get(&kid)
            .cloned()
            .unwrap_or_default();
        assert!(hoisted.contains(&"b".to_string()), "{ins:?}");
    }

    #[test]
    fn listing3_no_hoist_when_cpu_touches_var_in_loop() {
        let src = "double b[8];\nvoid main() {\n int k; int j;\n #pragma acc data create(b)\n {\n  for (k = 0; k < 4; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 8; j++) { b[j] = 1.0; }\n   b[0] = 2.0;\n  }\n }\n}";
        let (p, ins) = planned(src, true);
        let mut kernel_id = None;
        openarc_minic::ast::walk_stmts(&p.func("main").unwrap().body, &mut |s| {
            if s.pragmas.iter().any(|pr| pr.text.contains("kernels")) {
                kernel_id = Some(s.id);
            }
        });
        let hoisted = ins
            .hoisted_kernel_writes
            .get(&kernel_id.unwrap())
            .cloned()
            .unwrap_or_default();
        assert!(hoisted.is_empty(), "{ins:?}");
    }
}
