//! The interactive memory-transfer optimization loop (§III-B, Figure 2,
//! Table 3).
//!
//! Models the paper's programmer-compiler-runtime iteration:
//!
//! 1. run the instrumented program (offline profiling);
//! 2. the tool reports redundant / may-redundant / missing / incorrect
//!    transfers;
//! 3. the *programmer model* applies the suggestions as edits
//!    ([`crate::exec::TransferOverlay`]): in-loop redundant transfers are
//!    deferred past the loop (the Listing 4 action), others are removed;
//! 4. the next run verifies: new missing/incorrect findings — or a wrong
//!    program output, which kernel verification would expose — mean the
//!    previous suggestion was false (the aliasing cases of Table 3); the
//!    edit is reverted and pinned, and the extra round is counted as an
//!    **incorrect iteration**;
//! 5. repeat until no further suggestion survives.

use crate::exec::{ExecOptions, RunResult, TransferKey, TransferOverlay};
use crate::pipeline::Session;
use crate::translate::Translated;
use openarc_runtime::{Direction, IssueKind};
use std::collections::BTreeSet;

/// What program outputs must match the sequential reference.
#[derive(Debug, Clone, Default)]
pub struct OutputSpec {
    /// Global arrays compared element-wise.
    pub arrays: Vec<String>,
    /// Global scalars compared.
    pub scalars: Vec<String>,
    /// Comparison tolerance (absolute + relative).
    pub tol: f64,
}

impl OutputSpec {
    /// Spec over the given arrays with a default tolerance.
    pub fn arrays(names: &[&str]) -> OutputSpec {
        OutputSpec {
            arrays: names.iter().map(|s| s.to_string()).collect(),
            scalars: Vec::new(),
            tol: 1e-6,
        }
    }

    /// Add scalars to the spec.
    pub fn with_scalars(mut self, names: &[&str]) -> OutputSpec {
        self.scalars.extend(names.iter().map(|s| s.to_string()));
        self
    }
}

/// Reference outputs captured from a sequential run.
#[derive(Debug, Clone, Default)]
pub struct Reference {
    arrays: Vec<(String, Vec<f64>)>,
    scalars: Vec<(String, f64)>,
}

/// Capture reference outputs from a run result.
pub fn capture_outputs(tr: &Translated, r: &RunResult, spec: &OutputSpec) -> Reference {
    Reference {
        arrays: spec
            .arrays
            .iter()
            .filter_map(|n| r.global_array(tr, n).map(|v| (n.clone(), v)))
            .collect(),
        scalars: spec
            .scalars
            .iter()
            .filter_map(|n| r.global_scalar(tr, n).map(|v| (n.clone(), v.as_f64())))
            .collect(),
    }
}

/// Compare a run's outputs against the reference.
pub fn outputs_match(tr: &Translated, r: &RunResult, reference: &Reference, tol: f64) -> bool {
    for (name, expect) in &reference.arrays {
        let Some(got) = r.global_array(tr, name) else {
            return false;
        };
        if got.len() != expect.len() {
            return false;
        }
        for (g, e) in got.iter().zip(expect) {
            if (g - e).abs() > tol + tol * e.abs() {
                return false;
            }
        }
    }
    for (name, expect) in &reference.scalars {
        let Some(got) = r.global_scalar(tr, name) else {
            return false;
        };
        if (got.as_f64() - expect).abs() > tol + tol * expect.abs() {
            return false;
        }
    }
    true
}

/// One round of the interactive loop.
#[derive(Debug, Clone)]
pub struct IterationLog {
    /// 1-based iteration number.
    pub index: usize,
    /// Suggestions applied this round (human-readable).
    pub applied: Vec<String>,
    /// Edits reverted this round because the previous round broke the
    /// program (false suggestions).
    pub reverted: Vec<String>,
    /// Missing/incorrect findings observed this round.
    pub errors: usize,
    /// Whether the program's outputs matched the reference this round.
    pub output_ok: bool,
}

/// Outcome of the interactive optimization (one Table 3 row).
#[derive(Debug)]
pub struct InteractiveOutcome {
    /// Total verification iterations run.
    pub iterations: usize,
    /// Iterations spent on false suggestions (reverts).
    pub incorrect_iterations: usize,
    /// Final edits.
    pub overlay: TransferOverlay,
    /// Final-run transfer statistics.
    pub final_stats: openarc_runtime::TransferStats,
    /// Whether the loop converged with correct outputs.
    pub converged: bool,
    /// Per-iteration log.
    pub log: Vec<IterationLog>,
}

/// Drive the interactive loop to a fixpoint.
///
/// ```
/// use openarc_core::exec::ExecOptions;
/// use openarc_core::interactive::{optimize_transfers, OutputSpec};
/// use openarc_core::translate::TranslateOptions;
/// // A per-iteration copyout that only matters after the loop (Listing 4).
/// let src = "double a[16];\ndouble b[16];\ndouble out;\nvoid main() {\n int k; int j;\n for (j = 0; j < 16; j++) { a[j] = 1.0; }\n #pragma acc data copyin(a) create(b)\n {\n  for (k = 0; k < 3; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 16; j++) { b[j] = a[j] + (double) k; }\n   #pragma acc update host(b)\n  }\n }\n out = b[0];\n}";
/// let (program, sema) = openarc_minic::frontend(src).unwrap();
/// let topts = TranslateOptions { instrument: true, ..Default::default() };
/// let out = optimize_transfers(
///     &program, &sema, &topts,
///     &OutputSpec::arrays(&["b"]).with_scalars(&["out"]),
///     &ExecOptions { race_detect: false, ..Default::default() },
///     10,
/// ).unwrap();
/// assert!(out.converged);
/// assert!(!out.overlay.defer.is_empty()); // the copyout moved past the loop
/// ```
///
/// Each round re-translates the program with the user's accumulated edits
/// visible to the instrumentation pass — the paper's workflow recompiles
/// the modified directive program on every iteration, which is what lets
/// a removal in round N expose a hoisting (and therefore a new suggestion)
/// in round N+1.
pub fn optimize_transfers(
    program: &openarc_minic::Program,
    sema: &openarc_minic::Sema,
    topts: &crate::translate::TranslateOptions,
    spec: &OutputSpec,
    base_opts: &ExecOptions,
    max_iterations: usize,
) -> Result<InteractiveOutcome, String> {
    optimize_transfers_in_session(
        &Session::builder().build(),
        program,
        sema,
        topts,
        spec,
        base_opts,
        max_iterations,
    )
}

/// [`optimize_transfers`] against a shared pipeline [`Session`]: every
/// round's recompilation and run goes through the session's staged caches,
/// so rounds that revisit an earlier edit set (reverts) — and repeats of
/// the whole loop inside a batch driver — are served from the cache. Both
/// the translate-options fingerprint (which covers `ignored_update_stmts`)
/// and the exec-options fingerprint (which covers the overlay) distinguish
/// rounds, so a hit is always semantically identical to a fresh
/// compile-and-run.
pub fn optimize_transfers_in_session(
    session: &Session,
    program: &openarc_minic::Program,
    sema: &openarc_minic::Sema,
    topts: &crate::translate::TranslateOptions,
    spec: &OutputSpec,
    base_opts: &ExecOptions,
    max_iterations: usize,
) -> Result<InteractiveOutcome, String> {
    let mut topts = topts.clone();
    topts.instrument = true;
    let fe = session.frontend_program(program.clone(), sema.clone());
    let tr0a = session
        .translate(&fe, &topts)
        .map_err(|e| format!("translate: {e:?}"))?;
    let tr0 = &tr0a.tr;
    // Reference outputs from a sequential run.
    let seq = session
        .execute(
            &tr0a,
            &ExecOptions {
                mode: crate::exec::ExecMode::CpuOnly,
                race_detect: false,
                ..base_opts.clone()
            },
        )
        .map_err(|e| e.to_string())?;
    let reference = capture_outputs(tr0, &seq, spec);

    let mut overlay = base_opts.overlay.clone();
    let mut pinned: BTreeSet<TransferKey> = BTreeSet::new();
    let mut last_applied: Vec<(TransferKey, IssueKind)> = Vec::new();
    let mut log: Vec<IterationLog> = Vec::new();
    let mut incorrect = 0usize;
    let mut converged = false;
    let mut final_stats = openarc_runtime::TransferStats::default();

    for index in 1..=max_iterations {
        // Recompile with the user's removals visible to instrumentation —
        // through the session, so a revisited edit set is a cache hit.
        let mut round_topts = topts.clone();
        round_topts.ignored_update_stmts = fully_removed_updates(tr0, &overlay);
        let tra = session
            .translate(&fe, &round_topts)
            .map_err(|e| format!("translate: {e:?}"))?;
        let tr = &tra.tr;
        let opts = ExecOptions {
            mode: crate::exec::ExecMode::Normal,
            check_transfers: true,
            overlay: overlay.clone(),
            ..base_opts.clone()
        };
        let run = session.execute(&tra, &opts);
        let mut entry = IterationLog {
            index,
            applied: Vec::new(),
            reverted: Vec::new(),
            errors: 0,
            output_ok: false,
        };
        // Ground truth is the program output: missing/incorrect reports are
        // logged, but with aliased pointers they can themselves be false
        // (the user dismisses them after kernel verification comes back
        // clean — the schemes "complement each other", §IV-C).
        let broken = match &run {
            Err(_) => true,
            Ok(r) => {
                entry.errors = r.machine.report.count(IssueKind::Missing)
                    + r.machine.report.count(IssueKind::Incorrect);
                entry.output_ok = outputs_match(tr, r, &reference, spec.tol.max(1e-12));
                !entry.output_ok
            }
        };
        if broken {
            if last_applied.is_empty() {
                // The starting program itself is broken — report and stop.
                log.push(entry);
                return Ok(InteractiveOutcome {
                    iterations: index,
                    incorrect_iterations: incorrect,
                    overlay,
                    final_stats,
                    converged: false,
                    log,
                });
            }
            // The previous round's suggestions were false. The programmer
            // examines ONE suspect edit per round (the paper's users
            // needed one extra verification step per false suggestion,
            // e.g. LUD's three incorrect iterations): `may-*` warnings are
            // suspected first — that's the class the paper says needs user
            // verification — then the most recent certain edit.
            incorrect += 1;
            // The new missing/incorrect messages name the corrupted
            // variable — the user inspects the edit touching it first.
            let error_vars: BTreeSet<String> = match &run {
                Ok(r) => r
                    .machine
                    .report
                    .issues
                    .iter()
                    .filter(|i| matches!(i.kind, IssueKind::Missing | IssueKind::Incorrect))
                    .map(|i| i.var.clone())
                    .collect(),
                Err(_) => BTreeSet::new(),
            };
            let idx = last_applied
                .iter()
                .position(|(k, kind)| {
                    error_vars.contains(&k.var) && matches!(kind, IssueKind::MayRedundant)
                })
                .or_else(|| {
                    last_applied
                        .iter()
                        .position(|(k, _)| error_vars.contains(&k.var))
                })
                .or_else(|| {
                    last_applied
                        .iter()
                        .position(|(_, k)| matches!(k, IssueKind::MayRedundant))
                })
                .unwrap_or(0);
            let (k, _) = last_applied.remove(idx);
            overlay.disable.remove(&k);
            overlay.defer.remove(&k);
            entry.reverted.push(format!("{}:{}", k.site, k.var));
            pinned.insert(k);
            log.push(entry);
            continue;
        }
        let r = run.expect("checked above");
        final_stats = r.machine.stats;

        // Gather surviving suggestions.
        let mut new_edits: Vec<(TransferKey, IssueKind)> = Vec::new();
        for (kind, var, site) in r.machine.report.distinct_suggestions() {
            if !matches!(kind, IssueKind::Redundant | IssueKind::MayRedundant) {
                continue;
            }
            // Direction comes from the first matching issue.
            let dir = r
                .machine
                .report
                .issues
                .iter()
                .find(|i| i.var == var && i.site == site && i.kind == kind)
                .and_then(|i| i.direction);
            let Some(dir) = dir else { continue };
            let key = TransferKey {
                site: site.clone(),
                var: var.clone(),
                to_device: dir == Direction::ToDevice,
            };
            if pinned.contains(&key)
                || overlay.disable.contains(&key)
                || overlay.defer.contains(&key)
            {
                continue;
            }
            // In-loop transfers (issues carrying loop context) are deferred
            // past the loop; others are removed outright.
            let in_loop = r
                .machine
                .report
                .issues
                .iter()
                .any(|i| i.var == var && i.site == site && !i.loop_context.is_empty());
            // Application knowledge (§III-C): the programmer knows which
            // variables are program outputs and never deletes their final
            // device→host transfer (a deferral keeps the final value, so
            // in-loop output copyouts may still be deferred).
            let is_output = spec.arrays.contains(&var) || spec.scalars.contains(&var);
            if is_output && dir == Direction::ToHost && !in_loop {
                continue;
            }
            if in_loop && dir == Direction::ToHost {
                overlay.defer.insert(key.clone());
                entry
                    .applied
                    .push(format!("defer {}:{} past loop", site, var));
            } else {
                overlay.disable.insert(key.clone());
                entry.applied.push(format!("remove {}:{}", site, var));
            }
            new_edits.push((key, kind));
        }
        let done = new_edits.is_empty();
        last_applied = new_edits;
        log.push(entry);
        if done {
            converged = true;
            return Ok(InteractiveOutcome {
                iterations: index,
                incorrect_iterations: incorrect,
                overlay,
                final_stats,
                converged,
                log,
            });
        }
    }
    Ok(InteractiveOutcome {
        iterations: max_iterations,
        incorrect_iterations: incorrect,
        overlay,
        final_stats,
        converged,
        log,
    })
}

/// Update statements every one of whose transfers the user removed.
fn fully_removed_updates(
    tr: &Translated,
    overlay: &TransferOverlay,
) -> std::collections::BTreeSet<openarc_minic::NodeId> {
    let mut out = std::collections::BTreeSet::new();
    for (site, stmt) in &tr.update_sites {
        // Find the op for this site to learn its variables/directions.
        let op = tr.ops.iter().find_map(|o| match o {
            crate::ir::RtOp::Update {
                to_host,
                to_device,
                site: s2,
                ..
            } if s2 == site => Some((to_host.clone(), to_device.clone())),
            _ => None,
        });
        let Some((to_host, to_device)) = op else {
            continue;
        };
        let all_removed = to_host.iter().all(|v| {
            overlay.disable.contains(&TransferKey {
                site: site.clone(),
                var: v.clone(),
                to_device: false,
            })
        }) && to_device.iter().all(|v| {
            overlay.disable.contains(&TransferKey {
                site: site.clone(),
                var: v.clone(),
                to_device: true,
            })
        });
        if all_removed && (!to_host.is_empty() || !to_device.is_empty()) {
            out.insert(*stmt);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::TranslateOptions;
    use openarc_minic::frontend;

    fn optimize_src(src: &str, spec: &OutputSpec) -> InteractiveOutcome {
        let (p, s) = frontend(src).expect("frontend");
        let topts = TranslateOptions {
            instrument: true,
            ..Default::default()
        };
        optimize_transfers(&p, &s, &topts, spec, &ExecOptions::default(), 10).unwrap()
    }

    #[test]
    fn already_optimal_program_converges_in_one_round() {
        let src = "double q[32];\ndouble w[32];\nvoid main() {\n int j;\n for (j = 0; j < 32; j++) { w[j] = 1.0; }\n #pragma acc data copyin(w) copyout(q)\n {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 32; j++) { q[j] = w[j] + 1.0; }\n }\n}";
        let out = optimize_src(src, &OutputSpec::arrays(&["q"]));
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.incorrect_iterations, 0);
        assert!(out.overlay.is_empty());
    }

    #[test]
    fn redundant_in_loop_update_gets_deferred() {
        // Conservative per-iteration copyout of q; only the final value is
        // read — the JACOBI/Listing 4 pattern.
        let src = "double q[32];\ndouble w[32];\ndouble s;\nvoid main() {\n int k; int j;\n for (j = 0; j < 32; j++) { w[j] = 1.0; }\n #pragma acc data copyin(w) create(q)\n {\n  for (k = 0; k < 4; k++) {\n   #pragma acc kernels loop gang\n   for (j = 0; j < 32; j++) { q[j] = w[j] + (double) k; }\n   #pragma acc update host(q)\n  }\n }\n s = q[0];\n}";
        let out = optimize_src(src, &OutputSpec::arrays(&["q"]).with_scalars(&["s"]));
        assert!(out.converged, "{:?}", out.log);
        assert_eq!(out.incorrect_iterations, 0, "{:?}", out.log);
        assert!(
            !out.overlay.defer.is_empty(),
            "the in-loop update should be deferred: {:?}",
            out.overlay
        );
        // 4 transfers reduced to 1 (deferred) + initial copyin.
        assert!(out.final_stats.d2h_count <= 2, "{:?}", out.final_stats);
        assert!(
            out.iterations >= 2 && out.iterations <= 4,
            "{}",
            out.iterations
        );
    }

    #[test]
    fn redundant_device_update_removed() {
        // w never changes on the host after region entry, yet it is
        // re-uploaded every iteration.
        let src = "double q[32];\ndouble w[32];\nvoid main() {\n int k; int j;\n for (j = 0; j < 32; j++) { w[j] = 2.0; }\n #pragma acc data copyin(w) copyout(q)\n {\n  for (k = 0; k < 3; k++) {\n   #pragma acc update device(w)\n   #pragma acc kernels loop gang\n   for (j = 0; j < 32; j++) { q[j] = w[j]; }\n  }\n }\n}";
        let out = optimize_src(src, &OutputSpec::arrays(&["q"]));
        assert!(out.converged, "{:?}", out.log);
        assert!(
            !out.overlay.disable.is_empty() || !out.overlay.defer.is_empty(),
            "{:?}",
            out.overlay
        );
        assert_eq!(out.final_stats.h2d_count, 1, "{:?}", out.final_stats);
    }

    #[test]
    fn output_spec_helpers() {
        let s = OutputSpec::arrays(&["a", "b"]).with_scalars(&["x"]);
        assert_eq!(s.arrays.len(), 2);
        assert_eq!(s.scalars, vec!["x"]);
    }
}
