//! The OpenACC present table: which host allocations currently have a
//! device mirror, with structured-region reference counting.

use openarc_vm::{Handle, VmError};
use std::collections::HashMap;

/// One host→device mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Device-side buffer.
    pub dev: Handle,
    /// Structured data regions currently holding this mapping alive.
    pub refcount: u32,
    /// Source variable label (for reports).
    pub label: String,
}

/// Present table keyed by host buffer handle.
#[derive(Debug, Clone, Default)]
pub struct PresentTable {
    map: HashMap<Handle, Mapping>,
}

impl PresentTable {
    /// Empty table.
    pub fn new() -> PresentTable {
        PresentTable::default()
    }

    /// Is `host` present on the device?
    pub fn contains(&self, host: Handle) -> bool {
        self.map.contains_key(&host)
    }

    /// Device handle for `host`, if present.
    pub fn device_of(&self, host: Handle) -> Option<Handle> {
        self.map.get(&host).map(|m| m.dev)
    }

    /// Host handle for a device buffer (reverse lookup).
    pub fn host_of(&self, dev: Handle) -> Option<Handle> {
        self.map.iter().find(|(_, m)| m.dev == dev).map(|(h, _)| *h)
    }

    /// Record a new mapping with refcount 1. Errors if already present
    /// (callers must check [`PresentTable::contains`] first and bump).
    pub fn insert(
        &mut self,
        host: Handle,
        dev: Handle,
        label: impl Into<String>,
    ) -> Result<(), VmError> {
        if self.map.contains_key(&host) {
            return Err(VmError::Internal(format!(
                "{host} already present on device"
            )));
        }
        self.map.insert(
            host,
            Mapping {
                dev,
                refcount: 1,
                label: label.into(),
            },
        );
        Ok(())
    }

    /// Bump the refcount of an existing mapping (nested `present_or_*`).
    pub fn retain(&mut self, host: Handle) -> Result<(), VmError> {
        match self.map.get_mut(&host) {
            Some(m) => {
                m.refcount += 1;
                Ok(())
            }
            None => Err(VmError::Internal(format!("{host} not present on device"))),
        }
    }

    /// Drop one reference. Returns the device handle to free when the
    /// refcount reaches zero.
    pub fn release(&mut self, host: Handle) -> Result<Option<Handle>, VmError> {
        match self.map.get_mut(&host) {
            Some(m) => {
                m.refcount -= 1;
                if m.refcount == 0 {
                    let dev = m.dev;
                    self.map.remove(&host);
                    Ok(Some(dev))
                } else {
                    Ok(None)
                }
            }
            None => Err(VmError::Internal(format!("{host} not present on device"))),
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over (host, mapping).
    pub fn iter(&self) -> impl Iterator<Item = (&Handle, &Mapping)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Handle = Handle(1);
    const D: Handle = Handle(2);

    #[test]
    fn insert_lookup_release() {
        let mut t = PresentTable::new();
        assert!(!t.contains(H));
        t.insert(H, D, "a").unwrap();
        assert!(t.contains(H));
        assert_eq!(t.device_of(H), Some(D));
        assert_eq!(t.host_of(D), Some(H));
        assert_eq!(t.release(H).unwrap(), Some(D));
        assert!(t.is_empty());
    }

    #[test]
    fn refcounting_nested_regions() {
        let mut t = PresentTable::new();
        t.insert(H, D, "a").unwrap();
        t.retain(H).unwrap();
        assert_eq!(t.release(H).unwrap(), None);
        assert!(t.contains(H));
        assert_eq!(t.release(H).unwrap(), Some(D));
        assert!(!t.contains(H));
    }

    #[test]
    fn double_insert_rejected() {
        let mut t = PresentTable::new();
        t.insert(H, D, "a").unwrap();
        assert!(t.insert(H, Handle(9), "a").is_err());
    }

    #[test]
    fn release_absent_rejected() {
        let mut t = PresentTable::new();
        assert!(t.release(H).is_err());
        assert!(t.retain(H).is_err());
    }
}
