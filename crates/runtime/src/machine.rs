//! The composed simulated machine: host memory + device + clock + present
//! table + coherence tracker + report engine.
//!
//! `openarc-core`'s executor drives a [`Machine`] while running translated
//! host bytecode; every directive-lowered runtime operation lands here.

use crate::coherence::{Coherence, DevSide, ReadDiag, St};
use crate::present::PresentTable;
use crate::report::{Direction, Issue, IssueKind, Report};
use openarc_gpusim::{CostModel, Device, KernelOutcome, SimClock, TimeCategory};
use openarc_trace::{EventKind, Journal, JournalPart, TraceEvent, Track};
use openarc_vm::interp::BasicEnv;
use openarc_vm::{Handle, VmError};

/// Transfer and allocation statistics (Figure 1's "total transferred data
/// size" series).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Number of host→device transfers.
    pub h2d_count: u64,
    /// Number of device→host transfers.
    pub d2h_count: u64,
    /// Device allocations.
    pub dev_allocs: u64,
    /// Device frees.
    pub dev_frees: u64,
}

impl TransferStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total number of transfers.
    pub fn total_count(&self) -> u64 {
        self.h2d_count + self.d2h_count
    }
}

/// The whole simulated platform.
#[derive(Debug, Default)]
pub struct Machine {
    /// Host memory and global slots.
    pub host: BasicEnv,
    /// The simulated GPU.
    pub device: Device,
    /// Simulated time.
    pub clock: SimClock,
    /// Machine cost parameters.
    pub cost: CostModel,
    /// Host↔device mapping table.
    pub present: PresentTable,
    /// Coherence tracker (§III-B).
    pub coherence: Coherence,
    /// Findings of the current profiling run.
    pub report: Report,
    /// Transfer statistics.
    pub stats: TransferStats,
    /// Enclosing-loop context maintained by the executor
    /// (`(label, current index)`, outermost first).
    pub loop_context: Vec<(String, i64)>,
}

impl Machine {
    /// Build a machine around a prepared host environment.
    pub fn new(host: BasicEnv, check_transfers: bool) -> Machine {
        Machine {
            host,
            device: Device::new(),
            clock: SimClock::new(),
            cost: CostModel::default(),
            present: PresentTable::new(),
            coherence: Coherence::new(check_transfers),
            report: Report::default(),
            stats: TransferStats::default(),
            loop_context: Vec::new(),
        }
    }

    /// Attach an event journal. The machine writes through a buffered
    /// [`JournalPart`] living on the clock, so clock slices and the
    /// machine's semantic events interleave on one timeline without taking
    /// the shared journal's lock per event. Call
    /// [`Machine::flush_journal`] (or drop the machine) to publish.
    pub fn set_journal(&mut self, journal: Journal) {
        self.clock.journal = JournalPart::new(journal);
    }

    /// The shared journal behind the machine's buffered writer (disabled
    /// by default). Flush first if buffered events must be visible.
    pub fn journal(&self) -> &Journal {
        self.clock.journal.shared()
    }

    /// Publish buffered events into the shared journal (one lock
    /// acquisition for the whole batch).
    pub fn flush_journal(&mut self) {
        self.clock.journal.flush();
    }

    /// Emit an instant event at the current host time.
    fn emit(&mut self, kind: EventKind) {
        self.clock.journal.emit(TraceEvent {
            ts_us: self.clock.now(),
            dur_us: 0.0,
            track: Track::Host,
            kind,
        });
    }

    fn var_label(&self, h: Handle) -> String {
        self.host
            .mem
            .get(h)
            .map(|b| b.label.clone())
            .unwrap_or_else(|_| format!("{h}"))
    }

    fn st_name(st: St) -> &'static str {
        match st {
            St::NotStale => "notstale",
            St::MayStale => "maystale",
            St::Stale => "stale",
        }
    }

    fn coh_snapshot(&self, h: Handle) -> Option<(St, St)> {
        self.coherence.state(h).map(|v| (v.cpu, v.gpu))
    }

    /// Journal the coherence transitions between `before` (a
    /// [`Machine::coh_snapshot`] taken before the state change) and now.
    fn emit_coherence_diff(&mut self, h: Handle, before: Option<(St, St)>, cause: &'static str) {
        if !self.clock.journal.is_enabled() {
            return;
        }
        let (Some(before), Some(after)) = (before, self.coh_snapshot(h)) else {
            return;
        };
        let var = self.var_label(h);
        for (side, b, a) in [("cpu", before.0, after.0), ("gpu", before.1, after.1)] {
            if b != a {
                self.emit(EventKind::Coherence {
                    var: var.clone(),
                    side,
                    from: Self::st_name(b),
                    to: Self::st_name(a),
                    cause,
                });
            }
        }
    }

    /// Record a finding in the report and, when tracing, in the journal.
    fn push_issue(&mut self, issue: Issue) {
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::Finding {
                severity: issue.kind.severity(),
                kind: format!("{:?}", issue.kind),
                var: issue.var.clone(),
                site: issue.site.clone(),
                message: issue.to_string(),
            });
        }
        self.report.push(issue);
    }

    /// Ensure `h` is tracked by the coherence machinery (variables of
    /// interest are tracked from their first observed access, so host
    /// initialization writes before the first mapping are not lost).
    fn track_handle(&mut self, h: Handle) {
        if let Ok(b) = self.host.mem.get(h) {
            let label = b.label.clone();
            self.coherence.track(h, label);
        }
    }

    fn issue(&mut self, kind: IssueKind, h: Handle, site: &str, dir: Option<Direction>) {
        let var = self
            .host
            .mem
            .get(h)
            .map(|b| b.label.clone())
            .unwrap_or_else(|_| format!("{h}"));
        self.push_issue(Issue {
            kind,
            var,
            site: site.to_string(),
            direction: dir,
            loop_context: self.loop_context.clone(),
        });
    }

    /// Ensure `host_h` is mapped on the device; allocates (and charges the
    /// clock) when absent. Returns (device handle, newly_mapped).
    pub fn map_to_device(&mut self, host_h: Handle) -> Result<(Handle, bool), VmError> {
        if let Some(dev) = self.present.device_of(host_h) {
            self.present.retain(host_h)?;
            if self.clock.journal.is_enabled() {
                self.emit(EventKind::PresentHit {
                    var: self.var_label(host_h),
                });
            }
            return Ok((dev, false));
        }
        let (elem, len, label, bytes) = {
            let b = self.host.mem.get(host_h)?;
            (b.elem, b.len(), b.label.clone(), b.size_bytes())
        };
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::PresentMiss { var: label.clone() });
        }
        let dev = self.device.mem.alloc(elem, len, label.clone());
        self.present.insert(host_h, dev, label.clone())?;
        self.coherence.track(host_h, label.clone());
        self.clock
            .advance(TimeCategory::GpuMemAlloc, self.cost.alloc_us);
        self.stats.dev_allocs += 1;
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::DevAlloc { var: label, bytes });
        }
        Ok((dev, true))
    }

    /// Release one region reference; frees the device mirror at zero.
    pub fn unmap_from_device(&mut self, host_h: Handle) -> Result<(), VmError> {
        if let Some(dev) = self.present.release(host_h)? {
            self.device.mem.free(dev)?;
            self.clock
                .advance(TimeCategory::GpuMemFree, self.cost.free_us);
            self.stats.dev_frees += 1;
            if self.clock.journal.is_enabled() {
                self.emit(EventKind::DevFree {
                    var: self.var_label(host_h),
                });
            }
            // Deallocation makes the device copy stale (paper §III-B).
            let before = self.coh_snapshot(host_h);
            self.coherence.reset_status(host_h, DevSide::Gpu, St::Stale);
            self.emit_coherence_diff(host_h, before, "dealloc");
        }
        Ok(())
    }

    /// Copy host → device. `site` names the transfer for reports;
    /// `queue` makes it asynchronous.
    pub fn copy_to_device(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        self.copy_to_device_named(host_h, site, queue, None)
    }

    /// [`Machine::copy_to_device`] with an explicit variable name for
    /// reports (aliased pointers share one buffer label; suggestions must
    /// name the variable the directive used).
    pub fn copy_to_device_named(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        let dev = self
            .present
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyin")))?;
        let (host_mem, dev_mem) = (&self.host.mem, &mut self.device.mem);
        dev_mem.get_mut(dev)?.copy_from(host_mem.get(host_h)?)?;
        self.account_to_device(host_h, site, queue, name)
    }

    /// The accounting half of [`Machine::copy_to_device_named`] — clock
    /// charge, transfer stats, journal events, coherence transition — with
    /// no bytes moved. The verified-launch pipeline performs the raw byte
    /// copies on a worker thread (they have no observable effect on the
    /// simulated machine) and then replays the accounting here on the main
    /// thread in a fixed order, so the pair is indistinguishable from a
    /// plain [`Machine::copy_to_device`] call.
    pub fn account_to_device(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.track_handle(host_h);
        self.present
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyin")))?;
        let bytes = self.host.mem.get(host_h)?.size_bytes();
        let (ts, dt, track) = self.charge_transfer(bytes, queue);
        self.stats.h2d_bytes += bytes;
        self.stats.h2d_count += 1;
        self.emit_transfer(host_h, name, site, ts, dt, track, bytes, true);
        let before = self.coh_snapshot(host_h);
        let diag = self.coherence.on_transfer(host_h, DevSide::Gpu);
        self.emit_coherence_diff(host_h, before, "transfer");
        self.transfer_issues(diag, host_h, site, Direction::ToDevice, name);
        Ok(())
    }

    /// Copy device → host.
    pub fn copy_to_host(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        self.copy_to_host_named(host_h, site, queue, None)
    }

    /// [`Machine::copy_to_host`] with an explicit report variable name.
    pub fn copy_to_host_named(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.track_handle(host_h);
        let dev = self
            .present
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyout")))?;
        let (dev_mem, host_mem) = (&self.device.mem, &mut self.host.mem);
        let src = dev_mem.get(dev)?;
        host_mem.get_mut(host_h)?.copy_from(src)?;
        let bytes = src.size_bytes();
        let (ts, dt, track) = self.charge_transfer(bytes, queue);
        self.stats.d2h_bytes += bytes;
        self.stats.d2h_count += 1;
        self.emit_transfer(host_h, name, site, ts, dt, track, bytes, false);
        let before = self.coh_snapshot(host_h);
        let diag = self.coherence.on_transfer(host_h, DevSide::Cpu);
        self.emit_coherence_diff(host_h, before, "transfer");
        self.transfer_issues(diag, host_h, site, Direction::ToHost, name);
        Ok(())
    }

    /// Charge a transfer to the clock. Returns the span's simulated start
    /// time, duration and track for journaling.
    fn charge_transfer(&mut self, bytes: u64, queue: Option<i64>) -> (f64, f64, Track) {
        let dt = self.cost.transfer_time(bytes);
        match queue {
            Some(q) => (self.clock.enqueue_async(q, dt), dt, Track::Queue(q)),
            None => {
                let ts = self.clock.now();
                self.clock.advance(TimeCategory::MemTransfer, dt);
                (ts, dt, Track::Host)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_transfer(
        &mut self,
        host_h: Handle,
        name: Option<&str>,
        site: &str,
        ts: f64,
        dt: f64,
        track: Track,
        bytes: u64,
        to_device: bool,
    ) {
        if !self.clock.journal.is_enabled() {
            return;
        }
        let var = name
            .map(str::to_string)
            .unwrap_or_else(|| self.var_label(host_h));
        self.clock.journal.emit(TraceEvent {
            ts_us: ts,
            dur_us: dt,
            track,
            kind: EventKind::Transfer {
                var,
                site: site.to_string(),
                bytes,
                to_device,
            },
        });
    }

    fn transfer_issues(
        &mut self,
        diag: crate::coherence::XferDiag,
        h: Handle,
        site: &str,
        dir: Direction,
        name: Option<&str>,
    ) {
        let push = |m: &mut Machine, kind: IssueKind| match name {
            Some(n) => {
                let issue = Issue {
                    kind,
                    var: n.to_string(),
                    site: site.to_string(),
                    direction: Some(dir),
                    loop_context: m.loop_context.clone(),
                };
                m.push_issue(issue);
            }
            None => m.issue(kind, h, site, Some(dir)),
        };
        match diag.incorrect {
            Some(true) => push(self, IssueKind::Incorrect),
            Some(false) => push(self, IssueKind::MayIncorrect),
            None => {}
        }
        match diag.redundant {
            Some(true) => push(self, IssueKind::Redundant),
            Some(false) => push(self, IssueKind::MayRedundant),
            None => {}
        }
    }

    /// `check_read` runtime call.
    pub fn check_read(&mut self, h: Handle, side: DevSide, site: &str) {
        self.track_handle(h);
        match self.coherence.check_read(h, side) {
            ReadDiag::Ok => {}
            ReadDiag::Missing => self.issue(IssueKind::Missing, h, site, None),
            ReadDiag::MayMissing => self.issue(IssueKind::MayMissing, h, site, None),
        }
    }

    /// `check_write` runtime call (also applies the write's state change).
    pub fn check_write(&mut self, h: Handle, side: DevSide, total: bool, site: &str) {
        self.track_handle(h);
        let before = self.coh_snapshot(h);
        let diag = self.coherence.on_write(h, side, total);
        self.emit_coherence_diff(h, before, "write");
        match diag {
            ReadDiag::Ok => {}
            ReadDiag::Missing => self.issue(IssueKind::Missing, h, site, None),
            ReadDiag::MayMissing => self.issue(IssueKind::MayMissing, h, site, None),
        }
    }

    /// Charge a kernel execution to the clock.
    pub fn charge_kernel(&mut self, outcome: &KernelOutcome, queue: Option<i64>) {
        self.charge_kernel_named("kernel", outcome, queue);
    }

    /// [`Machine::charge_kernel`] journaling the launch and execution span
    /// under the kernel's name.
    pub fn charge_kernel_named(&mut self, name: &str, outcome: &KernelOutcome, queue: Option<i64>) {
        let dt = self
            .cost
            .kernel_time(outcome.total_instrs, outcome.max_thread_instrs);
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::KernelLaunch {
                kernel: name.to_string(),
                n_threads: outcome.n_threads,
                queue,
            });
        }
        let (ts, track) = match queue {
            Some(q) => (self.clock.enqueue_async(q, dt), Track::Queue(q)),
            None => {
                let ts = self.clock.now();
                self.clock.advance(TimeCategory::KernelExec, dt);
                (ts, Track::Host)
            }
        };
        if self.clock.journal.is_enabled() {
            self.clock.journal.emit(TraceEvent {
                ts_us: ts,
                dur_us: dt,
                track,
                kind: EventKind::KernelComplete {
                    kernel: name.to_string(),
                },
            });
        }
    }

    /// Charge host CPU work (interpreted instructions).
    pub fn charge_cpu(&mut self, instrs: u64) {
        let dt = self.cost.cpu_time(instrs);
        self.clock.advance(TimeCategory::CpuTime, dt);
    }

    /// Resolve the device handle for a mapped host buffer.
    pub fn device_of(&self, host_h: Handle) -> Result<Handle, VmError> {
        self.present
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} is not present on the device")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::ScalarTy;
    use openarc_vm::Value;

    fn machine_with_buffer(len: usize) -> (Machine, Handle) {
        let mut host = BasicEnv {
            mem: openarc_vm::MemSpace::new(),
            ..Default::default()
        };
        let h = host.mem.alloc(ScalarTy::Double, len, "a");
        (Machine::new(host, true), h)
    }

    #[test]
    fn map_copy_roundtrip() {
        let (mut m, h) = machine_with_buffer(8);
        for i in 0..8 {
            m.host.mem.store(h, i, Value::F64(i as f64)).unwrap();
        }
        let (dev, new) = m.map_to_device(h).unwrap();
        assert!(new);
        m.copy_to_device(h, "enter", None).unwrap();
        assert_eq!(m.device.mem.load(dev, 3).unwrap(), Value::F64(3.0));
        // Mutate on device, copy back.
        m.device.mem.store(dev, 3, Value::F64(99.0)).unwrap();
        m.coherence.on_write(h, DevSide::Gpu, false);
        m.copy_to_host(h, "exit", None).unwrap();
        assert_eq!(m.host.mem.load(h, 3).unwrap(), Value::F64(99.0));
        assert_eq!(m.stats.h2d_count, 1);
        assert_eq!(m.stats.d2h_count, 1);
        assert_eq!(m.stats.total_bytes(), 2 * 64);
    }

    #[test]
    fn clock_charged_for_alloc_and_transfer() {
        let (mut m, h) = machine_with_buffer(1024);
        m.map_to_device(h).unwrap();
        m.copy_to_device(h, "enter", None).unwrap();
        assert!(m.clock.breakdown.get(TimeCategory::GpuMemAlloc) > 0.0);
        assert!(m.clock.breakdown.get(TimeCategory::MemTransfer) > 0.0);
    }

    #[test]
    fn nested_mapping_refcounts() {
        let (mut m, h) = machine_with_buffer(4);
        let (_, new1) = m.map_to_device(h).unwrap();
        let (_, new2) = m.map_to_device(h).unwrap();
        assert!(new1);
        assert!(!new2);
        m.unmap_from_device(h).unwrap();
        assert!(m.present.contains(h));
        m.unmap_from_device(h).unwrap();
        assert!(!m.present.contains(h));
        assert_eq!(m.stats.dev_allocs, 1);
        assert_eq!(m.stats.dev_frees, 1);
    }

    #[test]
    fn redundant_transfer_reported_with_context() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.loop_context.push(("k-loop".into(), 2));
        // Fresh on both sides → the second copyin is redundant.
        m.copy_to_device(h, "enter0", None).unwrap();
        m.copy_to_device(h, "enter0", None).unwrap();
        let msgs: Vec<String> = m.report.issues.iter().map(|i| i.to_string()).collect();
        assert!(
            msgs.iter()
                .any(|s| s.contains("redundant") && s.contains("k-loop index = 2")),
            "{msgs:?}"
        );
    }

    #[test]
    fn missing_transfer_reported_on_stale_read() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.check_write(h, DevSide::Gpu, false, "kernel0"); // host goes stale
        m.check_read(h, DevSide::Cpu, "host_read0");
        assert_eq!(m.report.count(IssueKind::Missing), 1);
    }

    #[test]
    fn async_transfer_charges_queue_not_host() {
        let (mut m, h) = machine_with_buffer(1 << 20);
        m.map_to_device(h).unwrap();
        let before = m.clock.breakdown.get(TimeCategory::MemTransfer);
        m.copy_to_device(h, "enter", Some(1)).unwrap();
        assert_eq!(m.clock.breakdown.get(TimeCategory::MemTransfer), before);
        m.clock.wait(1);
        assert!(m.clock.breakdown.get(TimeCategory::AsyncWait) > 0.0);
    }

    #[test]
    fn unmap_stales_device_copy() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.unmap_from_device(h).unwrap();
        // Re-map: coherence remembers the device copy is stale.
        m.map_to_device(h).unwrap();
        assert_eq!(m.coherence.state(h).unwrap().gpu, St::Stale);
    }

    #[test]
    fn journal_captures_semantic_events() {
        use openarc_trace::EventKind as Ev;
        let (mut m, h) = machine_with_buffer(8);
        m.set_journal(Journal::enabled());
        m.map_to_device(h).unwrap(); // miss + alloc
        m.map_to_device(h).unwrap(); // hit
        m.copy_to_device(h, "enter0", None).unwrap(); // redundant → finding
        m.check_write(h, DevSide::Gpu, false, "k0"); // cpu → stale
        m.copy_to_host(h, "exit0", None).unwrap();
        m.unmap_from_device(h).unwrap();
        m.unmap_from_device(h).unwrap(); // refcount 0 → free
        m.flush_journal();
        let events = m.journal().snapshot();
        let has = |pred: &dyn Fn(&Ev) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(k, Ev::PresentMiss { var } if var == "a")));
        assert!(has(&|k| matches!(k, Ev::PresentHit { var } if var == "a")));
        assert!(has(
            &|k| matches!(k, Ev::DevAlloc { var, bytes } if var == "a" && *bytes == 64)
        ));
        assert!(has(&|k| matches!(k, Ev::DevFree { .. })));
        assert!(has(&|k| matches!(
            k,
            Ev::Transfer {
                to_device: true,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            Ev::Transfer {
                to_device: false,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            Ev::Coherence {
                side: "cpu",
                to: "stale",
                cause: "write",
                ..
            }
        )));
        assert!(has(
            &|k| matches!(k, Ev::Finding { kind, .. } if kind == "Redundant")
        ));
        // Slices reconcile with the clock breakdown.
        for (cat, total) in openarc_trace::category_totals(&events) {
            let clock_cat = TimeCategory::ALL
                .iter()
                .copied()
                .find(|t| t.trace_category() == cat)
                .unwrap();
            assert_eq!(total, m.clock.breakdown.get(clock_cat), "{cat}");
        }
    }

    #[test]
    fn disabled_journal_changes_nothing() {
        let (mut m, h) = machine_with_buffer(8);
        m.map_to_device(h).unwrap();
        m.copy_to_device(h, "enter0", None).unwrap();
        assert!(!m.journal().is_enabled());
        assert!(m.journal().snapshot().is_empty());
        assert_eq!(m.report.issues.len(), 1, "report still works untraced");
    }

    #[test]
    fn kernel_charge_sync_vs_async() {
        let (mut m, _) = machine_with_buffer(1);
        let out = KernelOutcome {
            total_instrs: 1_000_000,
            max_thread_instrs: 1000,
            races: vec![],
            n_threads: 1000,
        };
        m.charge_kernel(&out, None);
        assert!(m.clock.breakdown.get(TimeCategory::KernelExec) > 0.0);
        let before = m.clock.now();
        m.charge_kernel(&out, Some(2));
        assert_eq!(m.clock.now(), before, "async kernel does not advance host");
    }
}
