//! The composed simulated machine: host memory + devices + clock + present
//! tables + coherence tracker + report engine.
//!
//! `openarc-core`'s executor drives a [`Machine`] while running translated
//! host bytecode; every directive-lowered runtime operation lands here.
//! The machine simulates `N ≥ 1` devices: each device has its own memory
//! space, race detector and present table, and every runtime operation has
//! an `_on(DeviceId)` form. The plain forms target the primary device, so
//! single-device callers read exactly as before the device dimension
//! existed.

use crate::coherence::{Coherence, DevSide, Loc, ReadDiag, St};
use crate::present::PresentTable;
use crate::report::{Direction, Issue, IssueKind, Report};
use openarc_gpusim::{CostModel, DeviceId, DeviceSet, KernelOutcome, SimClock, TimeCategory};
use openarc_trace::{EventKind, Journal, JournalPart, TraceEvent, Track};
use openarc_vm::interp::BasicEnv;
use openarc_vm::{Handle, VmError};

/// Coherence-journal side labels per device: the primary device keeps the
/// historical `"gpu"` label; device `d ≥ 1` is `"gpuD"`. A closed table
/// (rather than `format!`) because journal events carry `&'static str`
/// sides for the binary codec's interned label table — which also caps the
/// simulation at [`MAX_DEVICES`] devices.
const GPU_SIDES: [&str; 8] = [
    "gpu", "gpu1", "gpu2", "gpu3", "gpu4", "gpu5", "gpu6", "gpu7",
];

/// Largest simulated device count (the closed `gpuN` side-label table
/// caps it).
pub const MAX_DEVICES: usize = GPU_SIDES.len();

/// Transfer and allocation statistics (Figure 1's "total transferred data
/// size" series).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Bytes moved device→device.
    pub d2d_bytes: u64,
    /// Number of host→device transfers.
    pub h2d_count: u64,
    /// Number of device→host transfers.
    pub d2h_count: u64,
    /// Number of device→device transfers.
    pub d2d_count: u64,
    /// Device allocations.
    pub dev_allocs: u64,
    /// Device frees.
    pub dev_frees: u64,
}

impl TransferStats {
    /// Total bytes moved in any direction.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes + self.d2d_bytes
    }

    /// Total number of transfers.
    pub fn total_count(&self) -> u64 {
        self.h2d_count + self.d2h_count + self.d2d_count
    }
}

/// The whole simulated platform.
#[derive(Debug)]
pub struct Machine {
    /// Host memory and global slots.
    pub host: BasicEnv,
    /// The simulated GPUs.
    pub devices: DeviceSet,
    /// Simulated time.
    pub clock: SimClock,
    /// Machine cost parameters.
    pub cost: CostModel,
    /// Host↔device mapping tables, one per device, indexed by
    /// [`DeviceId`].
    pub presents: Vec<PresentTable>,
    /// Coherence tracker (§III-B).
    pub coherence: Coherence,
    /// Findings of the current profiling run.
    pub report: Report,
    /// Transfer statistics.
    pub stats: TransferStats,
    /// Enclosing-loop context maintained by the executor
    /// (`(label, current index)`, outermost first).
    pub loop_context: Vec<(String, i64)>,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new(BasicEnv::default(), false)
    }
}

impl Machine {
    /// Build a single-device machine around a prepared host environment.
    pub fn new(host: BasicEnv, check_transfers: bool) -> Machine {
        Machine::with_devices(host, check_transfers, 1)
    }

    /// Build a machine simulating `n_devices` GPUs (clamped to
    /// `1..=`[`MAX_DEVICES`]).
    pub fn with_devices(host: BasicEnv, check_transfers: bool, n_devices: usize) -> Machine {
        let n = n_devices.clamp(1, MAX_DEVICES);
        Machine {
            host,
            devices: DeviceSet::new(n),
            clock: SimClock::new(),
            cost: CostModel::default(),
            presents: vec![PresentTable::new(); n],
            coherence: Coherence::with_devices(check_transfers, n),
            report: Report::default(),
            stats: TransferStats::default(),
            loop_context: Vec::new(),
        }
    }

    /// The primary device's present table.
    pub fn present(&self) -> &PresentTable {
        &self.presents[0]
    }

    /// Device `d`'s present table.
    pub fn present_on(&self, d: DeviceId) -> &PresentTable {
        &self.presents[d.0 as usize]
    }

    /// The first device `h` is still mapped on, if any (scan in id order).
    pub fn present_anywhere(&self, h: Handle) -> Option<DeviceId> {
        (0..self.presents.len())
            .map(|i| DeviceId(i as u32))
            .find(|d| self.presents[d.0 as usize].contains(h))
    }

    /// Attach an event journal. The machine writes through a buffered
    /// [`JournalPart`] living on the clock, so clock slices and the
    /// machine's semantic events interleave on one timeline without taking
    /// the shared journal's lock per event. Call
    /// [`Machine::flush_journal`] (or drop the machine) to publish.
    pub fn set_journal(&mut self, journal: Journal) {
        self.clock.journal = JournalPart::new(journal);
    }

    /// The shared journal behind the machine's buffered writer (disabled
    /// by default). Flush first if buffered events must be visible.
    pub fn journal(&self) -> &Journal {
        self.clock.journal.shared()
    }

    /// Publish buffered events into the shared journal (one lock
    /// acquisition for the whole batch).
    pub fn flush_journal(&mut self) {
        self.clock.journal.flush();
    }

    /// Emit an instant event at the current host time.
    fn emit(&mut self, kind: EventKind) {
        self.clock.journal.emit(TraceEvent {
            ts_us: self.clock.now(),
            dur_us: 0.0,
            track: Track::Host,
            kind,
        });
    }

    fn var_label(&self, h: Handle) -> String {
        self.host
            .mem
            .get(h)
            .map(|b| b.label.clone())
            .unwrap_or_else(|_| format!("{h}"))
    }

    fn st_name(st: St) -> &'static str {
        match st {
            St::NotStale => "notstale",
            St::MayStale => "maystale",
            St::Stale => "stale",
        }
    }

    fn coh_snapshot(&self, h: Handle) -> Option<(St, Vec<St>)> {
        self.coherence.state(h).map(|v| (v.cpu, v.gpus().to_vec()))
    }

    /// Journal the coherence transitions between `before` (a
    /// [`Machine::coh_snapshot`] taken before the state change) and now.
    fn emit_coherence_diff(
        &mut self,
        h: Handle,
        before: Option<(St, Vec<St>)>,
        cause: &'static str,
    ) {
        if !self.clock.journal.is_enabled() {
            return;
        }
        let (Some(before), Some(after)) = (before, self.coh_snapshot(h)) else {
            return;
        };
        let var = self.var_label(h);
        let mut changed: Vec<(&'static str, St, St)> = Vec::new();
        if before.0 != after.0 {
            changed.push(("cpu", before.0, after.0));
        }
        for (i, (b, a)) in before.1.iter().zip(after.1.iter()).enumerate() {
            if b != a {
                changed.push((GPU_SIDES[i], *b, *a));
            }
        }
        for (side, b, a) in changed {
            self.emit(EventKind::Coherence {
                var: var.clone(),
                side,
                from: Self::st_name(b),
                to: Self::st_name(a),
                cause,
            });
        }
    }

    /// Record a finding in the report and, when tracing, in the journal.
    fn push_issue(&mut self, issue: Issue) {
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::Finding {
                severity: issue.kind.severity(),
                kind: format!("{:?}", issue.kind),
                var: issue.var.clone(),
                site: issue.site.clone(),
                message: issue.to_string(),
            });
        }
        self.report.push(issue);
    }

    /// Ensure `h` is tracked by the coherence machinery (variables of
    /// interest are tracked from their first observed access, so host
    /// initialization writes before the first mapping are not lost).
    fn track_handle(&mut self, h: Handle) {
        if let Ok(b) = self.host.mem.get(h) {
            let label = b.label.clone();
            self.coherence.track(h, label);
        }
    }

    fn issue(&mut self, kind: IssueKind, h: Handle, site: &str, dir: Option<Direction>) {
        let var = self
            .host
            .mem
            .get(h)
            .map(|b| b.label.clone())
            .unwrap_or_else(|_| format!("{h}"));
        self.push_issue(Issue {
            kind,
            var,
            site: site.to_string(),
            direction: dir,
            loop_context: self.loop_context.clone(),
        });
    }

    /// Ensure `host_h` is mapped on the primary device; allocates (and
    /// charges the clock) when absent. Returns (device handle,
    /// newly_mapped).
    pub fn map_to_device(&mut self, host_h: Handle) -> Result<(Handle, bool), VmError> {
        self.map_to_device_on(DeviceId::PRIMARY, host_h)
    }

    /// [`Machine::map_to_device`] targeting device `dev`.
    pub fn map_to_device_on(
        &mut self,
        dev: DeviceId,
        host_h: Handle,
    ) -> Result<(Handle, bool), VmError> {
        self.map_to_device_on_queue(dev, host_h, None)
    }

    /// [`Machine::map_to_device_on`] with the allocation charged as
    /// stream-ordered work on `queue` (the `cudaMallocAsync` model: the
    /// device runtime services the allocation on the stream, the host
    /// does not block). `None` keeps the synchronous host-blocking charge
    /// of the plain mapping path.
    pub fn map_to_device_on_queue(
        &mut self,
        dev: DeviceId,
        host_h: Handle,
        queue: Option<i64>,
    ) -> Result<(Handle, bool), VmError> {
        let di = dev.0 as usize;
        if let Some(dev_h) = self.presents[di].device_of(host_h) {
            self.presents[di].retain(host_h)?;
            if self.clock.journal.is_enabled() {
                self.emit(EventKind::PresentHit {
                    var: self.var_label(host_h),
                });
            }
            return Ok((dev_h, false));
        }
        let (elem, len, label, bytes) = {
            let b = self.host.mem.get(host_h)?;
            (b.elem, b.len(), b.label.clone(), b.size_bytes())
        };
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::PresentMiss { var: label.clone() });
        }
        let dev_h = self
            .devices
            .get_mut(dev)
            .mem
            .alloc(elem, len, label.clone());
        self.presents[di].insert(host_h, dev_h, label.clone())?;
        self.coherence.track(host_h, label.clone());
        self.stats.dev_allocs += 1;
        match queue {
            Some(q) => {
                let ts = self.clock.enqueue_async_on(dev, q, self.cost.alloc_us);
                if self.clock.journal.is_enabled() {
                    self.clock.journal.emit(TraceEvent {
                        ts_us: ts,
                        dur_us: self.cost.alloc_us,
                        track: Track::Queue { dev: dev.0, id: q },
                        kind: EventKind::DevAlloc { var: label, bytes },
                    });
                }
            }
            None => {
                self.clock
                    .advance(TimeCategory::GpuMemAlloc, self.cost.alloc_us);
                if self.clock.journal.is_enabled() {
                    self.emit(EventKind::DevAlloc { var: label, bytes });
                }
            }
        }
        Ok((dev_h, true))
    }

    /// True when `host_h` currently has a live mirror on the primary
    /// device.
    pub fn is_present(&self, host_h: Handle) -> bool {
        self.presents[DeviceId::PRIMARY.0 as usize]
            .device_of(host_h)
            .is_some()
    }

    /// Release one region reference; frees the primary-device mirror at
    /// zero.
    pub fn unmap_from_device(&mut self, host_h: Handle) -> Result<(), VmError> {
        self.unmap_from_device_on(DeviceId::PRIMARY, host_h)
    }

    /// [`Machine::unmap_from_device`] targeting device `dev`.
    pub fn unmap_from_device_on(&mut self, dev: DeviceId, host_h: Handle) -> Result<(), VmError> {
        if let Some(dev_h) = self.presents[dev.0 as usize].release(host_h)? {
            self.devices.get_mut(dev).mem.free(dev_h)?;
            self.clock
                .advance(TimeCategory::GpuMemFree, self.cost.free_us);
            self.stats.dev_frees += 1;
            if self.clock.journal.is_enabled() {
                self.emit(EventKind::DevFree {
                    var: self.var_label(host_h),
                });
            }
            // Deallocation makes the device copy stale (paper §III-B).
            let before = self.coh_snapshot(host_h);
            self.coherence
                .reset_status_at(host_h, Loc::Dev(dev), St::Stale);
            self.emit_coherence_diff(host_h, before, "dealloc");
        }
        Ok(())
    }

    /// Copy host → primary device. `site` names the transfer for reports;
    /// `queue` makes it asynchronous.
    pub fn copy_to_device(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        self.copy_to_device_named(host_h, site, queue, None)
    }

    /// [`Machine::copy_to_device`] with an explicit variable name for
    /// reports (aliased pointers share one buffer label; suggestions must
    /// name the variable the directive used).
    pub fn copy_to_device_named(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.copy_to_device_named_on(DeviceId::PRIMARY, host_h, site, queue, name)
    }

    /// [`Machine::copy_to_device_named`] targeting device `dev`.
    pub fn copy_to_device_named_on(
        &mut self,
        dev: DeviceId,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        let dev_h = self.presents[dev.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyin")))?;
        let (host_mem, dev_mem) = (&self.host.mem, &mut self.devices.get_mut(dev).mem);
        dev_mem.get_mut(dev_h)?.copy_from(host_mem.get(host_h)?)?;
        self.account_to_device_on(dev, host_h, site, queue, name)
    }

    /// The accounting half of a host→device copy — clock charge, transfer
    /// stats, journal events, coherence transition — with no bytes moved.
    /// The verified-launch pipeline performs the raw byte copies on a
    /// worker thread (they have no observable effect on the simulated
    /// machine) and then replays the accounting here on the main thread in
    /// a fixed order, so the pair is indistinguishable from a plain
    /// [`Machine::copy_to_device`] call.
    pub fn account_to_device(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.account_to_device_on(DeviceId::PRIMARY, host_h, site, queue, name)
    }

    /// [`Machine::account_to_device`] targeting device `dev`.
    pub fn account_to_device_on(
        &mut self,
        dev: DeviceId,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.track_handle(host_h);
        self.presents[dev.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyin")))?;
        let bytes = self.host.mem.get(host_h)?.size_bytes();
        let (ts, dt, track) = self.charge_transfer(bytes, dev, queue);
        self.stats.h2d_bytes += bytes;
        self.stats.h2d_count += 1;
        self.emit_transfer(host_h, name, site, ts, dt, track, bytes, true);
        let before = self.coh_snapshot(host_h);
        let diag = self
            .coherence
            .on_transfer_between(host_h, Loc::Cpu, Loc::Dev(dev));
        self.emit_coherence_diff(host_h, before, "transfer");
        self.transfer_issues(diag, host_h, site, Direction::ToDevice, name);
        Ok(())
    }

    /// Copy primary device → host.
    pub fn copy_to_host(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        self.copy_to_host_named(host_h, site, queue, None)
    }

    /// [`Machine::copy_to_host`] with an explicit report variable name.
    pub fn copy_to_host_named(
        &mut self,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.copy_to_host_named_on(DeviceId::PRIMARY, host_h, site, queue, name)
    }

    /// [`Machine::copy_to_host_named`] reading back from device `dev`.
    pub fn copy_to_host_named_on(
        &mut self,
        dev: DeviceId,
        host_h: Handle,
        site: &str,
        queue: Option<i64>,
        name: Option<&str>,
    ) -> Result<(), VmError> {
        self.track_handle(host_h);
        let dev_h = self.presents[dev.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present for copyout")))?;
        let (dev_mem, host_mem) = (&self.devices.get(dev).mem, &mut self.host.mem);
        let src = dev_mem.get(dev_h)?;
        host_mem.get_mut(host_h)?.copy_from(src)?;
        let bytes = src.size_bytes();
        let (ts, dt, track) = self.charge_transfer(bytes, dev, queue);
        self.stats.d2h_bytes += bytes;
        self.stats.d2h_count += 1;
        self.emit_transfer(host_h, name, site, ts, dt, track, bytes, false);
        let before = self.coh_snapshot(host_h);
        let diag = self
            .coherence
            .on_transfer_between(host_h, Loc::Dev(dev), Loc::Cpu);
        self.emit_coherence_diff(host_h, before, "transfer");
        self.transfer_issues(diag, host_h, site, Direction::ToHost, name);
        Ok(())
    }

    /// Copy a mapped buffer from device `src` to device `dst` (both must
    /// hold a mirror of `host_h`). Charged like any other transfer; the
    /// span lands on `dst`'s queue when `queue` is given.
    pub fn copy_device_to_device(
        &mut self,
        host_h: Handle,
        src: DeviceId,
        dst: DeviceId,
        site: &str,
        queue: Option<i64>,
    ) -> Result<(), VmError> {
        self.track_handle(host_h);
        let src_h = self.presents[src.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present on {src} for d2d")))?;
        let dst_h = self.presents[dst.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} not present on {dst} for d2d")))?;
        let buf = self.devices.get(src).mem.get(src_h)?.clone();
        let bytes = buf.size_bytes();
        self.devices
            .get_mut(dst)
            .mem
            .get_mut(dst_h)?
            .copy_from(&buf)?;
        let (ts, dt, track) = self.charge_transfer(bytes, dst, queue);
        self.stats.d2d_bytes += bytes;
        self.stats.d2d_count += 1;
        self.emit_transfer(host_h, None, site, ts, dt, track, bytes, true);
        let before = self.coh_snapshot(host_h);
        let diag = self
            .coherence
            .on_transfer_between(host_h, Loc::Dev(src), Loc::Dev(dst));
        self.emit_coherence_diff(host_h, before, "transfer");
        self.transfer_issues(diag, host_h, site, Direction::ToDevice, None);
        Ok(())
    }

    /// Charge a transfer to the clock. Returns the span's simulated start
    /// time, duration and track for journaling.
    fn charge_transfer(
        &mut self,
        bytes: u64,
        dev: DeviceId,
        queue: Option<i64>,
    ) -> (f64, f64, Track) {
        let dt = self.cost.transfer_time(bytes);
        match queue {
            Some(q) => (
                self.clock.enqueue_async_on(dev, q, dt),
                dt,
                Track::Queue { dev: dev.0, id: q },
            ),
            None => {
                let ts = self.clock.now();
                self.clock.advance(TimeCategory::MemTransfer, dt);
                (ts, dt, Track::Host)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_transfer(
        &mut self,
        host_h: Handle,
        name: Option<&str>,
        site: &str,
        ts: f64,
        dt: f64,
        track: Track,
        bytes: u64,
        to_device: bool,
    ) {
        if !self.clock.journal.is_enabled() {
            return;
        }
        let var = name
            .map(str::to_string)
            .unwrap_or_else(|| self.var_label(host_h));
        self.clock.journal.emit(TraceEvent {
            ts_us: ts,
            dur_us: dt,
            track,
            kind: EventKind::Transfer {
                var,
                site: site.to_string(),
                bytes,
                to_device,
            },
        });
    }

    fn transfer_issues(
        &mut self,
        diag: crate::coherence::XferDiag,
        h: Handle,
        site: &str,
        dir: Direction,
        name: Option<&str>,
    ) {
        let push = |m: &mut Machine, kind: IssueKind| match name {
            Some(n) => {
                let issue = Issue {
                    kind,
                    var: n.to_string(),
                    site: site.to_string(),
                    direction: Some(dir),
                    loop_context: m.loop_context.clone(),
                };
                m.push_issue(issue);
            }
            None => m.issue(kind, h, site, Some(dir)),
        };
        match diag.incorrect {
            Some(true) => push(self, IssueKind::Incorrect),
            Some(false) => push(self, IssueKind::MayIncorrect),
            None => {}
        }
        match diag.redundant {
            Some(true) => push(self, IssueKind::Redundant),
            Some(false) => push(self, IssueKind::MayRedundant),
            None => {}
        }
    }

    /// `check_read` runtime call (two-sided form; `Gpu` is the primary
    /// device).
    pub fn check_read(&mut self, h: Handle, side: DevSide, site: &str) {
        self.check_read_at(h, side.loc(), site);
    }

    /// [`Machine::check_read`] at an explicit location.
    pub fn check_read_at(&mut self, h: Handle, loc: Loc, site: &str) {
        self.track_handle(h);
        match self.coherence.check_read_at(h, loc) {
            ReadDiag::Ok => {}
            ReadDiag::Missing => self.issue(IssueKind::Missing, h, site, None),
            ReadDiag::MayMissing => self.issue(IssueKind::MayMissing, h, site, None),
        }
    }

    /// Compiler-directed coherence override (`resetstatus` runtime call),
    /// journaled as a `"reset"` transition like every other state change —
    /// a silent override would break the journal's per-(var, side)
    /// transition chain, which the fuzzer's reference-model replay checks.
    pub fn reset_status(&mut self, h: Handle, side: DevSide, st: St) {
        self.track_handle(h);
        let before = self.coh_snapshot(h);
        self.coherence.reset_status(h, side, st);
        self.emit_coherence_diff(h, before, "reset");
    }

    /// `check_write` runtime call (also applies the write's state change).
    pub fn check_write(&mut self, h: Handle, side: DevSide, total: bool, site: &str) {
        self.check_write_at(h, side.loc(), total, site);
    }

    /// [`Machine::check_write`] at an explicit location.
    pub fn check_write_at(&mut self, h: Handle, loc: Loc, total: bool, site: &str) {
        self.track_handle(h);
        let before = self.coh_snapshot(h);
        let diag = self.coherence.on_write_at(h, loc, total);
        self.emit_coherence_diff(h, before, "write");
        match diag {
            ReadDiag::Ok => {}
            ReadDiag::Missing => self.issue(IssueKind::Missing, h, site, None),
            ReadDiag::MayMissing => self.issue(IssueKind::MayMissing, h, site, None),
        }
    }

    /// Charge a kernel execution to the clock (primary device).
    pub fn charge_kernel(&mut self, outcome: &KernelOutcome, queue: Option<i64>) {
        self.charge_kernel_named("kernel", outcome, queue);
    }

    /// [`Machine::charge_kernel`] journaling the launch and execution span
    /// under the kernel's name.
    pub fn charge_kernel_named(&mut self, name: &str, outcome: &KernelOutcome, queue: Option<i64>) {
        self.charge_kernel_named_on(name, outcome, DeviceId::PRIMARY, queue);
    }

    /// [`Machine::charge_kernel_named`] on device `dev`'s queue.
    pub fn charge_kernel_named_on(
        &mut self,
        name: &str,
        outcome: &KernelOutcome,
        dev: DeviceId,
        queue: Option<i64>,
    ) {
        let dt = self
            .cost
            .kernel_time(outcome.total_instrs, outcome.max_thread_instrs);
        if self.clock.journal.is_enabled() {
            self.emit(EventKind::KernelLaunch {
                kernel: name.to_string(),
                n_threads: outcome.n_threads,
                queue,
                dev: dev.0,
            });
        }
        let (ts, track) = match queue {
            Some(q) => (
                self.clock.enqueue_async_on(dev, q, dt),
                Track::Queue { dev: dev.0, id: q },
            ),
            None => {
                let ts = self.clock.now();
                self.clock.advance(TimeCategory::KernelExec, dt);
                (ts, Track::Host)
            }
        };
        if self.clock.journal.is_enabled() {
            self.clock.journal.emit(TraceEvent {
                ts_us: ts,
                dur_us: dt,
                track,
                kind: EventKind::KernelComplete {
                    kernel: name.to_string(),
                },
            });
        }
    }

    /// Charge host CPU work (interpreted instructions).
    pub fn charge_cpu(&mut self, instrs: u64) {
        let dt = self.cost.cpu_time(instrs);
        self.clock.advance(TimeCategory::CpuTime, dt);
    }

    /// Resolve the primary-device handle for a mapped host buffer.
    pub fn device_of(&self, host_h: Handle) -> Result<Handle, VmError> {
        self.device_of_on(DeviceId::PRIMARY, host_h)
    }

    /// Resolve the device handle for a host buffer mapped on `dev`.
    pub fn device_of_on(&self, dev: DeviceId, host_h: Handle) -> Result<Handle, VmError> {
        self.presents[dev.0 as usize]
            .device_of(host_h)
            .ok_or_else(|| VmError::Internal(format!("{host_h} is not present on {dev}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::ScalarTy;
    use openarc_vm::Value;

    fn machine_with_buffer(len: usize) -> (Machine, Handle) {
        let mut host = BasicEnv {
            mem: openarc_vm::MemSpace::new(),
            ..Default::default()
        };
        let h = host.mem.alloc(ScalarTy::Double, len, "a");
        (Machine::new(host, true), h)
    }

    fn machine_with_buffer_on(len: usize, n_devices: usize) -> (Machine, Handle) {
        let mut host = BasicEnv {
            mem: openarc_vm::MemSpace::new(),
            ..Default::default()
        };
        let h = host.mem.alloc(ScalarTy::Double, len, "a");
        (Machine::with_devices(host, true, n_devices), h)
    }

    #[test]
    fn map_copy_roundtrip() {
        let (mut m, h) = machine_with_buffer(8);
        for i in 0..8 {
            m.host.mem.store(h, i, Value::F64(i as f64)).unwrap();
        }
        let (dev, new) = m.map_to_device(h).unwrap();
        assert!(new);
        m.copy_to_device(h, "enter", None).unwrap();
        assert_eq!(
            m.devices.primary().mem.load(dev, 3).unwrap(),
            Value::F64(3.0)
        );
        // Mutate on device, copy back.
        m.devices
            .primary_mut()
            .mem
            .store(dev, 3, Value::F64(99.0))
            .unwrap();
        m.coherence.on_write(h, DevSide::Gpu, false);
        m.copy_to_host(h, "exit", None).unwrap();
        assert_eq!(m.host.mem.load(h, 3).unwrap(), Value::F64(99.0));
        assert_eq!(m.stats.h2d_count, 1);
        assert_eq!(m.stats.d2h_count, 1);
        assert_eq!(m.stats.total_bytes(), 2 * 64);
    }

    #[test]
    fn clock_charged_for_alloc_and_transfer() {
        let (mut m, h) = machine_with_buffer(1024);
        m.map_to_device(h).unwrap();
        m.copy_to_device(h, "enter", None).unwrap();
        assert!(m.clock.breakdown.get(TimeCategory::GpuMemAlloc) > 0.0);
        assert!(m.clock.breakdown.get(TimeCategory::MemTransfer) > 0.0);
    }

    #[test]
    fn nested_mapping_refcounts() {
        let (mut m, h) = machine_with_buffer(4);
        let (_, new1) = m.map_to_device(h).unwrap();
        let (_, new2) = m.map_to_device(h).unwrap();
        assert!(new1);
        assert!(!new2);
        m.unmap_from_device(h).unwrap();
        assert!(m.present().contains(h));
        m.unmap_from_device(h).unwrap();
        assert!(!m.present().contains(h));
        assert_eq!(m.stats.dev_allocs, 1);
        assert_eq!(m.stats.dev_frees, 1);
    }

    #[test]
    fn redundant_transfer_reported_with_context() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.loop_context.push(("k-loop".into(), 2));
        // Fresh on both sides → the second copyin is redundant.
        m.copy_to_device(h, "enter0", None).unwrap();
        m.copy_to_device(h, "enter0", None).unwrap();
        let msgs: Vec<String> = m.report.issues.iter().map(|i| i.to_string()).collect();
        assert!(
            msgs.iter()
                .any(|s| s.contains("redundant") && s.contains("k-loop index = 2")),
            "{msgs:?}"
        );
    }

    #[test]
    fn missing_transfer_reported_on_stale_read() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.check_write(h, DevSide::Gpu, false, "kernel0"); // host goes stale
        m.check_read(h, DevSide::Cpu, "host_read0");
        assert_eq!(m.report.count(IssueKind::Missing), 1);
    }

    #[test]
    fn async_transfer_charges_queue_not_host() {
        let (mut m, h) = machine_with_buffer(1 << 20);
        m.map_to_device(h).unwrap();
        let before = m.clock.breakdown.get(TimeCategory::MemTransfer);
        m.copy_to_device(h, "enter", Some(1)).unwrap();
        assert_eq!(m.clock.breakdown.get(TimeCategory::MemTransfer), before);
        m.clock.wait(1);
        assert!(m.clock.breakdown.get(TimeCategory::AsyncWait) > 0.0);
    }

    #[test]
    fn unmap_stales_device_copy() {
        let (mut m, h) = machine_with_buffer(4);
        m.map_to_device(h).unwrap();
        m.unmap_from_device(h).unwrap();
        // Re-map: coherence remembers the device copy is stale.
        m.map_to_device(h).unwrap();
        assert_eq!(m.coherence.state(h).unwrap().gpu(), St::Stale);
    }

    #[test]
    fn per_device_mappings_are_independent() {
        let d1 = DeviceId(1);
        let (mut m, h) = machine_with_buffer_on(8, 2);
        let (_, new0) = m.map_to_device_on(DeviceId::PRIMARY, h).unwrap();
        let (_, new1) = m.map_to_device_on(d1, h).unwrap();
        assert!(new0 && new1, "each device allocates its own mirror");
        assert_eq!(m.stats.dev_allocs, 2);
        assert!(m.present_on(DeviceId::PRIMARY).contains(h));
        assert!(m.present_on(d1).contains(h));
        m.unmap_from_device_on(d1, h).unwrap();
        assert!(m.present_on(DeviceId::PRIMARY).contains(h));
        assert!(!m.present_on(d1).contains(h));
        assert_eq!(m.present_anywhere(h), Some(DeviceId::PRIMARY));
    }

    #[test]
    fn d2d_copy_moves_bytes_and_accounts() {
        let d1 = DeviceId(1);
        let (mut m, h) = machine_with_buffer_on(4, 2);
        m.host.mem.store(h, 2, Value::F64(7.0)).unwrap();
        let (dev0, _) = m.map_to_device_on(DeviceId::PRIMARY, h).unwrap();
        let (dev1, _) = m.map_to_device_on(d1, h).unwrap();
        m.copy_to_device_named_on(DeviceId::PRIMARY, h, "enter", None, None)
            .unwrap();
        m.devices
            .primary_mut()
            .mem
            .store(dev0, 2, Value::F64(42.0))
            .unwrap();
        m.check_write_at(h, Loc::Dev(DeviceId::PRIMARY), false, "k0");
        m.copy_device_to_device(h, DeviceId::PRIMARY, d1, "d2d0", None)
            .unwrap();
        assert_eq!(
            m.devices.get(d1).mem.load(dev1, 2).unwrap(),
            Value::F64(42.0)
        );
        assert_eq!(m.stats.d2d_count, 1);
        assert_eq!(m.stats.d2d_bytes, 32);
        // Destination device copy is fresh now; host still stale.
        assert_eq!(m.coherence.state(h).unwrap().gpu_on(d1), St::NotStale);
        assert_eq!(m.coherence.state(h).unwrap().cpu, St::Stale);
    }

    #[test]
    fn write_on_one_device_stales_all_other_locations() {
        let d1 = DeviceId(1);
        let (mut m, h) = machine_with_buffer_on(4, 2);
        m.map_to_device_on(DeviceId::PRIMARY, h).unwrap();
        m.map_to_device_on(d1, h).unwrap();
        m.check_write_at(h, Loc::Dev(d1), false, "k0");
        let v = m.coherence.state(h).unwrap();
        assert_eq!(v.cpu, St::Stale);
        assert_eq!(v.gpu_on(DeviceId::PRIMARY), St::Stale);
        assert_eq!(v.gpu_on(d1), St::NotStale);
        // A read on the primary device now reports a missing transfer.
        m.check_read_at(h, Loc::Dev(DeviceId::PRIMARY), "k1");
        assert_eq!(m.report.count(IssueKind::Missing), 1);
    }

    #[test]
    fn journal_captures_semantic_events() {
        use openarc_trace::EventKind as Ev;
        let (mut m, h) = machine_with_buffer(8);
        m.set_journal(Journal::enabled());
        m.map_to_device(h).unwrap(); // miss + alloc
        m.map_to_device(h).unwrap(); // hit
        m.copy_to_device(h, "enter0", None).unwrap(); // redundant → finding
        m.check_write(h, DevSide::Gpu, false, "k0"); // cpu → stale
        m.copy_to_host(h, "exit0", None).unwrap();
        m.unmap_from_device(h).unwrap();
        m.unmap_from_device(h).unwrap(); // refcount 0 → free
        m.flush_journal();
        let events = m.journal().snapshot();
        let has = |pred: &dyn Fn(&Ev) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(k, Ev::PresentMiss { var } if var == "a")));
        assert!(has(&|k| matches!(k, Ev::PresentHit { var } if var == "a")));
        assert!(has(
            &|k| matches!(k, Ev::DevAlloc { var, bytes } if var == "a" && *bytes == 64)
        ));
        assert!(has(&|k| matches!(k, Ev::DevFree { .. })));
        assert!(has(&|k| matches!(
            k,
            Ev::Transfer {
                to_device: true,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            Ev::Transfer {
                to_device: false,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            Ev::Coherence {
                side: "cpu",
                to: "stale",
                cause: "write",
                ..
            }
        )));
        assert!(has(
            &|k| matches!(k, Ev::Finding { kind, .. } if kind == "Redundant")
        ));
        // Slices reconcile with the clock breakdown.
        for (cat, total) in openarc_trace::category_totals(&events) {
            let clock_cat = TimeCategory::ALL
                .iter()
                .copied()
                .find(|t| t.trace_category() == cat)
                .unwrap();
            assert_eq!(total, m.clock.breakdown.get(clock_cat), "{cat}");
        }
    }

    #[test]
    fn secondary_device_coherence_events_use_gpu_n_sides() {
        use openarc_trace::EventKind as Ev;
        let d1 = DeviceId(1);
        let (mut m, h) = machine_with_buffer_on(4, 2);
        m.set_journal(Journal::enabled());
        m.map_to_device_on(DeviceId::PRIMARY, h).unwrap();
        m.map_to_device_on(d1, h).unwrap();
        m.check_write_at(h, Loc::Dev(DeviceId::PRIMARY), false, "k0");
        m.flush_journal();
        let events = m.journal().snapshot();
        let sides: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                Ev::Coherence {
                    side, to: "stale", ..
                } => Some(*side),
                _ => None,
            })
            .collect();
        assert_eq!(sides, vec!["cpu", "gpu1"], "{events:?}");
    }

    #[test]
    fn disabled_journal_changes_nothing() {
        let (mut m, h) = machine_with_buffer(8);
        m.map_to_device(h).unwrap();
        m.copy_to_device(h, "enter0", None).unwrap();
        assert!(!m.journal().is_enabled());
        assert!(m.journal().snapshot().is_empty());
        assert_eq!(m.report.issues.len(), 1, "report still works untraced");
    }

    #[test]
    fn kernel_charge_sync_vs_async() {
        let (mut m, _) = machine_with_buffer(1);
        let out = KernelOutcome {
            total_instrs: 1_000_000,
            max_thread_instrs: 1000,
            races: vec![],
            n_threads: 1000,
        };
        m.charge_kernel(&out, None);
        assert!(m.clock.breakdown.get(TimeCategory::KernelExec) > 0.0);
        let before = m.clock.now();
        m.charge_kernel(&out, Some(2));
        assert_eq!(m.clock.now(), before, "async kernel does not advance host");
    }

    #[test]
    fn async_kernels_on_distinct_devices_overlap() {
        let (mut m, _) = machine_with_buffer_on(1, 2);
        m.set_journal(Journal::enabled());
        let out = KernelOutcome {
            total_instrs: 1_000_000,
            max_thread_instrs: 1000,
            races: vec![],
            n_threads: 1000,
        };
        m.charge_kernel_named_on("ka", &out, DeviceId::PRIMARY, Some(1));
        m.charge_kernel_named_on("kb", &out, DeviceId(1), Some(1));
        m.flush_journal();
        let spans: Vec<(f64, f64, Track)> = m
            .journal()
            .snapshot()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::KernelComplete { .. }))
            .map(|e| (e.ts_us, e.dur_us, e.track))
            .collect();
        assert_eq!(spans.len(), 2);
        // Same start time on independent device queues → overlapping spans.
        assert_eq!(spans[0].0, spans[1].0);
        assert_ne!(spans[0].2, spans[1].2);
    }
}
