//! # openarc-runtime
//!
//! The OpenACC runtime of OpenARC-rs: present table, structured data
//! environments, the host↔device transfer engine with simulated-time
//! accounting, and — the paper's §III-B centerpiece — the **runtime
//! coherence tracker** (`notstale` / `maystale` / `stale` per variable per
//! device) plus the report engine that produces Listing-4-style
//! missing/incorrect/redundant/may-* findings.
//!
//! ## The coherence state machine
//!
//! Each tracked variable carries one state per side (`cpu`, `gpu`):
//!
//! * `notstale` — this copy holds the latest data;
//! * `maystale` — a *conditional* remote write may have outdated it
//!   (the §III-B "may" findings);
//! * `stale` — a remote write definitely outdated it.
//!
//! Writes demote the *other* side (`stale`, or `maystale` when the write
//! is conditional); a transfer promotes its destination to `notstale`;
//! deallocation of the device copy demotes the gpu side. The two sides
//! are never simultaneously `stale` — someone always holds the latest
//! data (property-tested in `tests/props.rs`).
//!
//! ## Event journal
//!
//! When a [`openarc_trace::Journal`] is attached
//! ([`Machine::set_journal`]), the machine emits the semantic events of
//! the `openarc-trace` schema: `DevAlloc`/`DevFree`,
//! `PresentHit`/`PresentMiss`, `Transfer` spans (on the host track, or
//! the owning async-queue track), every `Coherence` transition
//! (obtained by diffing the state machine around each
//! write/transfer/dealloc, with the cause recorded), and each report
//! `Finding` at the simulated time it was raised. With the journal
//! disabled (the default) each site costs a single branch.

#![warn(missing_docs)]

pub mod coherence;
pub mod machine;
pub mod present;
pub mod report;

pub use coherence::{Coherence, DevSide, Loc, ReadDiag, St, VarState, XferDiag};
pub use machine::{Machine, TransferStats, MAX_DEVICES};
pub use present::{Mapping, PresentTable};
pub use report::{Direction, Issue, IssueKind, Report};
