//! # openarc-runtime
//!
//! The OpenACC runtime of OpenARC-rs: present table, structured data
//! environments, the host↔device transfer engine with simulated-time
//! accounting, and — the paper's §III-B centerpiece — the **runtime
//! coherence tracker** (`notstale` / `maystale` / `stale` per variable per
//! device) plus the report engine that produces Listing-4-style
//! missing/incorrect/redundant/may-* findings.

#![warn(missing_docs)]

pub mod coherence;
pub mod machine;
pub mod present;
pub mod report;

pub use coherence::{Coherence, DevSide, ReadDiag, St, VarState, XferDiag};
pub use machine::{Machine, TransferStats};
pub use present::{Mapping, PresentTable};
pub use report::{Direction, Issue, IssueKind, Report};
