//! The report engine: structured findings the interactive tool shows the
//! programmer, with Listing-4-style loop-iteration context.

use std::fmt;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host → device.
    ToDevice,
    /// Device → host.
    ToHost,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::ToDevice => write!(f, "from host to device"),
            Direction::ToHost => write!(f, "from device to host"),
        }
    }
}

/// Kind of finding. The three suggestion classes of §IV-C: information on
/// redundant transfers, errors on missing/incorrect transfers, and warnings
/// on may-redundant / may-missing transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// Destination already up to date.
    Redundant,
    /// Destination was may-stale (compiler said may-dead): user verifies.
    MayRedundant,
    /// Source was stale: outdated data copied.
    Incorrect,
    /// Source was may-stale.
    MayIncorrect,
    /// A read found its local copy stale.
    Missing,
    /// A stale copy was partially overwritten / read may precede refresh.
    MayMissing,
}

impl IssueKind {
    /// Errors must be fixed; warnings need user judgement; info is an
    /// optimization opportunity.
    pub fn severity(self) -> &'static str {
        match self {
            IssueKind::Redundant => "info",
            IssueKind::MayRedundant | IssueKind::MayMissing | IssueKind::MayIncorrect => "warning",
            IssueKind::Incorrect | IssueKind::Missing => "error",
        }
    }

    /// True for the `may-*` kinds that require user verification.
    pub fn needs_user(self) -> bool {
        matches!(
            self,
            IssueKind::MayRedundant | IssueKind::MayMissing | IssueKind::MayIncorrect
        )
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Issue {
    /// What was diagnosed.
    pub kind: IssueKind,
    /// Variable involved.
    pub var: String,
    /// Name of the transfer site (e.g. `update0`) or access site.
    pub site: String,
    /// Transfer direction, when applicable.
    pub direction: Option<Direction>,
    /// Enclosing-loop iteration indices, outermost first
    /// (Listing 4's "enclosing loop index = 1").
    pub loop_context: Vec<(String, i64)>,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = if self.loop_context.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = self
                .loop_context
                .iter()
                .map(|(l, i)| format!("enclosing {l} index = {i}"))
                .collect();
            format!(" ({})", parts.join(", "))
        };
        match self.kind {
            IssueKind::Redundant => {
                let dir = self.direction.map(|d| d.to_string()).unwrap_or_default();
                write!(
                    f,
                    "- Copying {} {} in {}{} is redundant.",
                    self.var, dir, self.site, ctx
                )
            }
            IssueKind::MayRedundant => {
                let dir = self.direction.map(|d| d.to_string()).unwrap_or_default();
                write!(
                    f,
                    "- Copying {} {} in {}{} may be redundant; verify the value is dead.",
                    self.var, dir, self.site, ctx
                )
            }
            IssueKind::Incorrect => write!(
                f,
                "- ERROR: transfer of {} in {}{} copies stale data.",
                self.var, self.site, ctx
            ),
            IssueKind::MayIncorrect => write!(
                f,
                "- WARNING: transfer of {} in {}{} may copy stale data.",
                self.var, self.site, ctx
            ),
            IssueKind::Missing => write!(
                f,
                "- ERROR: {} is stale at {}{}; a memory transfer is missing.",
                self.var, self.site, ctx
            ),
            IssueKind::MayMissing => write!(
                f,
                "- WARNING: {} may be stale at {}{}; verify whether a transfer is needed.",
                self.var, self.site, ctx
            ),
        }
    }
}

/// Collected findings of one profiling run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings in occurrence order.
    pub issues: Vec<Issue>,
}

impl Report {
    /// Record one finding.
    pub fn push(&mut self, issue: Issue) {
        self.issues.push(issue);
    }

    /// Findings of a given kind.
    pub fn of_kind(&self, kind: IssueKind) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(move |i| i.kind == kind)
    }

    /// Count per kind.
    pub fn count(&self, kind: IssueKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Deduplicated (kind, var, site) triples — each is one actionable
    /// suggestion even if it fired on every loop iteration.
    pub fn distinct_suggestions(&self) -> Vec<(IssueKind, String, String)> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for i in &self.issues {
            let key = (format!("{:?}", i.kind), i.var.clone(), i.site.clone());
            if seen.insert(key) {
                out.push((i.kind, i.var.clone(), i.site.clone()));
            }
        }
        out
    }

    /// True if any hard error (missing/incorrect) was found.
    pub fn has_errors(&self) -> bool {
        self.issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::Missing | IssueKind::Incorrect))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.issues {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: IssueKind) -> Issue {
        Issue {
            kind,
            var: "b".into(),
            site: "update0".into(),
            direction: Some(Direction::ToHost),
            loop_context: vec![("loop".into(), 1)],
        }
    }

    #[test]
    fn listing4_style_message() {
        let msg = sample(IssueKind::Redundant).to_string();
        assert_eq!(
            msg,
            "- Copying b from device to host in update0 (enclosing loop index = 1) is redundant."
        );
    }

    #[test]
    fn severities() {
        assert_eq!(IssueKind::Redundant.severity(), "info");
        assert_eq!(IssueKind::Missing.severity(), "error");
        assert_eq!(IssueKind::MayRedundant.severity(), "warning");
        assert!(IssueKind::MayMissing.needs_user());
        assert!(!IssueKind::Incorrect.needs_user());
    }

    #[test]
    fn distinct_suggestions_dedupe_iterations() {
        let mut r = Report::default();
        for it in 1..=5 {
            let mut i = sample(IssueKind::Redundant);
            i.loop_context = vec![("k-loop".into(), it)];
            r.push(i);
        }
        r.push(sample(IssueKind::MayRedundant));
        assert_eq!(r.issues.len(), 6);
        assert_eq!(r.distinct_suggestions().len(), 2);
        assert_eq!(r.count(IssueKind::Redundant), 5);
    }

    #[test]
    fn has_errors_detects_missing() {
        let mut r = Report::default();
        r.push(sample(IssueKind::Redundant));
        assert!(!r.has_errors());
        r.push(sample(IssueKind::Missing));
        assert!(r.has_errors());
    }
}
