//! The runtime coherence tracker of §III-B.
//!
//! Each variable of interest (array / malloc'd region shared between CPU
//! and GPU) carries one of three states **per device**: `notstale`,
//! `maystale`, `stale` — tracked at whole-allocation granularity exactly as
//! the paper prescribes ("we track coherence status at the granularity of
//! entire array or memory region allocated by a malloc call").
//!
//! State machine (paper, §III-B):
//! * all variables start **not-stale** on both devices until the first
//!   write;
//! * a write on one device sets the *other* device's state to **stale**
//!   (or to **may-stale**/**not-stale** when the compiler proved the remote
//!   copy may-dead/must-dead — `reset_status`);
//! * a transfer sets the destination **not-stale**; a local total
//!   overwrite does the same;
//! * deallocation sets the state **stale**; a reduction kernel whose final
//!   value lands on the CPU leaves the GPU copy **stale**.

use openarc_vm::Handle;
use std::collections::HashMap;

/// Coherence state of one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum St {
    /// Up to date.
    #[default]
    NotStale,
    /// Possibly outdated (compiler said may-dead, or partial overwrite of a
    /// stale copy).
    MayStale,
    /// Outdated: the other device modified the data.
    Stale,
}

/// Which copy of the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevSide {
    /// Host CPU copy.
    Cpu,
    /// Device (GPU) copy.
    Gpu,
}

impl DevSide {
    /// The opposite side.
    pub fn other(self) -> DevSide {
        match self {
            DevSide::Cpu => DevSide::Gpu,
            DevSide::Gpu => DevSide::Cpu,
        }
    }
}

/// Diagnosis of a read access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDiag {
    /// Fine.
    Ok,
    /// Local copy stale → a transfer is missing.
    Missing,
    /// Local copy may-stale → transfer needed only if the written part
    /// does not cover the reads (user must verify).
    MayMissing,
}

/// Diagnosis of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferDiag {
    /// Source-side verdict: copying from a stale source spreads bad data.
    pub incorrect: Option<bool>,
    /// Destination-side verdict: `Some(true)` = redundant,
    /// `Some(false)` = may-redundant, `None` = necessary.
    pub redundant: Option<bool>,
}

/// Per-variable coherence record.
#[derive(Debug, Clone, Default)]
pub struct VarState {
    /// CPU-side state.
    pub cpu: St,
    /// GPU-side state.
    pub gpu: St,
    /// Variable label for reports.
    pub label: String,
}

impl VarState {
    /// State of `side`.
    pub fn get(&self, side: DevSide) -> St {
        match side {
            DevSide::Cpu => self.cpu,
            DevSide::Gpu => self.gpu,
        }
    }

    fn set(&mut self, side: DevSide, st: St) {
        match side {
            DevSide::Cpu => self.cpu = st,
            DevSide::Gpu => self.gpu = st,
        }
    }
}

/// The coherence tracker, keyed by host allocation handle.
///
/// ```
/// use openarc_runtime::{Coherence, DevSide, ReadDiag};
/// use openarc_vm::Handle;
/// let mut c = Coherence::new(true);
/// let h = Handle(1);
/// c.track(h, "a");
/// c.on_write(h, DevSide::Gpu, false);           // kernel writes a
/// assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Missing);
/// let diag = c.on_transfer(h, DevSide::Cpu);    // copy it back
/// assert_eq!(diag.redundant, None);             // the copy was needed
/// assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Ok);
/// let diag = c.on_transfer(h, DevSide::Cpu);    // copy it again
/// assert_eq!(diag.redundant, Some(true));       // now it's redundant
/// ```
#[derive(Debug, Clone, Default)]
pub struct Coherence {
    vars: HashMap<Handle, VarState>,
    /// Master switch: when off (production runs), all checks return Ok and
    /// no state is maintained — used to measure the Figure 4 overhead.
    pub enabled: bool,
}

impl Coherence {
    /// A tracker with checking enabled.
    pub fn new(enabled: bool) -> Coherence {
        Coherence {
            vars: HashMap::new(),
            enabled,
        }
    }

    /// Begin tracking `h` (first device mapping). Both sides not-stale.
    pub fn track(&mut self, h: Handle, label: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.vars.entry(h).or_insert_with(|| VarState {
            cpu: St::NotStale,
            gpu: St::NotStale,
            label: label.into(),
        });
    }

    /// Stop tracking (host free).
    pub fn untrack(&mut self, h: Handle) {
        self.vars.remove(&h);
    }

    /// Current state, if tracked.
    pub fn state(&self, h: Handle) -> Option<&VarState> {
        self.vars.get(&h)
    }

    /// `check_read(h, side)`: diagnose a read on `side`.
    pub fn check_read(&self, h: Handle, side: DevSide) -> ReadDiag {
        if !self.enabled {
            return ReadDiag::Ok;
        }
        match self.vars.get(&h).map(|v| v.get(side)) {
            Some(St::Stale) => ReadDiag::Missing,
            Some(St::MayStale) => ReadDiag::MayMissing,
            _ => ReadDiag::Ok,
        }
    }

    /// `check_write(h, side, total)`: diagnose and apply a write on `side`.
    /// Returns the diagnosis of the *local* copy before the write (a stale
    /// copy being partially overwritten is the paper's may-missing case).
    pub fn on_write(&mut self, h: Handle, side: DevSide, total: bool) -> ReadDiag {
        if !self.enabled {
            return ReadDiag::Ok;
        }
        let Some(v) = self.vars.get_mut(&h) else {
            return ReadDiag::Ok;
        };
        let before = v.get(side);
        let diag = match before {
            St::Stale if !total => ReadDiag::MayMissing,
            _ => ReadDiag::Ok,
        };
        // Local copy: a total overwrite is fresh; a partial overwrite of a
        // stale copy leaves it may-stale.
        let local_after = if total {
            St::NotStale
        } else {
            match before {
                St::Stale | St::MayStale => St::MayStale,
                St::NotStale => St::NotStale,
            }
        };
        v.set(side, local_after);
        // Remote copy goes stale (reset_status may soften this afterwards).
        v.set(side.other(), St::Stale);
        diag
    }

    /// Diagnose and apply a transfer into `dst` side.
    pub fn on_transfer(&mut self, h: Handle, dst: DevSide) -> XferDiag {
        if !self.enabled {
            return XferDiag {
                incorrect: None,
                redundant: None,
            };
        }
        let Some(v) = self.vars.get_mut(&h) else {
            return XferDiag {
                incorrect: None,
                redundant: None,
            };
        };
        let src_state = v.get(dst.other());
        let dst_state = v.get(dst);
        let incorrect = match src_state {
            St::Stale => Some(true),
            St::MayStale => Some(false),
            St::NotStale => None,
        };
        let redundant = match dst_state {
            St::NotStale => Some(true),
            St::MayStale => Some(false),
            St::Stale => None,
        };
        v.set(dst, St::NotStale);
        XferDiag {
            incorrect,
            redundant,
        }
    }

    /// `reset_status(h, side, st)`: compiler-directed state override (dead
    /// variables, deallocation, CPU-final reductions).
    pub fn reset_status(&mut self, h: Handle, side: DevSide, st: St) {
        if !self.enabled {
            return;
        }
        if let Some(v) = self.vars.get_mut(&h) {
            v.set(side, st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Handle = Handle(5);

    fn tracked() -> Coherence {
        let mut c = Coherence::new(true);
        c.track(H, "a");
        c
    }

    #[test]
    fn starts_not_stale_both_sides() {
        let c = tracked();
        let v = c.state(H).unwrap();
        assert_eq!(v.cpu, St::NotStale);
        assert_eq!(v.gpu, St::NotStale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
    }

    #[test]
    fn write_stales_remote() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false);
        assert_eq!(c.state(H).unwrap().cpu, St::Stale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Missing);
        assert_eq!(c.check_read(H, DevSide::Gpu), ReadDiag::Ok);
    }

    #[test]
    fn transfer_clears_staleness() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false);
        let d = c.on_transfer(H, DevSide::Cpu);
        assert_eq!(d.redundant, None, "transfer was needed");
        assert_eq!(d.incorrect, None, "source was fresh");
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
    }

    #[test]
    fn transfer_to_fresh_copy_is_redundant() {
        let mut c = tracked();
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(true));
    }

    #[test]
    fn transfer_from_stale_source_is_incorrect() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU copy stale now
        let d = c.on_transfer(H, DevSide::Gpu); // CPU → GPU copies stale data
        assert_eq!(d.incorrect, Some(true));
    }

    #[test]
    fn partial_overwrite_of_stale_copy_is_may_missing() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU stale
        let diag = c.on_write(H, DevSide::Cpu, false); // partial CPU write
        assert_eq!(diag, ReadDiag::MayMissing);
        assert_eq!(c.state(H).unwrap().cpu, St::MayStale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::MayMissing);
    }

    #[test]
    fn total_overwrite_refreshes_local() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU stale
        let diag = c.on_write(H, DevSide::Cpu, true);
        assert_eq!(diag, ReadDiag::Ok);
        assert_eq!(c.state(H).unwrap().cpu, St::NotStale);
        // And the GPU copy went stale in turn.
        assert_eq!(c.state(H).unwrap().gpu, St::Stale);
    }

    #[test]
    fn reset_status_overrides() {
        let mut c = tracked();
        c.on_write(H, DevSide::Cpu, true); // GPU stale
                                           // Compiler proved GPU copy must-dead → mark not-stale so the next
                                           // transfer to it is flagged redundant.
        c.reset_status(H, DevSide::Gpu, St::NotStale);
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(true));
    }

    #[test]
    fn may_dead_gives_may_redundant() {
        let mut c = tracked();
        c.on_write(H, DevSide::Cpu, true); // GPU stale
        c.reset_status(H, DevSide::Gpu, St::MayStale);
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(false), "may-redundant");
    }

    #[test]
    fn disabled_tracker_is_silent() {
        let mut c = Coherence::new(false);
        c.track(H, "a");
        c.on_write(H, DevSide::Gpu, false);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
        assert!(c.state(H).is_none());
    }

    #[test]
    fn untrack_forgets() {
        let mut c = tracked();
        c.untrack(H);
        assert!(c.state(H).is_none());
    }
}
