//! The runtime coherence tracker of §III-B.
//!
//! Each variable of interest (array / malloc'd region shared between CPU
//! and GPU) carries one of three states **per device**: `notstale`,
//! `maystale`, `stale` — tracked at whole-allocation granularity exactly as
//! the paper prescribes ("we track coherence status at the granularity of
//! entire array or memory region allocated by a malloc call").
//!
//! State machine (paper, §III-B):
//! * all variables start **not-stale** on both devices until the first
//!   write;
//! * a write on one device sets the *other* device's state to **stale**
//!   (or to **may-stale**/**not-stale** when the compiler proved the remote
//!   copy may-dead/must-dead — `reset_status`);
//! * a transfer sets the destination **not-stale**; a local total
//!   overwrite does the same;
//! * deallocation sets the state **stale**; a reduction kernel whose final
//!   value lands on the CPU leaves the GPU copy **stale**.

use openarc_gpusim::DeviceId;
use openarc_vm::Handle;
use std::collections::HashMap;

/// Coherence state of one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum St {
    /// Up to date.
    #[default]
    NotStale,
    /// Possibly outdated (compiler said may-dead, or partial overwrite of a
    /// stale copy).
    MayStale,
    /// Outdated: the other device modified the data.
    Stale,
}

/// Which copy of the data, in the paper's two-sided vocabulary (the form
/// the instrumented `check_read`/`check_write` calls are lowered with).
/// `Gpu` always means the primary device; multi-device code paths use
/// [`Loc`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevSide {
    /// Host CPU copy.
    Cpu,
    /// Device (GPU) copy.
    Gpu,
}

impl DevSide {
    /// The opposite side.
    pub fn other(self) -> DevSide {
        match self {
            DevSide::Cpu => DevSide::Gpu,
            DevSide::Gpu => DevSide::Cpu,
        }
    }

    /// The location this side names: `Gpu` is the primary device.
    pub fn loc(self) -> Loc {
        match self {
            DevSide::Cpu => Loc::Cpu,
            DevSide::Gpu => Loc::Dev(DeviceId::PRIMARY),
        }
    }
}

/// One location a copy of the data can live at: the host, or one of N
/// simulated devices. The §III-B state machine "already keys per device
/// conceptually" — this makes the device dimension real.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Host CPU copy.
    Cpu,
    /// The copy on one device.
    Dev(DeviceId),
}

/// Diagnosis of a read access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDiag {
    /// Fine.
    Ok,
    /// Local copy stale → a transfer is missing.
    Missing,
    /// Local copy may-stale → transfer needed only if the written part
    /// does not cover the reads (user must verify).
    MayMissing,
}

/// Diagnosis of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferDiag {
    /// Source-side verdict: copying from a stale source spreads bad data.
    pub incorrect: Option<bool>,
    /// Destination-side verdict: `Some(true)` = redundant,
    /// `Some(false)` = may-redundant, `None` = necessary.
    pub redundant: Option<bool>,
}

/// Per-variable coherence record: one state for the host copy plus one
/// per device.
#[derive(Debug, Clone)]
pub struct VarState {
    /// CPU-side state.
    pub cpu: St,
    /// Per-device states, indexed by [`DeviceId`].
    gpus: Vec<St>,
    /// Variable label for reports.
    pub label: String,
}

impl Default for VarState {
    fn default() -> VarState {
        VarState {
            cpu: St::NotStale,
            gpus: vec![St::NotStale],
            label: String::new(),
        }
    }
}

impl VarState {
    /// The primary device's state.
    pub fn gpu(&self) -> St {
        self.gpus[0]
    }

    /// Device `d`'s state.
    pub fn gpu_on(&self, d: DeviceId) -> St {
        self.gpus[d.0 as usize]
    }

    /// All device states, indexed by [`DeviceId`].
    pub fn gpus(&self) -> &[St] {
        &self.gpus
    }

    /// State of `side` (two-sided view: `Gpu` is the primary device).
    pub fn get(&self, side: DevSide) -> St {
        self.at(side.loc())
    }

    /// State at `loc`.
    pub fn at(&self, loc: Loc) -> St {
        match loc {
            Loc::Cpu => self.cpu,
            Loc::Dev(d) => self.gpus[d.0 as usize],
        }
    }

    fn set_at(&mut self, loc: Loc, st: St) {
        match loc {
            Loc::Cpu => self.cpu = st,
            Loc::Dev(d) => self.gpus[d.0 as usize] = st,
        }
    }

    /// Every location, in `Cpu`, `Dev(0)`, `Dev(1)`… order.
    fn locs(&self) -> impl Iterator<Item = Loc> {
        std::iter::once(Loc::Cpu).chain((0..self.gpus.len() as u32).map(|d| Loc::Dev(DeviceId(d))))
    }
}

/// The coherence tracker, keyed by host allocation handle.
///
/// ```
/// use openarc_runtime::{Coherence, DevSide, ReadDiag};
/// use openarc_vm::Handle;
/// let mut c = Coherence::new(true);
/// let h = Handle(1);
/// c.track(h, "a");
/// c.on_write(h, DevSide::Gpu, false);           // kernel writes a
/// assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Missing);
/// let diag = c.on_transfer(h, DevSide::Cpu);    // copy it back
/// assert_eq!(diag.redundant, None);             // the copy was needed
/// assert_eq!(c.check_read(h, DevSide::Cpu), ReadDiag::Ok);
/// let diag = c.on_transfer(h, DevSide::Cpu);    // copy it again
/// assert_eq!(diag.redundant, Some(true));       // now it's redundant
/// ```
#[derive(Debug, Clone)]
pub struct Coherence {
    vars: HashMap<Handle, VarState>,
    n_devices: usize,
    /// Master switch: when off (production runs), all checks return Ok and
    /// no state is maintained — used to measure the Figure 4 overhead.
    pub enabled: bool,
}

impl Default for Coherence {
    fn default() -> Coherence {
        Coherence::new(false)
    }
}

impl Coherence {
    /// A single-device tracker.
    pub fn new(enabled: bool) -> Coherence {
        Coherence::with_devices(enabled, 1)
    }

    /// A tracker over `n_devices` simulated devices (clamped to ≥ 1).
    pub fn with_devices(enabled: bool, n_devices: usize) -> Coherence {
        Coherence {
            vars: HashMap::new(),
            n_devices: n_devices.max(1),
            enabled,
        }
    }

    /// Number of devices tracked per variable.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Begin tracking `h` (first device mapping). Every location starts
    /// not-stale.
    pub fn track(&mut self, h: Handle, label: impl Into<String>) {
        if !self.enabled {
            return;
        }
        let n = self.n_devices;
        self.vars.entry(h).or_insert_with(|| VarState {
            cpu: St::NotStale,
            gpus: vec![St::NotStale; n],
            label: label.into(),
        });
    }

    /// Stop tracking (host free).
    pub fn untrack(&mut self, h: Handle) {
        self.vars.remove(&h);
    }

    /// Current state, if tracked.
    pub fn state(&self, h: Handle) -> Option<&VarState> {
        self.vars.get(&h)
    }

    /// `check_read(h, side)`: diagnose a read on `side` (two-sided view;
    /// `Gpu` is the primary device).
    pub fn check_read(&self, h: Handle, side: DevSide) -> ReadDiag {
        self.check_read_at(h, side.loc())
    }

    /// Diagnose a read of the copy at `loc`.
    pub fn check_read_at(&self, h: Handle, loc: Loc) -> ReadDiag {
        if !self.enabled {
            return ReadDiag::Ok;
        }
        match self.vars.get(&h).map(|v| v.at(loc)) {
            Some(St::Stale) => ReadDiag::Missing,
            Some(St::MayStale) => ReadDiag::MayMissing,
            _ => ReadDiag::Ok,
        }
    }

    /// `check_write(h, side, total)`: diagnose and apply a write on `side`
    /// (two-sided view; `Gpu` is the primary device).
    pub fn on_write(&mut self, h: Handle, side: DevSide, total: bool) -> ReadDiag {
        self.on_write_at(h, side.loc(), total)
    }

    /// Diagnose and apply a write at `loc`. Returns the diagnosis of the
    /// *local* copy before the write (a stale copy being partially
    /// overwritten is the paper's may-missing case). Every *other*
    /// location's copy goes stale — with one device this is exactly the
    /// paper's two-sided rule; with N devices a write anywhere stales the
    /// N remaining copies.
    pub fn on_write_at(&mut self, h: Handle, loc: Loc, total: bool) -> ReadDiag {
        if !self.enabled {
            return ReadDiag::Ok;
        }
        let Some(v) = self.vars.get_mut(&h) else {
            return ReadDiag::Ok;
        };
        let before = v.at(loc);
        let diag = match before {
            St::Stale if !total => ReadDiag::MayMissing,
            _ => ReadDiag::Ok,
        };
        // Local copy: a total overwrite is fresh; a partial overwrite of a
        // stale copy leaves it may-stale.
        let local_after = if total {
            St::NotStale
        } else {
            match before {
                St::Stale | St::MayStale => St::MayStale,
                St::NotStale => St::NotStale,
            }
        };
        // Remote copies go stale (reset_status may soften this afterwards).
        let locs: Vec<Loc> = v.locs().collect();
        for other in locs {
            if other != loc {
                v.set_at(other, St::Stale);
            }
        }
        v.set_at(loc, local_after);
        diag
    }

    /// Diagnose and apply a transfer into `dst` side (two-sided view: the
    /// source is the opposite side, with `Gpu` the primary device).
    pub fn on_transfer(&mut self, h: Handle, dst: DevSide) -> XferDiag {
        self.on_transfer_between(h, dst.other().loc(), dst.loc())
    }

    /// Diagnose and apply a transfer from the copy at `src` into the copy
    /// at `dst` — host↔device in either direction, or device↔device.
    /// The incorrect verdict reads the source state, the redundant verdict
    /// the destination state, and the destination becomes not-stale.
    pub fn on_transfer_between(&mut self, h: Handle, src: Loc, dst: Loc) -> XferDiag {
        if !self.enabled {
            return XferDiag {
                incorrect: None,
                redundant: None,
            };
        }
        let Some(v) = self.vars.get_mut(&h) else {
            return XferDiag {
                incorrect: None,
                redundant: None,
            };
        };
        let src_state = v.at(src);
        let dst_state = v.at(dst);
        let incorrect = match src_state {
            St::Stale => Some(true),
            St::MayStale => Some(false),
            St::NotStale => None,
        };
        let redundant = match dst_state {
            St::NotStale => Some(true),
            St::MayStale => Some(false),
            St::Stale => None,
        };
        v.set_at(dst, St::NotStale);
        XferDiag {
            incorrect,
            redundant,
        }
    }

    /// `reset_status(h, side, st)`: compiler-directed state override (dead
    /// variables, deallocation, CPU-final reductions). Two-sided view.
    pub fn reset_status(&mut self, h: Handle, side: DevSide, st: St) {
        self.reset_status_at(h, side.loc(), st);
    }

    /// State override for the copy at `loc`.
    pub fn reset_status_at(&mut self, h: Handle, loc: Loc, st: St) {
        if !self.enabled {
            return;
        }
        if let Some(v) = self.vars.get_mut(&h) {
            v.set_at(loc, st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Handle = Handle(5);

    fn tracked() -> Coherence {
        let mut c = Coherence::new(true);
        c.track(H, "a");
        c
    }

    #[test]
    fn starts_not_stale_both_sides() {
        let c = tracked();
        let v = c.state(H).unwrap();
        assert_eq!(v.cpu, St::NotStale);
        assert_eq!(v.gpu(), St::NotStale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
    }

    #[test]
    fn write_stales_remote() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false);
        assert_eq!(c.state(H).unwrap().cpu, St::Stale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Missing);
        assert_eq!(c.check_read(H, DevSide::Gpu), ReadDiag::Ok);
    }

    #[test]
    fn transfer_clears_staleness() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false);
        let d = c.on_transfer(H, DevSide::Cpu);
        assert_eq!(d.redundant, None, "transfer was needed");
        assert_eq!(d.incorrect, None, "source was fresh");
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
    }

    #[test]
    fn transfer_to_fresh_copy_is_redundant() {
        let mut c = tracked();
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(true));
    }

    #[test]
    fn transfer_from_stale_source_is_incorrect() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU copy stale now
        let d = c.on_transfer(H, DevSide::Gpu); // CPU → GPU copies stale data
        assert_eq!(d.incorrect, Some(true));
    }

    #[test]
    fn partial_overwrite_of_stale_copy_is_may_missing() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU stale
        let diag = c.on_write(H, DevSide::Cpu, false); // partial CPU write
        assert_eq!(diag, ReadDiag::MayMissing);
        assert_eq!(c.state(H).unwrap().cpu, St::MayStale);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::MayMissing);
    }

    #[test]
    fn total_overwrite_refreshes_local() {
        let mut c = tracked();
        c.on_write(H, DevSide::Gpu, false); // CPU stale
        let diag = c.on_write(H, DevSide::Cpu, true);
        assert_eq!(diag, ReadDiag::Ok);
        assert_eq!(c.state(H).unwrap().cpu, St::NotStale);
        // And the GPU copy went stale in turn.
        assert_eq!(c.state(H).unwrap().gpu(), St::Stale);
    }

    #[test]
    fn reset_status_overrides() {
        let mut c = tracked();
        c.on_write(H, DevSide::Cpu, true); // GPU stale
                                           // Compiler proved GPU copy must-dead → mark not-stale so the next
                                           // transfer to it is flagged redundant.
        c.reset_status(H, DevSide::Gpu, St::NotStale);
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(true));
    }

    #[test]
    fn may_dead_gives_may_redundant() {
        let mut c = tracked();
        c.on_write(H, DevSide::Cpu, true); // GPU stale
        c.reset_status(H, DevSide::Gpu, St::MayStale);
        let d = c.on_transfer(H, DevSide::Gpu);
        assert_eq!(d.redundant, Some(false), "may-redundant");
    }

    #[test]
    fn disabled_tracker_is_silent() {
        let mut c = Coherence::new(false);
        c.track(H, "a");
        c.on_write(H, DevSide::Gpu, false);
        assert_eq!(c.check_read(H, DevSide::Cpu), ReadDiag::Ok);
        assert!(c.state(H).is_none());
    }

    #[test]
    fn untrack_forgets() {
        let mut c = tracked();
        c.untrack(H);
        assert!(c.state(H).is_none());
    }
}
