//! Typed buffers and memory spaces.
//!
//! Both the host heap and the simulated device memory are a [`MemSpace`]:
//! an arena of typed [`Buffer`]s addressed by [`Handle`]. Keeping the two
//! spaces as *separate* arenas is the substrate for the paper's premise
//! that "the address spaces for GPU and CPU are separate" — nothing can
//! accidentally read across; data moves only through the transfer engine.

use crate::error::VmError;
use crate::value::{Handle, Value};
use openarc_minic::ScalarTy;

/// Typed storage of one allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum BufData {
    /// `int`/`long` elements.
    I64(Vec<i64>),
    /// `float` elements.
    F32(Vec<f32>),
    /// `double` elements.
    F64(Vec<f64>),
}

impl BufData {
    fn new(elem: ScalarTy, len: usize) -> BufData {
        match elem {
            ScalarTy::Int | ScalarTy::Long => BufData::I64(vec![0; len]),
            ScalarTy::Float => BufData::F32(vec![0.0; len]),
            ScalarTy::Double => BufData::F64(vec![0.0; len]),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            BufData::I64(v) => v.len(),
            BufData::F32(v) => v.len(),
            BufData::F64(v) => v.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One allocation in a memory space.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Element type.
    pub elem: ScalarTy,
    /// The data.
    pub data: BufData,
    /// Debug label (usually the source variable name).
    pub label: String,
}

impl Buffer {
    /// Allocate a zeroed buffer.
    pub fn new(elem: ScalarTy, len: usize, label: impl Into<String>) -> Buffer {
        Buffer {
            elem,
            data: BufData::new(elem, len),
            label: label.into(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (drives the PCIe transfer cost model).
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.elem.size_bytes()
    }

    /// Read element `idx`.
    pub fn get(&self, idx: u64) -> Result<Value, VmError> {
        let i = idx as usize;
        match &self.data {
            BufData::I64(v) => v.get(i).map(|x| Value::Int(*x)),
            BufData::F32(v) => v.get(i).map(|x| Value::F32(*x)),
            BufData::F64(v) => v.get(i).map(|x| Value::F64(*x)),
        }
        .ok_or(VmError::OutOfBounds {
            label: self.label.clone(),
            idx,
            len: self.len(),
        })
    }

    /// Write element `idx` (value is coerced to the element type).
    pub fn set(&mut self, idx: u64, v: Value) -> Result<(), VmError> {
        let i = idx as usize;
        let len = self.len();
        if i >= len {
            return Err(VmError::OutOfBounds {
                label: self.label.clone(),
                idx,
                len,
            });
        }
        match &mut self.data {
            BufData::I64(d) => d[i] = v.as_i64(),
            BufData::F32(d) => d[i] = v.as_f64() as f32,
            BufData::F64(d) => d[i] = v.as_f64(),
        }
        Ok(())
    }

    /// Copy all elements from `src` (types and lengths must match).
    pub fn copy_from(&mut self, src: &Buffer) -> Result<(), VmError> {
        if self.elem != src.elem || self.len() != src.len() {
            return Err(VmError::TransferMismatch {
                src: src.label.clone(),
                dst: self.label.clone(),
            });
        }
        self.data = src.data.clone();
        Ok(())
    }
}

/// An arena of buffers: the host heap or one device's memory.
#[derive(Debug, Default, Clone)]
pub struct MemSpace {
    /// Slot 0 is reserved for the null handle.
    bufs: Vec<Option<Buffer>>,
    /// Total bytes currently allocated.
    allocated_bytes: u64,
    /// High-water mark of allocated bytes.
    peak_bytes: u64,
}

impl MemSpace {
    /// An empty memory space.
    pub fn new() -> MemSpace {
        MemSpace {
            bufs: vec![None],
            allocated_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Allocate a zeroed buffer; returns its handle.
    pub fn alloc(&mut self, elem: ScalarTy, len: usize, label: impl Into<String>) -> Handle {
        self.insert(Buffer::new(elem, len, label))
    }

    /// Insert a pre-built buffer; returns its handle. Identical to
    /// [`MemSpace::alloc`] followed by filling, except the (possibly large)
    /// buffer construction happened outside the arena — callers that build
    /// buffers on a worker thread while this arena is busy publish them here
    /// with a pointer move.
    pub fn insert(&mut self, buf: Buffer) -> Handle {
        self.allocated_bytes += buf.size_bytes();
        self.peak_bytes = self.peak_bytes.max(self.allocated_bytes);
        // Reuse a freed slot if any (handles stay unique per slot lifetime,
        // which is fine: the runtime never holds handles across free).
        if let Some(i) = self.bufs.iter().skip(1).position(|b| b.is_none()) {
            let h = Handle((i + 1) as u32);
            self.bufs[i + 1] = Some(buf);
            h
        } else {
            let h = Handle(self.bufs.len() as u32);
            self.bufs.push(Some(buf));
            h
        }
    }

    /// Free a buffer.
    pub fn free(&mut self, h: Handle) -> Result<(), VmError> {
        let slot = self
            .bufs
            .get_mut(h.0 as usize)
            .ok_or(VmError::BadHandle(h))?;
        match slot.take() {
            Some(b) => {
                self.allocated_bytes -= b.size_bytes();
                Ok(())
            }
            None => Err(VmError::BadHandle(h)),
        }
    }

    /// Borrow a buffer.
    pub fn get(&self, h: Handle) -> Result<&Buffer, VmError> {
        self.bufs
            .get(h.0 as usize)
            .and_then(|b| b.as_ref())
            .ok_or(VmError::BadHandle(h))
    }

    /// Mutably borrow a buffer.
    pub fn get_mut(&mut self, h: Handle) -> Result<&mut Buffer, VmError> {
        self.bufs
            .get_mut(h.0 as usize)
            .and_then(|b| b.as_mut())
            .ok_or(VmError::BadHandle(h))
    }

    /// Read one element.
    pub fn load(&self, h: Handle, idx: u64) -> Result<Value, VmError> {
        self.get(h)?.get(idx)
    }

    /// Write one element.
    pub fn store(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError> {
        self.get_mut(h)?.set(idx, v)
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Peak bytes ever allocated.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.bufs.iter().filter(|b| b.is_some()).count()
    }

    /// The raw slot table, `None` marking the reserved null slot and freed
    /// slots. Slot indices *are* handle values, so a serialized snapshot of
    /// this table preserves every outstanding [`Handle`] — which is what
    /// the on-disk artifact cache relies on when it reconstructs a final
    /// memory image whose globals still point into it.
    pub fn slots(&self) -> &[Option<Buffer>] {
        &self.bufs
    }

    /// Rebuild a memory space from a slot snapshot taken via
    /// [`MemSpace::slots`]. Live bytes are recomputed from the snapshot;
    /// `peak_bytes` restores the high-water mark (it is not derivable from
    /// the final state).
    pub fn restore(slots: Vec<Option<Buffer>>, peak_bytes: u64) -> MemSpace {
        let allocated_bytes = slots.iter().flatten().map(|b| b.size_bytes()).sum();
        let bufs = if slots.is_empty() { vec![None] } else { slots };
        MemSpace {
            bufs,
            allocated_bytes,
            peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_roundtrip() {
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Double, 4, "a");
        m.store(h, 2, Value::F64(3.5)).unwrap();
        assert_eq!(m.load(h, 2).unwrap(), Value::F64(3.5));
        assert_eq!(m.load(h, 0).unwrap(), Value::F64(0.0));
    }

    #[test]
    fn store_coerces_to_elem_type() {
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Float, 1, "f");
        m.store(h, 0, Value::F64(1.1)).unwrap();
        assert_eq!(m.load(h, 0).unwrap(), Value::F32(1.1f64 as f32));
        let h2 = m.alloc(ScalarTy::Int, 1, "i");
        m.store(h2, 0, Value::F64(2.7)).unwrap();
        assert_eq!(m.load(h2, 0).unwrap(), Value::Int(2));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Int, 2, "x");
        assert!(matches!(m.load(h, 2), Err(VmError::OutOfBounds { .. })));
        assert!(matches!(
            m.store(h, 99, Value::Int(0)),
            Err(VmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn free_then_use_detected() {
        let mut m = MemSpace::new();
        let h = m.alloc(ScalarTy::Int, 2, "x");
        m.free(h).unwrap();
        assert!(matches!(m.load(h, 0), Err(VmError::BadHandle(_))));
        assert!(matches!(m.free(h), Err(VmError::BadHandle(_))));
    }

    #[test]
    fn null_handle_invalid() {
        let m = MemSpace::new();
        assert!(matches!(
            m.load(Handle::NULL, 0),
            Err(VmError::BadHandle(_))
        ));
    }

    #[test]
    fn byte_accounting() {
        let mut m = MemSpace::new();
        let h1 = m.alloc(ScalarTy::Double, 10, "a"); // 80 bytes
        let _h2 = m.alloc(ScalarTy::Int, 4, "b"); // 16 bytes
        assert_eq!(m.allocated_bytes(), 96);
        assert_eq!(m.peak_bytes(), 96);
        m.free(h1).unwrap();
        assert_eq!(m.allocated_bytes(), 16);
        assert_eq!(m.peak_bytes(), 96);
        assert_eq!(m.live_buffers(), 1);
    }

    #[test]
    fn slot_reuse_after_free() {
        let mut m = MemSpace::new();
        let h1 = m.alloc(ScalarTy::Int, 1, "a");
        m.free(h1).unwrap();
        let h2 = m.alloc(ScalarTy::Int, 1, "b");
        assert_eq!(h1, h2); // slot reused
        assert_eq!(m.get(h2).unwrap().label, "b");
    }

    #[test]
    fn copy_from_checks_shape() {
        let mut a = Buffer::new(ScalarTy::Double, 3, "a");
        let b = Buffer::new(ScalarTy::Double, 3, "b");
        assert!(a.copy_from(&b).is_ok());
        let c = Buffer::new(ScalarTy::Float, 3, "c");
        assert!(matches!(
            a.copy_from(&c),
            Err(VmError::TransferMismatch { .. })
        ));
        let d = Buffer::new(ScalarTy::Double, 4, "d");
        assert!(matches!(
            a.copy_from(&d),
            Err(VmError::TransferMismatch { .. })
        ));
    }
}
