//! VM runtime errors.

use crate::value::Handle;
use std::fmt;

/// Errors raised during bytecode execution.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Buffer element access past the end.
    OutOfBounds {
        /// Buffer label (source variable name).
        label: String,
        /// Offending index.
        idx: u64,
        /// Buffer length.
        len: usize,
    },
    /// Use of a freed or null handle.
    BadHandle(Handle),
    /// Buffer shapes differ in a copy.
    TransferMismatch {
        /// Source label.
        src: String,
        /// Destination label.
        dst: String,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// A pointer value appeared where a number was required.
    TypeError(String),
    /// Call of an unknown function or intrinsic.
    UnknownFunction(String),
    /// The step budget was exhausted (runaway loop guard).
    StepLimit(u64),
    /// Internal inconsistency (compiler bug).
    Internal(String),
    /// malloc with a non-positive size.
    BadAlloc(i64),
    /// An `update` directive touched data with no live device mapping —
    /// a *program* error per OpenACC (the sequential semantics are fine,
    /// the directives are wrong), unlike [`VmError::Internal`].
    NotPresent {
        /// Variable the update named.
        var: String,
        /// Transfer direction (`true` = host → device).
        to_device: bool,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { label, idx, len } => {
                write!(f, "index {idx} out of bounds for `{label}` (len {len})")
            }
            VmError::BadHandle(h) => write!(f, "use of invalid buffer handle {h}"),
            VmError::TransferMismatch { src, dst } => {
                write!(f, "shape mismatch copying `{src}` → `{dst}`")
            }
            VmError::DivByZero => write!(f, "integer division by zero"),
            VmError::TypeError(m) => write!(f, "type error: {m}"),
            VmError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            VmError::StepLimit(n) => write!(f, "step limit {n} exhausted"),
            VmError::Internal(m) => write!(f, "internal VM error: {m}"),
            VmError::BadAlloc(n) => write!(f, "malloc of non-positive size {n}"),
            VmError::NotPresent { var, to_device } => {
                let dir = if *to_device { "device" } else { "host" };
                write!(
                    f,
                    "update {dir}({var}): `{var}` is not present on the device \
                     (no enclosing data region maps it)"
                )
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VmError::OutOfBounds {
            label: "a".into(),
            idx: 5,
            len: 4,
        };
        assert!(e.to_string().contains("out of bounds"));
        assert!(VmError::DivByZero.to_string().contains("division"));
        assert!(VmError::UnknownFunction("f".into())
            .to_string()
            .contains("`f`"));
    }
}
