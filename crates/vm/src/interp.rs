//! Resumable bytecode interpreter.
//!
//! Execution state lives in a [`ThreadState`] that advances one instruction
//! per [`ThreadState::step`] call. This resumability is what lets the GPU
//! simulator run gangs/workers in *lockstep* (round-robin stepping), which
//! in turn makes data races from missed privatization manifest
//! deterministically — the behaviour the paper's kernel verification has to
//! detect.
//!
//! Memory and globals are accessed through the [`Env`] trait, so the same
//! bytecode runs against host memory, instrumented host memory, or
//! simulated device memory.

use crate::bytecode::{Chunk, Instr, Intrinsic, Module};
use crate::error::VmError;
use crate::mem::MemSpace;
use crate::value::{Handle, Value};
use openarc_minic::ast::{BinOp, UnOp};
use openarc_minic::{ScalarTy, Ty};

/// Environment a thread executes against: global slots + buffer memory.
pub trait Env {
    /// Read global slot `slot`.
    fn load_global(&mut self, slot: u16) -> Result<Value, VmError>;
    /// Write global slot `slot`.
    fn store_global(&mut self, slot: u16, v: Value) -> Result<(), VmError>;
    /// Read one buffer element.
    fn load_elem(&mut self, h: Handle, idx: u64) -> Result<Value, VmError>;
    /// Write one buffer element.
    fn store_elem(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError>;
    /// Allocate a buffer of `len` elements, labelled `label` for reports.
    fn malloc(&mut self, elem: ScalarTy, len: u64, label: &str) -> Result<Handle, VmError>;
    /// Free a buffer.
    fn free(&mut self, h: Handle) -> Result<(), VmError>;

    /// Execute an opaque runtime operation (directive lowering). The
    /// default environment has no runtime attached.
    fn host_op(&mut self, id: u16) -> Result<(), VmError> {
        Err(VmError::Internal(format!(
            "host op {id} with no runtime attached"
        )))
    }
}

/// Result of a single step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// More instructions remain.
    Continue,
    /// The entry function returned.
    Done(Option<Value>),
}

#[derive(Debug, Clone)]
struct Frame {
    chunk: u16,
    pc: usize,
    base: usize,
}

/// One executing activation of a function (a host thread or one simulated
/// GPU thread).
#[derive(Debug, Clone)]
pub struct ThreadState {
    stack: Vec<Value>,
    locals: Vec<Value>,
    frames: Vec<Frame>,
    /// Executed instruction count (feeds the cost model).
    pub steps: u64,
    done: Option<Option<Value>>,
}

impl ThreadState {
    /// Create a thread entering `func` with `args`.
    pub fn new(module: &Module, func: &str, args: &[Value]) -> Result<ThreadState, VmError> {
        let idx = *module
            .func_index
            .get(func)
            .ok_or_else(|| VmError::UnknownFunction(func.to_string()))?;
        let chunk = &module.chunks[idx as usize];
        if args.len() != chunk.n_params as usize {
            return Err(VmError::Internal(format!(
                "function `{func}` expects {} args, got {}",
                chunk.n_params,
                args.len()
            )));
        }
        let mut locals = vec![Value::Int(0); chunk.n_locals as usize];
        for (i, a) in args.iter().enumerate() {
            locals[i] = coerce_local(*a, &chunk.local_tys[i]);
        }
        Ok(ThreadState {
            stack: Vec::with_capacity(16),
            locals,
            frames: vec![Frame {
                chunk: idx,
                pc: 0,
                base: 0,
            }],
            steps: 0,
            done: None,
        })
    }

    /// True once the entry function has returned.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// The return value, if finished.
    pub fn result(&self) -> Option<Option<Value>> {
        self.done
    }

    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack
            .pop()
            .ok_or_else(|| VmError::Internal("stack underflow".into()))
    }

    /// Execute one instruction.
    pub fn step(&mut self, module: &Module, env: &mut dyn Env) -> Result<Step, VmError> {
        if let Some(v) = self.done {
            return Ok(Step::Done(v));
        }
        self.steps += 1;
        let frame = self.frames.last_mut().expect("active frame");
        let chunk: &Chunk = &module.chunks[frame.chunk as usize];
        let Some(instr) = chunk.code.get(frame.pc).copied() else {
            return Err(VmError::Internal(format!(
                "pc {} out of range in `{}`",
                frame.pc, chunk.name
            )));
        };
        frame.pc += 1;
        let base = frame.base;
        match instr {
            Instr::Const(i) => self.stack.push(chunk.consts[i as usize]),
            Instr::LoadLocal(s) => self.stack.push(self.locals[base + s as usize]),
            Instr::StoreLocal(s) => {
                let v = self.pop()?;
                self.locals[base + s as usize] = v;
            }
            Instr::LoadGlobal(s) => {
                let v = env.load_global(s)?;
                self.stack.push(v);
            }
            Instr::StoreGlobal(s) => {
                let v = self.pop()?;
                env.store_global(s, v)?;
            }
            Instr::LoadElem => {
                let idx = self.pop()?;
                let h = self.pop()?;
                let h = as_handle(h)?;
                let v = env.load_elem(h, index_of(idx)?)?;
                self.stack.push(v);
            }
            Instr::StoreElem => {
                let v = self.pop()?;
                let idx = self.pop()?;
                let h = self.pop()?;
                let h = as_handle(h)?;
                env.store_elem(h, index_of(idx)?, v)?;
            }
            Instr::Bin(op) => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(eval_bin(op, a, b)?);
            }
            Instr::Un(op) => {
                let a = self.pop()?;
                self.stack.push(eval_un(op, a)?);
            }
            Instr::Cast(ty) => {
                let a = self.pop()?;
                match a {
                    Value::Ptr(_) => self.stack.push(a),
                    other => self.stack.push(other.cast(ty)),
                }
            }
            Instr::Jump(t) => {
                self.frames.last_mut().expect("frame").pc = t as usize;
            }
            Instr::JumpIfFalse(t) => {
                let v = self.pop()?;
                if !v.truthy() {
                    self.frames.last_mut().expect("frame").pc = t as usize;
                }
            }
            Instr::JumpIfTrue(t) => {
                let v = self.pop()?;
                if v.truthy() {
                    self.frames.last_mut().expect("frame").pc = t as usize;
                }
            }
            Instr::Call(fidx) => {
                let callee = &module.chunks[fidx as usize];
                let n = callee.n_params as usize;
                if self.stack.len() < n {
                    return Err(VmError::Internal("stack underflow in call".into()));
                }
                let new_base = self.locals.len();
                self.locals
                    .resize(new_base + callee.n_locals as usize, Value::Int(0));
                for i in (0..n).rev() {
                    let v = self.pop()?;
                    self.locals[new_base + i] = coerce_local(v, &callee.local_tys[i]);
                }
                self.frames.push(Frame {
                    chunk: fidx,
                    pc: 0,
                    base: new_base,
                });
            }
            Instr::CallIntrinsic(intr) => {
                let v = if intr.arity() == 2 {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    eval_intrinsic2(intr, a, b)?
                } else {
                    let a = self.pop()?;
                    eval_intrinsic1(intr, a)?
                };
                self.stack.push(v);
            }
            Instr::Malloc(elem, label) => {
                let len = self.pop()?.as_i64();
                if len <= 0 {
                    return Err(VmError::BadAlloc(len));
                }
                // Size arrives in *bytes* (C idiom `n * sizeof(double)`).
                let elems = (len as u64).div_ceil(elem.size_bytes());
                let name = chunk
                    .labels
                    .get(label as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("malloc");
                let h = env.malloc(elem, elems, name)?;
                self.stack.push(Value::Ptr(h));
            }
            Instr::Free => {
                let h = as_handle(self.pop()?)?;
                env.free(h)?;
            }
            Instr::Return => {
                let v = self.pop()?;
                self.ret(Some(v));
            }
            Instr::ReturnVoid => {
                self.ret(None);
            }
            Instr::HostOp(id) => {
                env.host_op(id)?;
            }
            Instr::Pop => {
                self.pop()?;
            }
            Instr::Dup => {
                let v = *self
                    .stack
                    .last()
                    .ok_or_else(|| VmError::Internal("stack underflow".into()))?;
                self.stack.push(v);
            }
        }
        if let Some(v) = self.done {
            Ok(Step::Done(v))
        } else {
            Ok(Step::Continue)
        }
    }

    fn ret(&mut self, v: Option<Value>) {
        let frame = self.frames.pop().expect("frame");
        self.locals.truncate(frame.base);
        if self.frames.is_empty() {
            self.done = Some(v);
        } else if let Some(v) = v {
            self.stack.push(v);
        }
    }

    /// Run to completion with a step budget.
    pub fn run(
        &mut self,
        module: &Module,
        env: &mut dyn Env,
        budget: u64,
    ) -> Result<Option<Value>, VmError> {
        loop {
            if self.steps >= budget {
                return Err(VmError::StepLimit(budget));
            }
            match self.step(module, env)? {
                Step::Continue => {}
                Step::Done(v) => return Ok(v),
            }
        }
    }
}

fn as_handle(v: Value) -> Result<Handle, VmError> {
    match v {
        Value::Ptr(h) if !h.is_null() => Ok(h),
        Value::Ptr(h) => Err(VmError::BadHandle(h)),
        other => Err(VmError::TypeError(format!(
            "expected pointer, found {other}"
        ))),
    }
}

fn index_of(v: Value) -> Result<u64, VmError> {
    let i = v.as_i64();
    if i < 0 {
        Err(VmError::TypeError(format!("negative index {i}")))
    } else {
        Ok(i as u64)
    }
}

fn coerce_local(v: Value, ty: &Ty) -> Value {
    match ty {
        Ty::Scalar(s) => match v {
            Value::Ptr(_) => v,
            other => other.cast(*s),
        },
        _ => v,
    }
}

/// Evaluate a binary operator with C-style promotion. `float ⊕ float` stays
/// in `f32` — the single-precision rounding divergence between CPU and GPU
/// paths that motivates the paper's configurable comparison margins.
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, VmError> {
    use BinOp::*;
    // Pointer comparisons.
    if let (Value::Ptr(x), Value::Ptr(y)) = (a, b) {
        return match op {
            Eq => Ok(Value::Int((x == y) as i64)),
            Ne => Ok(Value::Int((x != y) as i64)),
            _ => Err(VmError::TypeError(format!("operator `{op}` on pointers"))),
        };
    }
    if matches!(a, Value::Ptr(_)) || matches!(b, Value::Ptr(_)) {
        return Err(VmError::TypeError(format!(
            "operator `{op}` mixes pointer and number"
        )));
    }
    let int_only = matches!(op, Rem | BitAnd | BitOr | BitXor | Shl | Shr);
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            Add => Ok(Value::Int(x.wrapping_add(y))),
            Sub => Ok(Value::Int(x.wrapping_sub(y))),
            Mul => Ok(Value::Int(x.wrapping_mul(y))),
            Div => {
                if y == 0 {
                    Err(VmError::DivByZero)
                } else {
                    Ok(Value::Int(x.wrapping_div(y)))
                }
            }
            Rem => {
                if y == 0 {
                    Err(VmError::DivByZero)
                } else {
                    Ok(Value::Int(x.wrapping_rem(y)))
                }
            }
            Lt => Ok(Value::Int((x < y) as i64)),
            Gt => Ok(Value::Int((x > y) as i64)),
            Le => Ok(Value::Int((x <= y) as i64)),
            Ge => Ok(Value::Int((x >= y) as i64)),
            Eq => Ok(Value::Int((x == y) as i64)),
            Ne => Ok(Value::Int((x != y) as i64)),
            BitAnd => Ok(Value::Int(x & y)),
            BitOr => Ok(Value::Int(x | y)),
            BitXor => Ok(Value::Int(x ^ y)),
            Shl => Ok(Value::Int(x.wrapping_shl(y as u32))),
            Shr => Ok(Value::Int(x.wrapping_shr(y as u32))),
            And => Ok(Value::Int(((x != 0) && (y != 0)) as i64)),
            Or => Ok(Value::Int(((x != 0) || (y != 0)) as i64)),
        },
        _ if int_only => Err(VmError::TypeError(format!(
            "operator `{op}` requires integers"
        ))),
        // Single precision when no f64 operand is involved.
        (x, y) if !matches!(x, Value::F64(_)) && !matches!(y, Value::F64(_)) => {
            let xf = x.as_f64() as f32;
            let yf = y.as_f64() as f32;
            eval_float_op(op, xf as f64, yf as f64, true)
        }
        (x, y) => eval_float_op(op, x.as_f64(), y.as_f64(), false),
    }
}

fn eval_float_op(op: BinOp, x: f64, y: f64, single: bool) -> Result<Value, VmError> {
    use BinOp::*;
    let num = |v: f64| {
        if single {
            Value::F32(v as f32)
        } else {
            Value::F64(v)
        }
    };
    Ok(match op {
        Add => num(if single {
            (x as f32 + y as f32) as f64
        } else {
            x + y
        }),
        Sub => num(if single {
            (x as f32 - y as f32) as f64
        } else {
            x - y
        }),
        Mul => num(if single {
            (x as f32 * y as f32) as f64
        } else {
            x * y
        }),
        Div => num(if single {
            (x as f32 / y as f32) as f64
        } else {
            x / y
        }),
        Lt => Value::Int((x < y) as i64),
        Gt => Value::Int((x > y) as i64),
        Le => Value::Int((x <= y) as i64),
        Ge => Value::Int((x >= y) as i64),
        Eq => Value::Int((x == y) as i64),
        Ne => Value::Int((x != y) as i64),
        And => Value::Int(((x != 0.0) && (y != 0.0)) as i64),
        Or => Value::Int(((x != 0.0) || (y != 0.0)) as i64),
        _ => return Err(VmError::TypeError(format!("operator `{op}` on floats"))),
    })
}

/// Evaluate a unary operator.
pub fn eval_un(op: UnOp, a: Value) -> Result<Value, VmError> {
    match (op, a) {
        (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(v.wrapping_neg())),
        (UnOp::Neg, Value::F32(v)) => Ok(Value::F32(-v)),
        (UnOp::Neg, Value::F64(v)) => Ok(Value::F64(-v)),
        (UnOp::Not, v) => Ok(Value::Int(!v.truthy() as i64)),
        (UnOp::BitNot, Value::Int(v)) => Ok(Value::Int(!v)),
        (op, v) => Err(VmError::TypeError(format!("unary `{op}` on {v}"))),
    }
}

fn eval_intrinsic1(intr: Intrinsic, a: Value) -> Result<Value, VmError> {
    if matches!(a, Value::Ptr(_)) {
        return Err(VmError::TypeError("intrinsic on pointer".into()));
    }
    let x = a.as_f64();
    Ok(match intr {
        Intrinsic::Sqrt => Value::F64(x.sqrt()),
        Intrinsic::Fabs => Value::F64(x.abs()),
        Intrinsic::Exp => Value::F64(x.exp()),
        Intrinsic::Log => Value::F64(x.ln()),
        Intrinsic::Sin => Value::F64(x.sin()),
        Intrinsic::Cos => Value::F64(x.cos()),
        Intrinsic::Floor => Value::F64(x.floor()),
        Intrinsic::Ceil => Value::F64(x.ceil()),
        Intrinsic::Abs => Value::Int(a.as_i64().wrapping_abs()),
        Intrinsic::SqrtF => Value::F32((x as f32).sqrt()),
        Intrinsic::ExpF => Value::F32((x as f32).exp()),
        Intrinsic::FabsF => Value::F32((x as f32).abs()),
        Intrinsic::LogF => Value::F32((x as f32).ln()),
        other => return Err(VmError::Internal(format!("{other:?} is not unary"))),
    })
}

fn eval_intrinsic2(intr: Intrinsic, a: Value, b: Value) -> Result<Value, VmError> {
    if matches!(a, Value::Ptr(_)) || matches!(b, Value::Ptr(_)) {
        return Err(VmError::TypeError("intrinsic on pointer".into()));
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    Ok(match intr {
        Intrinsic::Pow => Value::F64(x.powf(y)),
        Intrinsic::PowF => Value::F32((x as f32).powf(y as f32)),
        Intrinsic::Fmin => Value::F64(x.min(y)),
        Intrinsic::Fmax => Value::F64(x.max(y)),
        Intrinsic::Min | Intrinsic::Max => {
            let int_mode = matches!(a, Value::Int(_)) && matches!(b, Value::Int(_));
            let take_min = intr == Intrinsic::Min;
            if int_mode {
                let (ai, bi) = (a.as_i64(), b.as_i64());
                Value::Int(if take_min { ai.min(bi) } else { ai.max(bi) })
            } else {
                Value::F64(if take_min { x.min(y) } else { x.max(y) })
            }
        }
        other => return Err(VmError::Internal(format!("{other:?} is not binary"))),
    })
}

/// A plain environment over a single [`MemSpace`] — used for host execution
/// in tests and by the runtime crate as the host half of the machine.
#[derive(Debug, Clone, Default)]
pub struct BasicEnv {
    /// Global slot values.
    pub globals: Vec<Value>,
    /// Backing memory.
    pub mem: MemSpace,
}

impl BasicEnv {
    /// Prepare globals for `module`: arrays are allocated, scalars zeroed.
    pub fn for_module(module: &Module) -> BasicEnv {
        let mut mem = MemSpace::new();
        let mut globals = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let v = match &g.ty {
                Ty::Array(s, dims) => {
                    let len: u64 = dims.iter().product();
                    Value::Ptr(mem.alloc(*s, len as usize, g.name.clone()))
                }
                Ty::Ptr(_) => Value::Ptr(Handle::NULL),
                Ty::Scalar(s) => Value::zero(*s),
                Ty::Void => Value::Int(0),
            };
            globals.push(v);
        }
        BasicEnv { globals, mem }
    }
}

impl Env for BasicEnv {
    fn load_global(&mut self, slot: u16) -> Result<Value, VmError> {
        self.globals
            .get(slot as usize)
            .copied()
            .ok_or_else(|| VmError::Internal(format!("global slot {slot} out of range")))
    }

    fn store_global(&mut self, slot: u16, v: Value) -> Result<(), VmError> {
        let g = self
            .globals
            .get_mut(slot as usize)
            .ok_or_else(|| VmError::Internal(format!("global slot {slot} out of range")))?;
        *g = v;
        Ok(())
    }

    fn load_elem(&mut self, h: Handle, idx: u64) -> Result<Value, VmError> {
        self.mem.load(h, idx)
    }

    fn store_elem(&mut self, h: Handle, idx: u64, v: Value) -> Result<(), VmError> {
        self.mem.store(h, idx, v)
    }

    fn malloc(&mut self, elem: ScalarTy, len: u64, label: &str) -> Result<Handle, VmError> {
        Ok(self.mem.alloc(elem, len as usize, label))
    }

    fn free(&mut self, h: Handle) -> Result<(), VmError> {
        self.mem.free(h)
    }
}

/// Compile-free helper: run `func` of `module` in `env` to completion.
pub fn call_function(
    module: &Module,
    env: &mut dyn Env,
    func: &str,
    args: &[Value],
    budget: u64,
) -> Result<Option<Value>, VmError> {
    let mut t = ThreadState::new(module, func, args)?;
    t.run(module, env, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, GLOBALS_INIT};
    use openarc_minic::frontend;

    const BUDGET: u64 = 10_000_000;

    fn run_main(src: &str) -> (Module, BasicEnv) {
        let (p, s) = frontend(src).expect("frontend");
        let m = compile(&p, &s).expect("compile");
        let mut env = BasicEnv::for_module(&m);
        call_function(&m, &mut env, GLOBALS_INIT, &[], BUDGET).unwrap();
        call_function(&m, &mut env, "main", &[], BUDGET).unwrap();
        (m, env)
    }

    fn global_val(m: &Module, env: &BasicEnv, name: &str) -> Value {
        env.globals[m.global_slot(name).unwrap() as usize]
    }

    #[test]
    fn arithmetic_and_assignment() {
        let (m, env) = run_main("int n;\ndouble d;\nvoid main() { n = 2 + 3 * 4; d = 1.5 * 2.0; }");
        assert_eq!(global_val(&m, &env, "n"), Value::Int(14));
        assert_eq!(global_val(&m, &env, "d"), Value::F64(3.0));
    }

    #[test]
    fn loops_and_array_sum() {
        let (m, env) = run_main(
            "double a[10];\ndouble s;\nvoid main() { int i; for (i = 0; i < 10; i++) { a[i] = (double) i; } s = 0.0; for (i = 0; i < 10; i++) { s += a[i]; } }",
        );
        assert_eq!(global_val(&m, &env, "s"), Value::F64(45.0));
    }

    #[test]
    fn two_dimensional_arrays() {
        let (m, env) = run_main(
            "double g[3][4];\ndouble s;\nvoid main() { int i; int j; for (i=0;i<3;i++) for (j=0;j<4;j++) g[i][j] = (double)(i*10+j); s = g[2][3]; }",
        );
        assert_eq!(global_val(&m, &env, "s"), Value::F64(23.0));
    }

    #[test]
    fn user_function_calls() {
        let (m, env) = run_main(
            "double sq(double x) { return x * x; }\nint fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\ndouble d;\nint k;\nvoid main() { d = sq(3.0); k = fib(10); }",
        );
        assert_eq!(global_val(&m, &env, "d"), Value::F64(9.0));
        assert_eq!(global_val(&m, &env, "k"), Value::Int(55));
    }

    #[test]
    fn malloc_free_and_pointer_indexing() {
        let (m, env) = run_main(
            "double *p;\ndouble s;\nvoid main() { int i; p = (double *) malloc(8 * sizeof(double)); for (i=0;i<8;i++) p[i] = 2.0; s = p[7]; }",
        );
        assert_eq!(global_val(&m, &env, "s"), Value::F64(2.0));
        // p still allocated
        assert_eq!(env.mem.live_buffers(), 1);
    }

    #[test]
    fn pointer_swap() {
        let (m, env) = run_main(
            "double *p;\ndouble *q;\ndouble *t;\ndouble s;\nvoid main() { p = (double *) malloc(sizeof(double)); q = (double *) malloc(sizeof(double)); p[0] = 1.0; q[0] = 2.0; t = p; p = q; q = t; s = p[0]; }",
        );
        assert_eq!(global_val(&m, &env, "s"), Value::F64(2.0));
    }

    #[test]
    fn float_single_precision_rounding() {
        // 0.1f + 0.2f in f32 differs from the f64 sum.
        let (m, env) =
            run_main("float f;\ndouble d;\nvoid main() { f = 0.1f + 0.2f; d = 0.1 + 0.2; }");
        let f = match global_val(&m, &env, "f") {
            Value::F32(v) => v,
            other => panic!("{other:?}"),
        };
        let d = match global_val(&m, &env, "d") {
            Value::F64(v) => v,
            other => panic!("{other:?}"),
        };
        assert_ne!(f as f64, d);
        assert!((f as f64 - d).abs() < 1e-7);
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the RHS must not run when LHS decides.
        let (m, env) = run_main(
            "int n;\nint ok;\nvoid main() { n = 0; if (n != 0 && 10 / n > 1) { ok = 1; } else { ok = 2; } }",
        );
        assert_eq!(global_val(&m, &env, "ok"), Value::Int(2));
    }

    #[test]
    fn ternary_and_intrinsics() {
        let (m, env) = run_main(
            "double d;\nint k;\nvoid main() { d = sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0); k = max(3, 9) + min(2, 5) + abs(-4); d = d + (k > 10 ? 0.5 : 0.25); }",
        );
        assert_eq!(global_val(&m, &env, "k"), Value::Int(15));
        assert_eq!(global_val(&m, &env, "d"), Value::F64(14.5));
    }

    #[test]
    fn break_and_continue() {
        let (m, env) = run_main(
            "int s;\nvoid main() { int i; s = 0; for (i = 0; i < 100; i++) { if (i % 2 == 0) continue; if (i > 8) break; s += i; } }",
        );
        // 1 + 3 + 5 + 7 = 16
        assert_eq!(global_val(&m, &env, "s"), Value::Int(16));
    }

    #[test]
    fn while_loop() {
        let (m, env) = run_main("int n;\nvoid main() { n = 1; while (n < 100) { n = n * 2; } }");
        assert_eq!(global_val(&m, &env, "n"), Value::Int(128));
    }

    #[test]
    fn global_initializers_applied() {
        let (m, env) =
            run_main("int n = 5;\ndouble e = 2.5;\nint m2;\nvoid main() { m2 = n * 2; }");
        assert_eq!(global_val(&m, &env, "m2"), Value::Int(10));
        assert_eq!(global_val(&m, &env, "e"), Value::F64(2.5));
    }

    #[test]
    fn div_by_zero_reported() {
        let (p, s) = frontend("int n;\nvoid main() { n = 1 / 0; }").unwrap();
        let m = compile(&p, &s).unwrap();
        let mut env = BasicEnv::for_module(&m);
        let r = call_function(&m, &mut env, "main", &[], BUDGET);
        assert_eq!(r, Err(VmError::DivByZero));
    }

    #[test]
    fn out_of_bounds_reported() {
        let (p, s) = frontend("double a[4];\nvoid main() { a[9] = 1.0; }").unwrap();
        let m = compile(&p, &s).unwrap();
        let mut env = BasicEnv::for_module(&m);
        let r = call_function(&m, &mut env, "main", &[], BUDGET);
        assert!(matches!(r, Err(VmError::OutOfBounds { .. })));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let (p, s) = frontend("void main() { while (1) { } }").unwrap();
        let m = compile(&p, &s).unwrap();
        let mut env = BasicEnv::for_module(&m);
        let r = call_function(&m, &mut env, "main", &[], 1000);
        assert!(matches!(r, Err(VmError::StepLimit(_))));
    }

    #[test]
    fn null_pointer_use_reported() {
        let (p, s) = frontend("double *p;\nvoid main() { p[0] = 1.0; }").unwrap();
        let m = compile(&p, &s).unwrap();
        let mut env = BasicEnv::for_module(&m);
        let r = call_function(&m, &mut env, "main", &[], BUDGET);
        assert!(matches!(r, Err(VmError::BadHandle(_))));
    }

    #[test]
    fn function_args_coerced_to_param_types() {
        let (m, env) = run_main(
            "double half(double x) { return x / 2.0; }\ndouble d;\nvoid main() { d = half(5); }",
        );
        assert_eq!(global_val(&m, &env, "d"), Value::F64(2.5));
    }

    #[test]
    fn thread_state_resumable_stepping() {
        let (p, s) = frontend("int n;\nvoid main() { n = 1; n = n + 1; n = n + 1; }").unwrap();
        let m = compile(&p, &s).unwrap();
        let mut env = BasicEnv::for_module(&m);
        let mut t = ThreadState::new(&m, "main", &[]).unwrap();
        let mut steps = 0;
        while !t.is_done() {
            t.step(&m, &mut env).unwrap();
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(env.globals[0], Value::Int(3));
        assert_eq!(t.steps, steps);
    }

    #[test]
    fn compound_elementwise_assign() {
        let (m, env) = run_main(
            "double a[4];\ndouble s;\nvoid main() { int i; for (i=0;i<4;i++) a[i] = 1.0; for (i=0;i<4;i++) a[i] += 0.5; s = a[0] + a[3]; }",
        );
        assert_eq!(global_val(&m, &env, "s"), Value::F64(3.0));
    }

    #[test]
    fn modulo_and_bitops() {
        let (m, env) = run_main("int a;\nint b;\nvoid main() { a = 17 % 5; b = (3 << 2) | 1; }");
        assert_eq!(global_val(&m, &env, "a"), Value::Int(2));
        assert_eq!(global_val(&m, &env, "b"), Value::Int(13));
    }
}
