//! Binary codec for compiled [`Module`]s, runtime [`Value`]s and
//! [`MemSpace`] snapshots — the bytecode half of the cache's binary
//! artifact format (`docs/FORMAT.md` §Module/§MemSpace).
//!
//! Mirrors [`crate::jsonio`] in what it preserves — floats (constants,
//! buffer contents) are stored as IEEE-754 bit patterns so `NaN`,
//! infinities and `-0.0` survive exactly, and buffer slot indices are
//! preserved so outstanding [`Handle`]s in restored globals stay valid —
//! but encodes to fixed-width little-endian primitives with one-byte
//! opcodes for instructions, intrinsics and value tags. Decoding never
//! panics; malformed bytes come back as `Err(String)`.

use crate::bytecode::{Chunk, GlobalInfo, Instr, Intrinsic, Module};
use crate::mem::{BufData, Buffer, MemSpace};
use crate::value::{Handle, Value};
use openarc_minic::binio::{
    read_binop, read_scalar, read_ty, read_unop, write_binop, write_scalar, write_ty, write_unop,
};
use openarc_trace::bin::{Reader, Writer};

type R<T> = Result<T, String>;

// ---------------------------------------------------------------------------
// Values

/// Encode a runtime value: a one-byte tag (`Int`=0, `F32`=1, `F64`=2,
/// `Ptr`=3) followed by the payload; floats as bit patterns.
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Int(x) => {
            w.put_u8(0);
            w.put_i64(*x);
        }
        Value::F32(x) => {
            w.put_u8(1);
            w.put_f32(*x);
        }
        Value::F64(x) => {
            w.put_u8(2);
            w.put_f64(*x);
        }
        Value::Ptr(h) => {
            w.put_u8(3);
            w.put_u32(h.0);
        }
    }
}

/// Decode a value written by [`write_value`].
pub fn read_value(r: &mut Reader<'_>) -> R<Value> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::F32(r.f32()?)),
        2 => Ok(Value::F64(r.f64()?)),
        3 => Ok(Value::Ptr(Handle(r.u32()?))),
        c => Err(r.err(&format!("unknown value tag {c}"))),
    }
}

// ---------------------------------------------------------------------------
// Memory

fn write_buffer(w: &mut Writer, b: &Buffer) {
    write_scalar(w, b.elem);
    w.put_str(&b.label);
    match &b.data {
        BufData::I64(v) => {
            w.put_u8(0);
            w.put_seq_len(v.len());
            for x in v {
                w.put_i64(*x);
            }
        }
        BufData::F32(v) => {
            w.put_u8(1);
            w.put_seq_len(v.len());
            for x in v {
                w.put_f32(*x);
            }
        }
        BufData::F64(v) => {
            w.put_u8(2);
            w.put_seq_len(v.len());
            for x in v {
                w.put_f64(*x);
            }
        }
    }
}

fn read_buffer(r: &mut Reader<'_>) -> R<Buffer> {
    let elem = read_scalar(r)?;
    let label = r.string()?;
    let data = match r.u8()? {
        0 => {
            let n = r.seq_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            BufData::I64(v)
        }
        1 => {
            let n = r.seq_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f32()?);
            }
            BufData::F32(v)
        }
        2 => {
            let n = r.seq_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            BufData::F64(v)
        }
        c => return Err(r.err(&format!("unknown buffer data tag {c}"))),
    };
    Ok(Buffer { elem, data, label })
}

/// Encode a memory-space snapshot, preserving slot numbering (freed
/// slots serialize as an absent `Option`).
pub fn write_memspace(w: &mut Writer, m: &MemSpace) {
    w.put_u64(m.peak_bytes());
    w.put_seq_len(m.slots().len());
    for s in m.slots() {
        match s {
            None => w.put_u8(0),
            Some(b) => {
                w.put_u8(1);
                write_buffer(w, b);
            }
        }
    }
}

/// Decode a memory space written by [`write_memspace`].
pub fn read_memspace(r: &mut Reader<'_>) -> R<MemSpace> {
    let peak = r.u64()?;
    let n = r.seq_len()?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(match r.u8()? {
            0 => None,
            1 => Some(read_buffer(r)?),
            c => return Err(r.err(&format!("invalid Option tag {c:#04x}"))),
        });
    }
    Ok(MemSpace::restore(slots, peak))
}

// ---------------------------------------------------------------------------
// Bytecode

/// The 19 intrinsics in normative code order (codes 0–18).
const INTRINSICS: [Intrinsic; 19] = [
    Intrinsic::Sqrt,
    Intrinsic::Fabs,
    Intrinsic::Exp,
    Intrinsic::Log,
    Intrinsic::Pow,
    Intrinsic::Sin,
    Intrinsic::Cos,
    Intrinsic::Floor,
    Intrinsic::Ceil,
    Intrinsic::Fmin,
    Intrinsic::Fmax,
    Intrinsic::Abs,
    Intrinsic::Min,
    Intrinsic::Max,
    Intrinsic::SqrtF,
    Intrinsic::ExpF,
    Intrinsic::FabsF,
    Intrinsic::LogF,
    Intrinsic::PowF,
];

fn write_instr(w: &mut Writer, i: &Instr) {
    match i {
        Instr::Const(x) => {
            w.put_u8(0);
            w.put_u16(*x);
        }
        Instr::LoadLocal(x) => {
            w.put_u8(1);
            w.put_u16(*x);
        }
        Instr::StoreLocal(x) => {
            w.put_u8(2);
            w.put_u16(*x);
        }
        Instr::LoadGlobal(x) => {
            w.put_u8(3);
            w.put_u16(*x);
        }
        Instr::StoreGlobal(x) => {
            w.put_u8(4);
            w.put_u16(*x);
        }
        Instr::LoadElem => w.put_u8(5),
        Instr::StoreElem => w.put_u8(6),
        Instr::Bin(op) => {
            w.put_u8(7);
            write_binop(w, *op);
        }
        Instr::Un(op) => {
            w.put_u8(8);
            write_unop(w, *op);
        }
        Instr::Cast(s) => {
            w.put_u8(9);
            write_scalar(w, *s);
        }
        Instr::Jump(x) => {
            w.put_u8(10);
            w.put_u32(*x);
        }
        Instr::JumpIfFalse(x) => {
            w.put_u8(11);
            w.put_u32(*x);
        }
        Instr::JumpIfTrue(x) => {
            w.put_u8(12);
            w.put_u32(*x);
        }
        Instr::Call(x) => {
            w.put_u8(13);
            w.put_u16(*x);
        }
        Instr::CallIntrinsic(i) => {
            w.put_u8(14);
            let code = INTRINSICS.iter().position(|k| k == i).unwrap() as u8;
            w.put_u8(code);
        }
        Instr::Malloc(s, l) => {
            w.put_u8(15);
            write_scalar(w, *s);
            w.put_u16(*l);
        }
        Instr::Free => w.put_u8(16),
        Instr::Return => w.put_u8(17),
        Instr::ReturnVoid => w.put_u8(18),
        Instr::HostOp(x) => {
            w.put_u8(19);
            w.put_u16(*x);
        }
        Instr::Pop => w.put_u8(20),
        Instr::Dup => w.put_u8(21),
    }
}

fn read_instr(r: &mut Reader<'_>) -> R<Instr> {
    Ok(match r.u8()? {
        0 => Instr::Const(r.u16()?),
        1 => Instr::LoadLocal(r.u16()?),
        2 => Instr::StoreLocal(r.u16()?),
        3 => Instr::LoadGlobal(r.u16()?),
        4 => Instr::StoreGlobal(r.u16()?),
        5 => Instr::LoadElem,
        6 => Instr::StoreElem,
        7 => Instr::Bin(read_binop(r)?),
        8 => Instr::Un(read_unop(r)?),
        9 => Instr::Cast(read_scalar(r)?),
        10 => Instr::Jump(r.u32()?),
        11 => Instr::JumpIfFalse(r.u32()?),
        12 => Instr::JumpIfTrue(r.u32()?),
        13 => Instr::Call(r.u16()?),
        14 => {
            let c = r.u8()?;
            Instr::CallIntrinsic(
                INTRINSICS
                    .get(c as usize)
                    .copied()
                    .ok_or_else(|| r.err(&format!("unknown intrinsic code {c}")))?,
            )
        }
        15 => Instr::Malloc(read_scalar(r)?, r.u16()?),
        16 => Instr::Free,
        17 => Instr::Return,
        18 => Instr::ReturnVoid,
        19 => Instr::HostOp(r.u16()?),
        20 => Instr::Pop,
        21 => Instr::Dup,
        c => return Err(r.err(&format!("unknown instr opcode {c}"))),
    })
}

fn write_chunk(w: &mut Writer, c: &Chunk) {
    w.put_str(&c.name);
    w.put_seq_len(c.code.len());
    for i in &c.code {
        write_instr(w, i);
    }
    w.put_seq_len(c.consts.len());
    for v in &c.consts {
        write_value(w, v);
    }
    w.put_u16(c.n_params);
    w.put_u16(c.n_locals);
    w.put_seq_len(c.local_names.len());
    for s in &c.local_names {
        w.put_str(s);
    }
    w.put_seq_len(c.local_tys.len());
    for ty in &c.local_tys {
        write_ty(w, ty);
    }
    w.put_seq_len(c.labels.len());
    for s in &c.labels {
        w.put_str(s);
    }
}

fn read_chunk(r: &mut Reader<'_>) -> R<Chunk> {
    let name = r.string()?;
    let n = r.seq_len()?;
    let mut code = Vec::with_capacity(n);
    for _ in 0..n {
        code.push(read_instr(r)?);
    }
    let n = r.seq_len()?;
    let mut consts = Vec::with_capacity(n);
    for _ in 0..n {
        consts.push(read_value(r)?);
    }
    let n_params = r.u16()?;
    let n_locals = r.u16()?;
    let n = r.seq_len()?;
    let mut local_names = Vec::with_capacity(n);
    for _ in 0..n {
        local_names.push(r.string()?);
    }
    let n = r.seq_len()?;
    let mut local_tys = Vec::with_capacity(n);
    for _ in 0..n {
        local_tys.push(read_ty(r)?);
    }
    let n = r.seq_len()?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(r.string()?);
    }
    Ok(Chunk {
        name,
        code,
        consts,
        n_params,
        n_locals,
        local_names,
        local_tys,
        labels,
    })
}

/// Encode a compiled module. The name→index maps are rebuilt on decode
/// from the chunk/global declaration order, so they are not stored.
pub fn write_module(w: &mut Writer, m: &Module) {
    w.put_seq_len(m.chunks.len());
    for c in &m.chunks {
        write_chunk(w, c);
    }
    w.put_seq_len(m.globals.len());
    for g in &m.globals {
        w.put_str(&g.name);
        write_ty(w, &g.ty);
    }
}

/// Decode a module written by [`write_module`].
pub fn read_module(r: &mut Reader<'_>) -> R<Module> {
    let n = r.seq_len()?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        chunks.push(read_chunk(r)?);
    }
    let n = r.seq_len()?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(GlobalInfo {
            name: r.string()?,
            ty: read_ty(r)?,
        });
    }
    let mut func_index = std::collections::HashMap::new();
    for (i, c) in chunks.iter().enumerate() {
        func_index.insert(
            c.name.clone(),
            u16::try_from(i).map_err(|_| "too many chunks".to_string())?,
        );
    }
    let mut global_index = std::collections::HashMap::new();
    for (i, g) in globals.iter().enumerate() {
        global_index.insert(
            g.name.clone(),
            u16::try_from(i).map_err(|_| "too many globals".to_string())?,
        );
    }
    Ok(Module {
        chunks,
        func_index,
        globals,
        global_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::ast::{BinOp, UnOp};
    use openarc_minic::{ScalarTy, Ty};

    fn sample_module() -> Module {
        let mut c = Chunk {
            name: "main".into(),
            code: vec![
                Instr::Const(0),
                Instr::StoreLocal(0),
                Instr::LoadLocal(0),
                Instr::LoadGlobal(1),
                Instr::StoreGlobal(1),
                Instr::Bin(BinOp::Shl),
                Instr::Un(UnOp::BitNot),
                Instr::Cast(ScalarTy::Float),
                Instr::JumpIfFalse(9),
                Instr::Jump(10),
                Instr::CallIntrinsic(Intrinsic::PowF),
                Instr::Malloc(ScalarTy::Double, 0),
                Instr::Free,
                Instr::HostOp(3),
                Instr::LoadElem,
                Instr::StoreElem,
                Instr::Dup,
                Instr::Pop,
                Instr::Call(0),
                Instr::JumpIfTrue(2),
                Instr::ReturnVoid,
                Instr::Return,
            ],
            consts: vec![],
            n_params: 1,
            n_locals: 3,
            local_names: vec!["a".into(), "b".into(), "c".into()],
            local_tys: vec![
                Ty::Scalar(ScalarTy::Int),
                Ty::Ptr(ScalarTy::Double),
                Ty::Array(ScalarTy::Float, vec![2, 3]),
            ],
            labels: vec!["p".into()],
        };
        c.add_const(Value::Int(-7));
        c.add_const(Value::F64(f64::NAN));
        c.add_const(Value::F32(-0.0f32));
        c.add_const(Value::Ptr(Handle(4)));
        let mut m = Module {
            chunks: vec![c],
            func_index: Default::default(),
            globals: vec![
                GlobalInfo {
                    name: "g".into(),
                    ty: Ty::Array(ScalarTy::Double, vec![8]),
                },
                GlobalInfo {
                    name: "n".into(),
                    ty: Ty::Scalar(ScalarTy::Int),
                },
            ],
            global_index: Default::default(),
        };
        m.func_index.insert("main".into(), 0);
        m.global_index.insert("g".into(), 0);
        m.global_index.insert("n".into(), 1);
        m
    }

    fn encode_module(m: &Module) -> Vec<u8> {
        let mut w = Writer::new();
        write_module(&mut w, m);
        w.into_bytes()
    }

    #[test]
    fn module_round_trips_bit_identically() {
        let m = sample_module();
        let bytes = encode_module(&m);
        let mut r = Reader::new(&bytes);
        let back = read_module(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.chunks.len(), m.chunks.len());
        let (a, b) = (&back.chunks[0], &m.chunks[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.code, b.code);
        assert_eq!(a.local_names, b.local_names);
        assert_eq!(a.local_tys, b.local_tys);
        assert_eq!(a.labels, b.labels);
        for (x, y) in a.consts.iter().zip(&b.consts) {
            match (x, y) {
                (Value::F64(x), Value::F64(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (Value::F32(x), Value::F32(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (x, y) => assert_eq!(x, y),
            }
        }
        assert_eq!(back.func_index, m.func_index);
        assert_eq!(back.global_index, m.global_index);
        // Deterministic: re-encoding is byte-identical.
        assert_eq!(encode_module(&back), bytes);
    }

    #[test]
    fn memspace_round_trip_preserves_slots_and_bits() {
        let mut m = MemSpace::new();
        let h1 = m.alloc(ScalarTy::Double, 3, "a");
        let h2 = m.alloc(ScalarTy::Float, 2, "b");
        let h3 = m.alloc(ScalarTy::Int, 2, "c");
        m.store(h1, 0, Value::F64(-0.0)).unwrap();
        m.store(h1, 1, Value::F64(f64::INFINITY)).unwrap();
        m.get_mut(h1).unwrap().set(2, Value::F64(f64::NAN)).unwrap();
        m.store(h2, 1, Value::F32(1.25)).unwrap();
        m.store(h3, 0, Value::Int(-9)).unwrap();
        m.free(h2).unwrap(); // leave a hole so slot numbering matters
        let mut w = Writer::new();
        write_memspace(&mut w, &m);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_memspace(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.allocated_bytes(), m.allocated_bytes());
        assert_eq!(back.peak_bytes(), m.peak_bytes());
        assert_eq!(back.live_buffers(), m.live_buffers());
        assert_eq!(
            back.load(h1, 0).unwrap().as_f64().to_bits(),
            (-0.0f64).to_bits()
        );
        assert!(back.load(h1, 2).unwrap().as_f64().is_nan());
        assert!(back.load(h2, 0).is_err()); // freed slot stays freed
        assert_eq!(back.load(h3, 0).unwrap(), Value::Int(-9));
        assert_eq!(back.get(h1).unwrap().label, "a");
        // Deterministic re-encode.
        let mut w2 = Writer::new();
        write_memspace(&mut w2, &back);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn truncation_and_bad_opcodes_never_panic() {
        let bytes = encode_module(&sample_module());
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = read_module(&mut r).and_then(|m| r.expect_end().map(|()| m));
            assert!(res.is_err(), "truncation at {cut} did not error");
        }
        let mut w = Writer::new();
        w.put_u32(1); // one chunk
        w.put_str("f");
        w.put_u32(1); // one instr
        w.put_u8(99); // unknown opcode
        let bytes = w.into_bytes();
        assert!(read_module(&mut Reader::new(&bytes)).is_err());
        assert!(read_value(&mut Reader::new(&[9])).is_err());
    }
}
