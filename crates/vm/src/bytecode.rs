//! Bytecode definitions: instructions, chunks, modules.

use crate::value::Value;
use openarc_minic::ast::{BinOp, UnOp};
use openarc_minic::{ScalarTy, Ty};
use std::collections::HashMap;

/// Math intrinsics executable without the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Intrinsic {
    Sqrt,
    Fabs,
    Exp,
    Log,
    Pow,
    Sin,
    Cos,
    Floor,
    Ceil,
    Fmin,
    Fmax,
    Abs,
    Min,
    Max,
    SqrtF,
    ExpF,
    FabsF,
    LogF,
    PowF,
}

impl Intrinsic {
    /// Map a source-level intrinsic name (excluding malloc/free, which have
    /// dedicated instructions).
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "fabs" => Intrinsic::Fabs,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "pow" => Intrinsic::Pow,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            "fmin" => Intrinsic::Fmin,
            "fmax" => Intrinsic::Fmax,
            "abs" => Intrinsic::Abs,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "sqrtf" => Intrinsic::SqrtF,
            "expf" => Intrinsic::ExpF,
            "fabsf" => Intrinsic::FabsF,
            "logf" => Intrinsic::LogF,
            "powf" => Intrinsic::PowF,
            _ => return None,
        })
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow
            | Intrinsic::Fmin
            | Intrinsic::Fmax
            | Intrinsic::Min
            | Intrinsic::Max
            | Intrinsic::PowF => 2,
            _ => 1,
        }
    }
}

/// One bytecode instruction of the stack machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push global slot (via the environment).
    LoadGlobal(u16),
    /// Pop into global slot (via the environment).
    StoreGlobal(u16),
    /// `[.., handle, idx] → [.., value]`
    LoadElem,
    /// `[.., handle, idx, value] → [..]`
    StoreElem,
    /// Binary arithmetic/comparison (logical ops compile to jumps).
    Bin(BinOp),
    /// Unary op.
    Un(UnOp),
    /// Numeric conversion.
    Cast(ScalarTy),
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump when false (zero).
    JumpIfFalse(u32),
    /// Pop; jump when true (non-zero).
    JumpIfTrue(u32),
    /// Call module function by index; arguments are on the stack.
    Call(u16),
    /// Call a math intrinsic.
    CallIntrinsic(Intrinsic),
    /// `[.., len] → [.., handle]` — allocate via the environment. The u16
    /// indexes [`Chunk::labels`] (the destination variable name, used to
    /// label the allocation in reports).
    Malloc(ScalarTy, u16),
    /// `[.., handle] → [..]` — free via the environment.
    Free,
    /// Return the top of stack.
    Return,
    /// Return no value.
    ReturnVoid,
    /// Opaque runtime operation dispatched to the environment (directive
    /// lowering: data-region entry/exit, updates, kernel launches,
    /// coherence checks). The id indexes the host-side op table.
    HostOp(u16),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
}

/// Compiled body of one function.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Function name.
    pub name: String,
    /// Instructions.
    pub code: Vec<Instr>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Number of parameters (the first locals).
    pub n_params: u16,
    /// Total local slots (including parameters).
    pub n_locals: u16,
    /// Slot → variable name (debugging, race reports).
    pub local_names: Vec<String>,
    /// Slot → declared type.
    pub local_tys: Vec<Ty>,
    /// String table for allocation labels.
    pub labels: Vec<String>,
}

impl Chunk {
    /// Intern a label string.
    pub fn add_label(&mut self, s: &str) -> u16 {
        if let Some(i) = self.labels.iter().position(|l| l == s) {
            return i as u16;
        }
        self.labels.push(s.to_string());
        (self.labels.len() - 1) as u16
    }

    /// Add a constant, deduplicating bit-identical values.
    pub fn add_const(&mut self, v: Value) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u16;
        }
        let i = self.consts.len() as u16;
        self.consts.push(v);
        i
    }
}

/// Metadata of one global variable slot.
#[derive(Debug, Clone)]
pub struct GlobalInfo {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
}

/// A compiled program: all function chunks plus the global slot layout.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Compiled functions.
    pub chunks: Vec<Chunk>,
    /// Function name → chunk index.
    pub func_index: HashMap<String, u16>,
    /// Global slots, in declaration order.
    pub globals: Vec<GlobalInfo>,
    /// Global name → slot.
    pub global_index: HashMap<String, u16>,
}

impl Module {
    /// Look up a function chunk by name.
    pub fn chunk(&self, name: &str) -> Option<&Chunk> {
        self.func_index.get(name).map(|i| &self.chunks[*i as usize])
    }

    /// Global slot of a variable name.
    pub fn global_slot(&self, name: &str) -> Option<u16> {
        self.global_index.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_names_round_trip() {
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("powf"), Some(Intrinsic::PowF));
        assert_eq!(Intrinsic::from_name("malloc"), None);
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Sin.arity(), 1);
    }

    #[test]
    fn const_dedup() {
        let mut c = Chunk::default();
        let a = c.add_const(Value::Int(7));
        let b = c.add_const(Value::Int(7));
        let d = c.add_const(Value::Int(8));
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(c.consts.len(), 2);
    }
}
