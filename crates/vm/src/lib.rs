//! # openarc-vm
//!
//! Bytecode compiler and resumable interpreter for MiniC.
//!
//! The same bytecode executes in two worlds:
//!
//! * **Host**: a single [`interp::ThreadState`] running the translated host
//!   program against host memory (plus runtime hooks, in `openarc-runtime`).
//! * **Device**: many `ThreadState`s — one per simulated GPU thread —
//!   stepped in lockstep by `openarc-gpusim` against device memory.
//!
//! Resumable stepping (one instruction per [`interp::ThreadState::step`])
//! is the key property: it lets the device simulator interleave threads
//! deterministically, so the data races the paper's kernel-verification
//! tool must catch actually occur and are reproducible.

#![warn(missing_docs)]

pub mod binio;
pub mod bytecode;
pub mod compile;
pub mod error;
pub mod interp;
pub mod jsonio;
pub mod mem;
pub mod value;

pub use bytecode::{Chunk, GlobalInfo, Instr, Intrinsic, Module};
pub use compile::{compile, GLOBALS_INIT, HOST_OP};
pub use error::VmError;
pub use interp::{call_function, BasicEnv, Env, Step, ThreadState};
pub use mem::{BufData, Buffer, MemSpace};
pub use value::{Handle, Value};
