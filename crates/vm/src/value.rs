//! Runtime values and buffer handles.

use openarc_minic::ScalarTy;
use std::fmt;

/// Handle to a heap/array buffer inside some memory space. Handle 0 is the
/// null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u32);

impl Handle {
    /// The null pointer.
    pub const NULL: Handle = Handle(0);

    /// True if this is the null handle.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// A dynamically typed VM value.
///
/// Integer (`int`/`long`) values share the `Int` representation; `float`
/// arithmetic stays in `F32` so single-precision rounding matches what a
/// real GPU would produce (the CPU/GPU precision-mismatch behaviour the
/// paper's configurable error margin exists for).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Buffer handle (pointer).
    Ptr(Handle),
}

impl Value {
    /// Zero of the given scalar type.
    pub fn zero(ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::Int | ScalarTy::Long => Value::Int(0),
            ScalarTy::Float => Value::F32(0.0),
            ScalarTy::Double => Value::F64(0.0),
        }
    }

    /// Interpret as a boolean (C truthiness).
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::Ptr(h) => !h.is_null(),
        }
    }

    /// Widen to f64 (for comparisons and float math).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::Ptr(h) => h.0 as f64,
        }
    }

    /// Truncate to i64 (C cast semantics for float→int).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
            Value::Ptr(h) => h.0 as i64,
        }
    }

    /// Convert to the given scalar type (C cast).
    pub fn cast(self, ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::Int | ScalarTy::Long => Value::Int(self.as_i64()),
            ScalarTy::Float => Value::F32(self.as_f64() as f32),
            ScalarTy::Double => Value::F64(self.as_f64()),
        }
    }

    /// The scalar type tag of this value, if numeric.
    pub fn scalar_ty(self) -> Option<ScalarTy> {
        match self {
            Value::Int(_) => Some(ScalarTy::Int),
            Value::F32(_) => Some(ScalarTy::Float),
            Value::F64(_) => Some(ScalarTy::Double),
            Value::Ptr(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ptr(h) => write!(f, "{h}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Int(3).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::F64(0.0).truthy());
        assert!(Value::F32(0.5).truthy());
        assert!(!Value::Ptr(Handle::NULL).truthy());
        assert!(Value::Ptr(Handle(7)).truthy());
    }

    #[test]
    fn casting_follows_c() {
        assert_eq!(Value::F64(2.9).cast(ScalarTy::Int), Value::Int(2));
        assert_eq!(Value::Int(1).cast(ScalarTy::Double), Value::F64(1.0));
        assert_eq!(Value::F64(1.5).cast(ScalarTy::Float), Value::F32(1.5));
        assert_eq!(Value::F32(-3.7).cast(ScalarTy::Long), Value::Int(-3));
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ScalarTy::Float), Value::F32(0.0));
        assert_eq!(Value::zero(ScalarTy::Long), Value::Int(0));
    }
}
