//! AST → bytecode compiler.
//!
//! Compiles a semantically checked MiniC [`Program`] into a [`Module`].
//! Multi-dimensional array accesses are linearized here using the declared
//! static dimensions (the same flattening a directive compiler performs
//! when it lowers C arrays to CUDA device pointers).

use crate::bytecode::{Chunk, GlobalInfo, Instr, Intrinsic, Module};
use crate::value::Value;
use openarc_minic::ast::*;
use openarc_minic::sema::is_intrinsic;
use openarc_minic::span::Diagnostic;
use openarc_minic::{Sema, Span};
use std::collections::HashMap;

/// Name of the synthesized chunk that evaluates global initializers.
pub const GLOBALS_INIT: &str = "__globals_init";

/// Synthetic call name the translator uses to mark runtime operations;
/// compiled to [`Instr::HostOp`].
pub const HOST_OP: &str = "__host_op";

/// Compile a checked program.
pub fn compile(program: &Program, sema: &Sema) -> Result<Module, Diagnostic> {
    let mut module = Module::default();
    for (i, g) in program.globals().enumerate() {
        module.globals.push(GlobalInfo {
            name: g.name.clone(),
            ty: g.ty.clone(),
        });
        module.global_index.insert(g.name.clone(), i as u16);
    }
    // Reserve chunk indices so calls can be emitted before callee bodies.
    let mut funcs: Vec<&Func> = Vec::new();
    for item in &program.items {
        if let Item::Func(f) = item {
            module.func_index.insert(f.name.clone(), funcs.len() as u16);
            funcs.push(f);
        }
    }
    module
        .func_index
        .insert(GLOBALS_INIT.to_string(), funcs.len() as u16);

    for f in &funcs {
        let chunk = FnCompiler::new(&module, sema, f).compile()?;
        module.chunks.push(chunk);
    }
    module.chunks.push(compile_globals_init(&module, program)?);
    Ok(module)
}

/// Build the `__globals_init` chunk that stores every global initializer.
fn compile_globals_init(module: &Module, program: &Program) -> Result<Chunk, Diagnostic> {
    let mut chunk = Chunk {
        name: GLOBALS_INIT.to_string(),
        ..Default::default()
    };
    for g in program.globals() {
        if let Some(init) = &g.init {
            let slot = module.global_slot(&g.name).expect("global slot");
            // Initializers are constant (checked by sema); fold them here.
            let v = const_eval(init).ok_or_else(|| {
                Diagnostic::error(
                    format!(
                        "global `{}` initializer is not a supported constant",
                        g.name
                    ),
                    g.span,
                )
            })?;
            let elem = match &g.ty {
                Ty::Scalar(s) => *s,
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "global `{}` of type `{other}` cannot have an initializer",
                            g.name
                        ),
                        g.span,
                    ))
                }
            };
            let c = chunk.add_const(v.cast(elem));
            chunk.code.push(Instr::Const(c));
            chunk.code.push(Instr::StoreGlobal(slot));
        }
    }
    chunk.code.push(Instr::ReturnVoid);
    Ok(chunk)
}

/// Constant-fold a literal expression (global initializers).
fn const_eval(e: &Expr) -> Option<Value> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(Value::Int(*v)),
        ExprKind::FloatLit(v, true) => Some(Value::F32(*v as f32)),
        ExprKind::FloatLit(v, false) => Some(Value::F64(*v)),
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => match const_eval(expr)? {
            Value::Int(v) => Some(Value::Int(-v)),
            Value::F32(v) => Some(Value::F32(-v)),
            Value::F64(v) => Some(Value::F64(-v)),
            Value::Ptr(_) => None,
        },
        ExprKind::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs)?;
            let b = const_eval(rhs)?;
            crate::interp::eval_bin(*op, a, b).ok()
        }
        ExprKind::Cast {
            ty: Ty::Scalar(s),
            expr,
        } => Some(const_eval(expr)?.cast(*s)),
        ExprKind::SizeOf(s) => Some(Value::Int(s.size_bytes() as i64)),
        _ => None,
    }
}

struct LoopCtx {
    break_jumps: Vec<usize>,
    continue_jumps: Vec<usize>,
}

struct FnCompiler<'a> {
    module: &'a Module,
    sema: &'a Sema,
    func: &'a Func,
    chunk: Chunk,
    locals: HashMap<String, u16>,
    loops: Vec<LoopCtx>,
    /// Name of the variable currently being assigned (labels mallocs).
    malloc_target: String,
}

impl<'a> FnCompiler<'a> {
    fn new(module: &'a Module, sema: &'a Sema, func: &'a Func) -> Self {
        FnCompiler {
            module,
            sema,
            func,
            chunk: Chunk {
                name: func.name.clone(),
                ..Default::default()
            },
            locals: HashMap::new(),
            loops: Vec::new(),
            malloc_target: "malloc".to_string(),
        }
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::error(msg, span)
    }

    fn compile(mut self) -> Result<Chunk, Diagnostic> {
        // Parameters occupy the first slots.
        for p in &self.func.params {
            self.add_local(&p.name, p.ty.clone());
        }
        self.chunk.n_params = self.func.params.len() as u16;
        // Pre-allocate slots for every local declaration so nested scopes
        // resolve (sema guarantees per-function uniqueness).
        let mut decls: Vec<(String, Ty, Span)> = Vec::new();
        walk_stmts(&self.func.body, &mut |s| {
            if let StmtKind::Decl(d) = &s.kind {
                decls.push((d.name.clone(), d.ty.clone(), d.span));
            }
        });
        for (name, ty, span) in decls {
            if matches!(ty, Ty::Array(..)) {
                return Err(self.err(
                    format!("local array `{name}` is unsupported; use a global or malloc"),
                    span,
                ));
            }
            self.add_local(&name, ty);
        }
        self.block(&self.func.body)?;
        self.chunk.code.push(Instr::ReturnVoid);
        self.chunk.n_locals = self.chunk.local_names.len() as u16;
        Ok(self.chunk)
    }

    fn add_local(&mut self, name: &str, ty: Ty) -> u16 {
        let slot = self.chunk.local_names.len() as u16;
        self.chunk.local_names.push(name.to_string());
        self.chunk.local_tys.push(ty);
        self.locals.insert(name.to_string(), slot);
        slot
    }

    fn here(&self) -> usize {
        self.chunk.code.len()
    }

    fn emit(&mut self, i: Instr) {
        self.chunk.code.push(i);
    }

    fn emit_jump(&mut self, make: fn(u32) -> Instr) -> usize {
        let at = self.here();
        self.chunk.code.push(make(u32::MAX));
        at
    }

    fn patch(&mut self, at: usize) {
        let target = self.here() as u32;
        self.chunk.code[at] = match self.chunk.code[at] {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIfFalse(_) => Instr::JumpIfFalse(target),
            Instr::JumpIfTrue(_) => Instr::JumpIfTrue(target),
            other => panic!("patching non-jump {other:?}"),
        };
    }

    fn block(&mut self, b: &Block) -> Result<(), Diagnostic> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    let slot = self.locals[&d.name];
                    self.malloc_target = d.name.clone();
                    self.expr_value(init)?;
                    self.coerce_to(&d.ty);
                    self.emit(Instr::StoreLocal(slot));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                if self.expr(e)? {
                    self.emit(Instr::Pop);
                }
                Ok(())
            }
            StmtKind::Assign { target, op, value } => self.assign(target, *op, value, s.span),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr_value(cond)?;
                let jf = self.emit_jump(Instr::JumpIfFalse);
                self.block(then_blk)?;
                match else_blk {
                    Some(e) => {
                        let je = self.emit_jump(Instr::Jump);
                        self.patch(jf);
                        self.block(e)?;
                        self.patch(je);
                    }
                    None => self.patch(jf),
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                self.expr_value(cond)?;
                let jf = self.emit_jump(Instr::JumpIfFalse);
                self.loops.push(LoopCtx {
                    break_jumps: vec![],
                    continue_jumps: vec![],
                });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                for j in ctx.continue_jumps {
                    // continue → re-test condition
                    let t = top as u32;
                    self.chunk.code[j] = Instr::Jump(t);
                }
                self.emit(Instr::Jump(top as u32));
                self.patch(jf);
                for j in ctx.break_jumps {
                    self.patch(j);
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let top = self.here();
                let jf = match cond {
                    Some(c) => {
                        self.expr_value(c)?;
                        Some(self.emit_jump(Instr::JumpIfFalse))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    break_jumps: vec![],
                    continue_jumps: vec![],
                });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let step_at = self.here();
                for j in ctx.continue_jumps {
                    self.chunk.code[j] = Instr::Jump(step_at as u32);
                }
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.emit(Instr::Jump(top as u32));
                if let Some(jf) = jf {
                    self.patch(jf);
                }
                for j in ctx.break_jumps {
                    self.patch(j);
                }
                Ok(())
            }
            StmtKind::Block(b) => self.block(b),
            StmtKind::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr_value(e)?;
                        self.coerce_to(&self.func.ret.clone());
                        self.emit(Instr::Return);
                    }
                    None => self.emit(Instr::ReturnVoid),
                }
                Ok(())
            }
            StmtKind::Break => {
                let j = self.emit_jump(Instr::Jump);
                if self.loops.is_empty() {
                    return Err(self.err("`break` outside a loop", s.span));
                }
                self.loops.last_mut().expect("loop ctx").break_jumps.push(j);
                Ok(())
            }
            StmtKind::Continue => {
                let j = self.emit_jump(Instr::Jump);
                if self.loops.is_empty() {
                    return Err(self.err("`continue` outside a loop", s.span));
                }
                self.loops
                    .last_mut()
                    .expect("loop ctx")
                    .continue_jumps
                    .push(j);
                Ok(())
            }
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
        span: Span,
    ) -> Result<(), Diagnostic> {
        match target {
            LValue::Var(name) => {
                let ty = self
                    .sema
                    .var_ty(&self.func.name, name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), span))?;
                self.malloc_target = name.clone();
                if let Some(bin) = op.binop() {
                    self.load_var(name, span)?;
                    self.expr_value(value)?;
                    self.emit(Instr::Bin(bin));
                } else {
                    self.expr_value(value)?;
                }
                self.coerce_to(&ty);
                self.store_var(name, span)
            }
            LValue::Index { base, indices } => {
                // [handle, idx, value] → StoreElem.
                self.push_handle_and_index(base, indices, span)?;
                if let Some(bin) = op.binop() {
                    self.push_handle_and_index(base, indices, span)?;
                    self.emit(Instr::LoadElem);
                    self.expr_value(value)?;
                    self.emit(Instr::Bin(bin));
                } else {
                    self.expr_value(value)?;
                }
                self.emit(Instr::StoreElem);
                Ok(())
            }
        }
    }

    fn load_var(&mut self, name: &str, span: Span) -> Result<(), Diagnostic> {
        if let Some(slot) = self.locals.get(name) {
            self.emit(Instr::LoadLocal(*slot));
            Ok(())
        } else if let Some(slot) = self.module.global_slot(name) {
            self.emit(Instr::LoadGlobal(slot));
            Ok(())
        } else {
            Err(self.err(format!("unknown variable `{name}`"), span))
        }
    }

    fn store_var(&mut self, name: &str, span: Span) -> Result<(), Diagnostic> {
        if let Some(slot) = self.locals.get(name) {
            self.emit(Instr::StoreLocal(*slot));
            Ok(())
        } else if let Some(slot) = self.module.global_slot(name) {
            self.emit(Instr::StoreGlobal(slot));
            Ok(())
        } else {
            Err(self.err(format!("unknown variable `{name}`"), span))
        }
    }

    /// Insert a cast so the stored value matches the declared scalar type.
    fn coerce_to(&mut self, ty: &Ty) {
        if let Ty::Scalar(s) = ty {
            self.emit(Instr::Cast(*s));
        }
    }

    /// Push `[handle, linear_index]` for `base[indices...]`.
    fn push_handle_and_index(
        &mut self,
        base: &str,
        indices: &[Expr],
        span: Span,
    ) -> Result<(), Diagnostic> {
        let ty = self
            .sema
            .var_ty(&self.func.name, base)
            .cloned()
            .ok_or_else(|| self.err(format!("unknown variable `{base}`"), span))?;
        self.load_var(base, span)?;
        match ty {
            Ty::Ptr(_) => {
                if indices.len() != 1 {
                    return Err(self.err(
                        format!("pointer `{base}` must use exactly one subscript"),
                        span,
                    ));
                }
                self.expr_value(&indices[0])?;
                self.emit(Instr::Cast(ScalarTy::Long));
            }
            Ty::Array(_, dims) => {
                if indices.len() != dims.len() {
                    return Err(self.err(format!("array `{base}` dimension mismatch"), span));
                }
                // linear = ((i0 * d1 + i1) * d2 + i2) ...
                self.expr_value(&indices[0])?;
                self.emit(Instr::Cast(ScalarTy::Long));
                for (k, ix) in indices.iter().enumerate().skip(1) {
                    let dk = self.chunk.add_const(Value::Int(dims[k] as i64));
                    self.emit(Instr::Const(dk));
                    self.emit(Instr::Bin(BinOp::Mul));
                    self.expr_value(ix)?;
                    self.emit(Instr::Cast(ScalarTy::Long));
                    self.emit(Instr::Bin(BinOp::Add));
                }
            }
            other => return Err(self.err(format!("cannot index `{base}` of type `{other}`"), span)),
        }
        Ok(())
    }

    /// Compile an expression that must produce a value.
    fn expr_value(&mut self, e: &Expr) -> Result<(), Diagnostic> {
        if !self.expr(e)? {
            return Err(self.err("expression of type void used as a value", e.span));
        }
        Ok(())
    }

    /// Compile an expression. Returns whether a value was pushed.
    fn expr(&mut self, e: &Expr) -> Result<bool, Diagnostic> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let c = self.chunk.add_const(Value::Int(*v));
                self.emit(Instr::Const(c));
                Ok(true)
            }
            ExprKind::FloatLit(v, suf) => {
                let val = if *suf {
                    Value::F32(*v as f32)
                } else {
                    Value::F64(*v)
                };
                let c = self.chunk.add_const(val);
                self.emit(Instr::Const(c));
                Ok(true)
            }
            ExprKind::SizeOf(s) => {
                let c = self.chunk.add_const(Value::Int(s.size_bytes() as i64));
                self.emit(Instr::Const(c));
                Ok(true)
            }
            ExprKind::Var(n) => {
                self.load_var(n, e.span)?;
                Ok(true)
            }
            ExprKind::Index { base, indices } => {
                self.push_handle_and_index(base, indices, e.span)?;
                self.emit(Instr::LoadElem);
                Ok(true)
            }
            ExprKind::Unary { op, expr } => {
                self.expr_value(expr)?;
                self.emit(Instr::Un(*op));
                Ok(true)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::And => {
                        self.expr_value(lhs)?;
                        let jf1 = self.emit_jump(Instr::JumpIfFalse);
                        self.expr_value(rhs)?;
                        let jf2 = self.emit_jump(Instr::JumpIfFalse);
                        let one = self.chunk.add_const(Value::Int(1));
                        self.emit(Instr::Const(one));
                        let je = self.emit_jump(Instr::Jump);
                        self.patch(jf1);
                        self.patch(jf2);
                        let zero = self.chunk.add_const(Value::Int(0));
                        self.emit(Instr::Const(zero));
                        self.patch(je);
                    }
                    BinOp::Or => {
                        self.expr_value(lhs)?;
                        let jt1 = self.emit_jump(Instr::JumpIfTrue);
                        self.expr_value(rhs)?;
                        let jt2 = self.emit_jump(Instr::JumpIfTrue);
                        let zero = self.chunk.add_const(Value::Int(0));
                        self.emit(Instr::Const(zero));
                        let je = self.emit_jump(Instr::Jump);
                        self.patch(jt1);
                        self.patch(jt2);
                        let one = self.chunk.add_const(Value::Int(1));
                        self.emit(Instr::Const(one));
                        self.patch(je);
                    }
                    _ => {
                        self.expr_value(lhs)?;
                        self.expr_value(rhs)?;
                        self.emit(Instr::Bin(*op));
                    }
                }
                Ok(true)
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                self.expr_value(cond)?;
                let jf = self.emit_jump(Instr::JumpIfFalse);
                self.expr_value(then_e)?;
                let je = self.emit_jump(Instr::Jump);
                self.patch(jf);
                self.expr_value(else_e)?;
                self.patch(je);
                Ok(true)
            }
            ExprKind::Cast { ty, expr } => {
                // `(T *) malloc(n)` compiles to Malloc.
                if let Ty::Ptr(elem) = ty {
                    if let ExprKind::Call { name, args } = &expr.kind {
                        if name == "malloc" && args.len() == 1 {
                            self.expr_value(&args[0])?;
                            let label = self.chunk.add_label(&self.malloc_target);
                            self.emit(Instr::Malloc(*elem, label));
                            return Ok(true);
                        }
                    }
                    return Err(self.err("unsupported pointer cast", e.span));
                }
                self.expr_value(expr)?;
                if let Ty::Scalar(s) = ty {
                    self.emit(Instr::Cast(*s));
                }
                Ok(true)
            }
            ExprKind::Call { name, args } => self.call(e, name, args),
        }
    }

    fn call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> Result<bool, Diagnostic> {
        if name == HOST_OP {
            // Synthetic runtime-op marker inserted by the translator.
            let id = match args {
                [Expr {
                    kind: ExprKind::IntLit(v),
                    ..
                }] if *v >= 0 && *v <= u16::MAX as i64 => *v as u16,
                _ => return Err(self.err("__host_op requires one small integer literal", e.span)),
            };
            self.emit(Instr::HostOp(id));
            return Ok(false);
        }
        if name == "free" {
            if args.len() != 1 {
                return Err(self.err("free takes one argument", e.span));
            }
            self.expr_value(&args[0])?;
            self.emit(Instr::Free);
            return Ok(false);
        }
        if name == "malloc" {
            return Err(self.err("malloc must be wrapped in a pointer cast", e.span));
        }
        if is_intrinsic(name) {
            let intr = Intrinsic::from_name(name)
                .ok_or_else(|| self.err(format!("unsupported intrinsic `{name}`"), e.span))?;
            if args.len() != intr.arity() {
                return Err(self.err(
                    format!("intrinsic `{name}` expects {} argument(s)", intr.arity()),
                    e.span,
                ));
            }
            for a in args {
                self.expr_value(a)?;
            }
            self.emit(Instr::CallIntrinsic(intr));
            return Ok(true);
        }
        let idx = *self
            .module
            .func_index
            .get(name)
            .ok_or_else(|| self.err(format!("unknown function `{name}`"), e.span))?;
        for a in args {
            self.expr_value(a)?;
        }
        self.emit(Instr::Call(idx));
        let returns_value = self
            .sema
            .funcs
            .get(name)
            .map(|f| f.ret != Ty::Void)
            .unwrap_or(false);
        Ok(returns_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::frontend;

    fn compile_src(src: &str) -> Module {
        let (p, s) = frontend(src).expect("frontend");
        compile(&p, &s).expect("compile")
    }

    #[test]
    fn compiles_simple_program() {
        let m = compile_src("int n;\nvoid main() { n = 1 + 2; }");
        assert!(m.chunk("main").is_some());
        assert!(m.chunk(GLOBALS_INIT).is_some());
        assert_eq!(m.globals.len(), 1);
    }

    #[test]
    fn local_slots_assigned() {
        let m = compile_src("void f(int a, double b) { int c; c = a; }\nvoid main() { }");
        let c = m.chunk("f").unwrap();
        assert_eq!(c.n_params, 2);
        assert_eq!(c.n_locals, 3);
        assert_eq!(c.local_names, vec!["a", "b", "c"]);
    }

    #[test]
    fn for_decl_locals_hoisted() {
        let m = compile_src("void main() { for (int i = 0; i < 3; i++) { } }");
        let c = m.chunk("main").unwrap();
        assert_eq!(c.local_names, vec!["i"]);
    }

    #[test]
    fn local_array_rejected() {
        let (p, s) = frontend("void main() { double a[4]; }").unwrap();
        assert!(compile(&p, &s).is_err());
    }

    #[test]
    fn array_linearization_constants_present() {
        let m = compile_src("double g[3][5];\nvoid main() { int i; int j; g[i][j] = 1.0; }");
        let c = m.chunk("main").unwrap();
        // The row stride (5) must appear in the constant pool.
        assert!(c.consts.contains(&Value::Int(5)));
    }

    #[test]
    fn global_initializers_in_init_chunk() {
        let m = compile_src("int n = 42;\ndouble eps = 1e-6;\nvoid main() { }");
        let c = m.chunk(GLOBALS_INIT).unwrap();
        assert!(c.consts.contains(&Value::Int(42)));
        assert!(
            c.code
                .iter()
                .filter(|i| matches!(i, Instr::StoreGlobal(_)))
                .count()
                == 2
        );
    }

    #[test]
    fn malloc_compiles_to_malloc_instr() {
        let m = compile_src("double *p;\nint n;\nvoid main() { p = (double *) malloc(n * sizeof(double)); free(p); }");
        let c = m.chunk("main").unwrap();
        assert!(c
            .code
            .iter()
            .any(|i| matches!(i, Instr::Malloc(ScalarTy::Double, _))));
        assert!(c.code.iter().any(|i| matches!(i, Instr::Free)));
    }

    #[test]
    fn break_continue_compile() {
        compile_src(
            "void main() { int i; for (i = 0; i < 10; i++) { if (i == 2) continue; if (i == 5) break; } }",
        );
    }

    #[test]
    fn const_eval_handles_arithmetic() {
        let e = openarc_minic::parse("int x = 6;\nvoid main() { }").unwrap();
        let g = e.globals().next().unwrap();
        assert_eq!(const_eval(g.init.as_ref().unwrap()), Some(Value::Int(6)));
    }
}
