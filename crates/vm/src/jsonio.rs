//! Structural JSON codec for compiled [`Module`]s, runtime [`Value`]s and
//! [`MemSpace`] snapshots — the bytecode half of the on-disk artifact
//! cache.
//!
//! Floats (constants, buffer contents) are stored as IEEE-754 bit patterns
//! so `NaN`, infinities and `-0.0` survive exactly; buffer slot indices are
//! preserved so outstanding [`Handle`]s in restored globals stay valid.
//! Decoding never panics — malformed shapes come back as `Err(String)`.

use crate::bytecode::{Chunk, GlobalInfo, Instr, Intrinsic, Module};
use crate::mem::{BufData, Buffer, MemSpace};
use crate::value::{Handle, Value};
use openarc_minic::jsonio::{
    binop_from_json, scalar_from_json, scalar_to_json, ty_from_json, ty_to_json, unop_from_json,
};
use openarc_trace::json::Json;

type R<T> = Result<T, String>;

fn arr<'a>(v: &'a Json, what: &str) -> R<&'a [Json]> {
    v.as_arr().ok_or_else(|| format!("{what}: expected array"))
}

fn str_of<'a>(v: &'a Json, what: &str) -> R<&'a str> {
    v.as_str().ok_or_else(|| format!("{what}: expected string"))
}

fn u64_of(v: &Json, what: &str) -> R<u64> {
    v.as_u64().ok_or_else(|| format!("{what}: expected u64"))
}

fn u16_of(v: &Json, what: &str) -> R<u16> {
    u64_of(v, what).and_then(|x| u16::try_from(x).map_err(|_| format!("{what}: out of u16 range")))
}

fn u32_of(v: &Json, what: &str) -> R<u32> {
    u64_of(v, what).and_then(|x| u32::try_from(x).map_err(|_| format!("{what}: out of u32 range")))
}

fn field<'a>(v: &'a Json, key: &str) -> R<&'a Json> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

// ---------------------------------------------------------------------------
// Values

/// Encode a runtime value. Floats are stored as bit patterns.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(x) => Json::Arr(vec![Json::from("i"), Json::I64(*x)]),
        Value::F32(x) => Json::Arr(vec![Json::from("f32"), Json::U64(x.to_bits() as u64)]),
        Value::F64(x) => Json::Arr(vec![Json::from("f64"), Json::U64(x.to_bits())]),
        Value::Ptr(h) => Json::Arr(vec![Json::from("p"), Json::U64(h.0 as u64)]),
    }
}

/// Decode a value encoded by [`value_to_json`].
pub fn value_from_json(v: &Json) -> R<Value> {
    let a = arr(v, "value")?;
    let tag = str_of(a.first().ok_or("value: empty")?, "value tag")?;
    let payload = a
        .get(1)
        .ok_or_else(|| format!("value {tag}: missing payload"))?;
    match tag {
        "i" => Ok(Value::Int(
            payload
                .as_i64()
                .ok_or_else(|| "int value: expected i64".to_string())?,
        )),
        "f32" => {
            let bits = u64_of(payload, "f32 bits")?;
            let bits = u32::try_from(bits).map_err(|_| "f32 bits: out of range".to_string())?;
            Ok(Value::F32(f32::from_bits(bits)))
        }
        "f64" => Ok(Value::F64(f64::from_bits(u64_of(payload, "f64 bits")?))),
        "p" => Ok(Value::Ptr(Handle(u32_of(payload, "handle")?))),
        other => Err(format!("unknown value tag {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Memory

fn buffer_to_json(b: &Buffer) -> Json {
    let (tag, data) = match &b.data {
        BufData::I64(v) => ("i64", Json::Arr(v.iter().map(|x| Json::I64(*x)).collect())),
        BufData::F32(v) => (
            "f32",
            Json::Arr(v.iter().map(|x| Json::U64(x.to_bits() as u64)).collect()),
        ),
        BufData::F64(v) => (
            "f64",
            Json::Arr(v.iter().map(|x| Json::U64(x.to_bits())).collect()),
        ),
    };
    Json::obj(vec![
        ("elem", scalar_to_json(b.elem)),
        ("label", Json::from(b.label.as_str())),
        ("d", Json::from(tag)),
        ("data", data),
    ])
}

fn buffer_from_json(v: &Json) -> R<Buffer> {
    let elem = scalar_from_json(field(v, "elem")?)?;
    let label = str_of(field(v, "label")?, "buffer label")?.to_string();
    let items = arr(field(v, "data")?, "buffer data")?;
    let data = match str_of(field(v, "d")?, "buffer data tag")? {
        "i64" => BufData::I64(
            items
                .iter()
                .map(|x| x.as_i64().ok_or_else(|| "i64 elem".to_string()))
                .collect::<R<_>>()?,
        ),
        "f32" => BufData::F32(
            items
                .iter()
                .map(|x| {
                    u64_of(x, "f32 elem")
                        .and_then(|b| u32::try_from(b).map_err(|_| "f32 bits".to_string()))
                        .map(f32::from_bits)
                })
                .collect::<R<_>>()?,
        ),
        "f64" => BufData::F64(
            items
                .iter()
                .map(|x| u64_of(x, "f64 elem").map(f64::from_bits))
                .collect::<R<_>>()?,
        ),
        other => return Err(format!("unknown buffer data tag {other:?}")),
    };
    Ok(Buffer { elem, data, label })
}

/// Encode a memory-space snapshot, preserving slot numbering (freed slots
/// serialize as `null`).
pub fn memspace_to_json(m: &MemSpace) -> Json {
    Json::obj(vec![
        ("peak_bytes", Json::U64(m.peak_bytes())),
        (
            "slots",
            Json::Arr(
                m.slots()
                    .iter()
                    .map(|s| match s {
                        Some(b) => buffer_to_json(b),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a memory space encoded by [`memspace_to_json`].
pub fn memspace_from_json(v: &Json) -> R<MemSpace> {
    let peak = u64_of(field(v, "peak_bytes")?, "peak_bytes")?;
    let slots = arr(field(v, "slots")?, "slots")?
        .iter()
        .map(|s| match s {
            Json::Null => Ok(None),
            other => buffer_from_json(other).map(Some),
        })
        .collect::<R<Vec<Option<Buffer>>>>()?;
    Ok(MemSpace::restore(slots, peak))
}

// ---------------------------------------------------------------------------
// Bytecode

fn intrinsic_name(i: Intrinsic) -> &'static str {
    match i {
        Intrinsic::Sqrt => "sqrt",
        Intrinsic::Fabs => "fabs",
        Intrinsic::Exp => "exp",
        Intrinsic::Log => "log",
        Intrinsic::Pow => "pow",
        Intrinsic::Sin => "sin",
        Intrinsic::Cos => "cos",
        Intrinsic::Floor => "floor",
        Intrinsic::Ceil => "ceil",
        Intrinsic::Fmin => "fmin",
        Intrinsic::Fmax => "fmax",
        Intrinsic::Abs => "abs",
        Intrinsic::Min => "min",
        Intrinsic::Max => "max",
        Intrinsic::SqrtF => "sqrtf",
        Intrinsic::ExpF => "expf",
        Intrinsic::FabsF => "fabsf",
        Intrinsic::LogF => "logf",
        Intrinsic::PowF => "powf",
    }
}

fn instr_to_json(i: &Instr) -> Json {
    let t = |s: &str| Json::from(s);
    match i {
        Instr::Const(x) => Json::Arr(vec![t("const"), Json::U64(*x as u64)]),
        Instr::LoadLocal(x) => Json::Arr(vec![t("ldl"), Json::U64(*x as u64)]),
        Instr::StoreLocal(x) => Json::Arr(vec![t("stl"), Json::U64(*x as u64)]),
        Instr::LoadGlobal(x) => Json::Arr(vec![t("ldg"), Json::U64(*x as u64)]),
        Instr::StoreGlobal(x) => Json::Arr(vec![t("stg"), Json::U64(*x as u64)]),
        Instr::LoadElem => Json::Arr(vec![t("lde")]),
        Instr::StoreElem => Json::Arr(vec![t("ste")]),
        Instr::Bin(op) => Json::Arr(vec![t("bin"), Json::from(op.to_string())]),
        Instr::Un(op) => Json::Arr(vec![t("un"), Json::from(op.to_string())]),
        Instr::Cast(s) => Json::Arr(vec![t("cast"), scalar_to_json(*s)]),
        Instr::Jump(x) => Json::Arr(vec![t("jmp"), Json::U64(*x as u64)]),
        Instr::JumpIfFalse(x) => Json::Arr(vec![t("jf"), Json::U64(*x as u64)]),
        Instr::JumpIfTrue(x) => Json::Arr(vec![t("jt"), Json::U64(*x as u64)]),
        Instr::Call(x) => Json::Arr(vec![t("call"), Json::U64(*x as u64)]),
        Instr::CallIntrinsic(i) => Json::Arr(vec![t("intr"), Json::from(intrinsic_name(*i))]),
        Instr::Malloc(s, l) => {
            Json::Arr(vec![t("malloc"), scalar_to_json(*s), Json::U64(*l as u64)])
        }
        Instr::Free => Json::Arr(vec![t("free")]),
        Instr::Return => Json::Arr(vec![t("ret")]),
        Instr::ReturnVoid => Json::Arr(vec![t("retv")]),
        Instr::HostOp(x) => Json::Arr(vec![t("host"), Json::U64(*x as u64)]),
        Instr::Pop => Json::Arr(vec![t("pop")]),
        Instr::Dup => Json::Arr(vec![t("dup")]),
    }
}

fn instr_from_json(v: &Json) -> R<Instr> {
    let a = arr(v, "instr")?;
    let tag = str_of(a.first().ok_or("instr: empty")?, "instr tag")?;
    let get = |i: usize| {
        a.get(i)
            .ok_or_else(|| format!("instr {tag}: missing [{i}]"))
    };
    Ok(match tag {
        "const" => Instr::Const(u16_of(get(1)?, "const idx")?),
        "ldl" => Instr::LoadLocal(u16_of(get(1)?, "local slot")?),
        "stl" => Instr::StoreLocal(u16_of(get(1)?, "local slot")?),
        "ldg" => Instr::LoadGlobal(u16_of(get(1)?, "global slot")?),
        "stg" => Instr::StoreGlobal(u16_of(get(1)?, "global slot")?),
        "lde" => Instr::LoadElem,
        "ste" => Instr::StoreElem,
        "bin" => Instr::Bin(binop_from_json(get(1)?)?),
        "un" => Instr::Un(unop_from_json(get(1)?)?),
        "cast" => Instr::Cast(scalar_from_json(get(1)?)?),
        "jmp" => Instr::Jump(u32_of(get(1)?, "jump target")?),
        "jf" => Instr::JumpIfFalse(u32_of(get(1)?, "jump target")?),
        "jt" => Instr::JumpIfTrue(u32_of(get(1)?, "jump target")?),
        "call" => Instr::Call(u16_of(get(1)?, "call idx")?),
        "intr" => {
            let name = str_of(get(1)?, "intrinsic name")?;
            Instr::CallIntrinsic(
                Intrinsic::from_name(name).ok_or_else(|| format!("unknown intrinsic {name:?}"))?,
            )
        }
        "malloc" => Instr::Malloc(scalar_from_json(get(1)?)?, u16_of(get(2)?, "label idx")?),
        "free" => Instr::Free,
        "ret" => Instr::Return,
        "retv" => Instr::ReturnVoid,
        "host" => Instr::HostOp(u16_of(get(1)?, "host op")?),
        "pop" => Instr::Pop,
        "dup" => Instr::Dup,
        other => return Err(format!("unknown instr tag {other:?}")),
    })
}

fn chunk_to_json(c: &Chunk) -> Json {
    Json::obj(vec![
        ("name", Json::from(c.name.as_str())),
        (
            "code",
            Json::Arr(c.code.iter().map(instr_to_json).collect()),
        ),
        (
            "consts",
            Json::Arr(c.consts.iter().map(value_to_json).collect()),
        ),
        ("n_params", Json::U64(c.n_params as u64)),
        ("n_locals", Json::U64(c.n_locals as u64)),
        (
            "local_names",
            Json::Arr(
                c.local_names
                    .iter()
                    .map(|s| Json::from(s.as_str()))
                    .collect(),
            ),
        ),
        (
            "local_tys",
            Json::Arr(c.local_tys.iter().map(ty_to_json).collect()),
        ),
        (
            "labels",
            Json::Arr(c.labels.iter().map(|s| Json::from(s.as_str())).collect()),
        ),
    ])
}

fn chunk_from_json(v: &Json) -> R<Chunk> {
    Ok(Chunk {
        name: str_of(field(v, "name")?, "chunk name")?.to_string(),
        code: arr(field(v, "code")?, "code")?
            .iter()
            .map(instr_from_json)
            .collect::<R<_>>()?,
        consts: arr(field(v, "consts")?, "consts")?
            .iter()
            .map(value_from_json)
            .collect::<R<_>>()?,
        n_params: u16_of(field(v, "n_params")?, "n_params")?,
        n_locals: u16_of(field(v, "n_locals")?, "n_locals")?,
        local_names: arr(field(v, "local_names")?, "local_names")?
            .iter()
            .map(|s| str_of(s, "local name").map(str::to_string))
            .collect::<R<_>>()?,
        local_tys: arr(field(v, "local_tys")?, "local_tys")?
            .iter()
            .map(ty_from_json)
            .collect::<R<_>>()?,
        labels: arr(field(v, "labels")?, "labels")?
            .iter()
            .map(|s| str_of(s, "label").map(str::to_string))
            .collect::<R<_>>()?,
    })
}

/// Encode a compiled module. The name→index maps are rebuilt on decode
/// from the chunk/global declaration order, so they are not stored.
pub fn module_to_json(m: &Module) -> Json {
    Json::obj(vec![
        (
            "chunks",
            Json::Arr(m.chunks.iter().map(chunk_to_json).collect()),
        ),
        (
            "globals",
            Json::Arr(
                m.globals
                    .iter()
                    .map(|g| Json::Arr(vec![Json::from(g.name.as_str()), ty_to_json(&g.ty)]))
                    .collect(),
            ),
        ),
    ])
}

/// Decode a module encoded by [`module_to_json`].
pub fn module_from_json(v: &Json) -> R<Module> {
    let chunks: Vec<Chunk> = arr(field(v, "chunks")?, "chunks")?
        .iter()
        .map(chunk_from_json)
        .collect::<R<_>>()?;
    let globals: Vec<GlobalInfo> = arr(field(v, "globals")?, "globals")?
        .iter()
        .map(|g| {
            let a = arr(g, "global")?;
            if a.len() != 2 {
                return Err("global: expected [name, ty]".into());
            }
            Ok(GlobalInfo {
                name: str_of(&a[0], "global name")?.to_string(),
                ty: ty_from_json(&a[1])?,
            })
        })
        .collect::<R<_>>()?;
    let mut func_index = std::collections::HashMap::new();
    for (i, c) in chunks.iter().enumerate() {
        func_index.insert(
            c.name.clone(),
            u16::try_from(i).map_err(|_| "too many chunks".to_string())?,
        );
    }
    let mut global_index = std::collections::HashMap::new();
    for (i, g) in globals.iter().enumerate() {
        global_index.insert(
            g.name.clone(),
            u16::try_from(i).map_err(|_| "too many globals".to_string())?,
        );
    }
    Ok(Module {
        chunks,
        func_index,
        globals,
        global_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::ast::{BinOp, UnOp};
    use openarc_minic::{ScalarTy, Ty};

    fn sample_module() -> Module {
        let mut c = Chunk {
            name: "main".into(),
            code: vec![
                Instr::Const(0),
                Instr::StoreLocal(0),
                Instr::LoadLocal(0),
                Instr::LoadGlobal(1),
                Instr::Bin(BinOp::Shl),
                Instr::Un(UnOp::BitNot),
                Instr::Cast(ScalarTy::Float),
                Instr::JumpIfFalse(9),
                Instr::Jump(10),
                Instr::CallIntrinsic(Intrinsic::PowF),
                Instr::Malloc(ScalarTy::Double, 0),
                Instr::Free,
                Instr::HostOp(3),
                Instr::LoadElem,
                Instr::StoreElem,
                Instr::Dup,
                Instr::Pop,
                Instr::Call(0),
                Instr::JumpIfTrue(2),
                Instr::ReturnVoid,
                Instr::Return,
            ],
            consts: vec![],
            n_params: 1,
            n_locals: 3,
            local_names: vec!["a".into(), "b".into(), "c".into()],
            local_tys: vec![
                Ty::Scalar(ScalarTy::Int),
                Ty::Ptr(ScalarTy::Double),
                Ty::Array(ScalarTy::Float, vec![2, 3]),
            ],
            labels: vec!["p".into()],
        };
        c.add_const(Value::Int(-7));
        c.add_const(Value::F64(f64::NAN));
        c.add_const(Value::F32(-0.0f32));
        c.add_const(Value::Ptr(Handle(4)));
        let mut m = Module {
            chunks: vec![c],
            func_index: Default::default(),
            globals: vec![
                GlobalInfo {
                    name: "g".into(),
                    ty: Ty::Array(ScalarTy::Double, vec![8]),
                },
                GlobalInfo {
                    name: "n".into(),
                    ty: Ty::Scalar(ScalarTy::Int),
                },
            ],
            global_index: Default::default(),
        };
        m.func_index.insert("main".into(), 0);
        m.global_index.insert("g".into(), 0);
        m.global_index.insert("n".into(), 1);
        m
    }

    fn assert_chunk_eq(a: &Chunk, b: &Chunk) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.code, b.code);
        assert_eq!(a.n_params, b.n_params);
        assert_eq!(a.n_locals, b.n_locals);
        assert_eq!(a.local_names, b.local_names);
        assert_eq!(a.local_tys, b.local_tys);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.consts.len(), b.consts.len());
        for (x, y) in a.consts.iter().zip(&b.consts) {
            match (x, y) {
                (Value::F64(x), Value::F64(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (Value::F32(x), Value::F32(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn module_round_trips_including_nan_consts() {
        let m = sample_module();
        let text = module_to_json(&m).pretty();
        let back = module_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.chunks.len(), m.chunks.len());
        assert_chunk_eq(&back.chunks[0], &m.chunks[0]);
        assert_eq!(back.func_index, m.func_index);
        assert_eq!(back.global_index, m.global_index);
        assert_eq!(back.globals.len(), m.globals.len());
        for (a, b) in back.globals.iter().zip(&m.globals) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ty, b.ty);
        }
    }

    #[test]
    fn memspace_round_trip_preserves_slots_and_bits() {
        let mut m = MemSpace::new();
        let h1 = m.alloc(ScalarTy::Double, 3, "a");
        let h2 = m.alloc(ScalarTy::Float, 2, "b");
        let h3 = m.alloc(ScalarTy::Int, 2, "c");
        m.store(h1, 0, Value::F64(-0.0)).unwrap();
        m.store(h1, 1, Value::F64(f64::INFINITY)).unwrap();
        m.get_mut(h1).unwrap().set(2, Value::F64(f64::NAN)).unwrap();
        m.store(h2, 1, Value::F32(1.25)).unwrap();
        m.store(h3, 0, Value::Int(-9)).unwrap();
        m.free(h2).unwrap(); // leave a hole so slot numbering matters
        let text = memspace_to_json(&m).pretty();
        let back = memspace_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.allocated_bytes(), m.allocated_bytes());
        assert_eq!(back.peak_bytes(), m.peak_bytes());
        assert_eq!(back.live_buffers(), m.live_buffers());
        // Handles survive: same slots resolve to the same data.
        assert_eq!(
            back.load(h1, 0).unwrap().as_f64().to_bits(),
            (-0.0f64).to_bits()
        );
        assert!(back.load(h1, 2).unwrap().as_f64().is_nan());
        assert!(back.load(h2, 0).is_err()); // freed slot stays freed
        assert_eq!(back.load(h3, 0).unwrap(), Value::Int(-9));
        assert_eq!(back.get(h1).unwrap().label, "a");
    }

    #[test]
    fn malformed_shapes_are_errors() {
        assert!(value_from_json(&Json::Null).is_err());
        assert!(value_from_json(&Json::Arr(vec![Json::from("zzz")])).is_err());
        assert!(instr_from_json(&Json::Arr(vec![Json::from("const")])).is_err());
        assert!(module_from_json(&Json::obj(vec![("chunks", Json::Null)])).is_err());
        assert!(memspace_from_json(&Json::Null).is_err());
    }
}
