//! BFS — breadth-first search on an implicit binary tree (Rodinia).
//! Frontier-mask traversal: one kernel expands the mask, one promotes the
//! next frontier with a reduction that tells the host whether to continue.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the BFS benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = (scale.n * 4).max(32);
    // Levels of a binary tree with n nodes.
    let levels = (usize::BITS - n.leading_zeros()) as usize + 1;
    let make = |data_open: &str, k1: &str, k2: &str, upd: &str, post: &str, data_close: &str| {
        format!(
            r#"int rowptr[{np1}];
int colidx[{nnz}];
int mask[{n}];
int newmask[{n}];
int visited[{n}];
int cost[{n}];
int frontier;
void main() {{
    int i; int e; int nb; int lvl; int nnz;
    nnz = 0;
    for (i = 0; i < {n}; i++) {{
        rowptr[i] = nnz;
        if (2 * i + 1 < {n}) {{ colidx[nnz] = 2 * i + 1; nnz = nnz + 1; }}
        if (2 * i + 2 < {n}) {{ colidx[nnz] = 2 * i + 2; nnz = nnz + 1; }}
        mask[i] = 0;
        newmask[i] = 0;
        visited[i] = 0;
        cost[i] = -1;
    }}
    rowptr[{n}] = nnz;
    mask[0] = 1;
    visited[0] = 1;
    cost[0] = 0;
{data_open}
    for (lvl = 0; lvl < {levels}; lvl++) {{
        frontier = 0;
{k1}
        for (i = 0; i < {n}; i++) {{
            if (mask[i] == 1) {{
                mask[i] = 0;
                for (e = rowptr[i]; e < rowptr[i + 1]; e++) {{
                    nb = colidx[e];
                    if (visited[nb] == 0) {{
                        cost[nb] = cost[i] + 1;
                        newmask[nb] = 1;
                    }}
                }}
            }}
        }}
{k2}
        for (i = 0; i < {n}; i++) {{
            if (newmask[i] == 1) {{
                mask[i] = 1;
                visited[i] = 1;
                newmask[i] = 0;
                frontier += 1;
            }}
        }}
{upd}
        if (frontier == 0) {{ break; }}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            np1 = n + 1,
            nnz = n * 2,
            levels = levels,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            upd = upd,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(e, nb)";
    let k2 = "#pragma acc kernels loop gang worker reduction(+:frontier)";
    let naive = make("", k1, k2, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(rowptr, colidx, mask, visited, cost) create(newmask)\n{",
        k1,
        k2,
        "#pragma acc update host(cost)\n#pragma acc update host(visited)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(rowptr, colidx, mask, visited, cost) create(newmask)\n{",
        k1,
        k2,
        "",
        "#pragma acc update host(cost)\n#pragma acc update host(visited)",
        "}",
    );

    Benchmark {
        name: "BFS",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["cost", "visited"]),
        n_kernels: 2,
        kernels_with_private: 1,
        kernels_with_reduction: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn costs_match_tree_depth() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let cost = r.global_array(&tr, "cost").unwrap();
        assert_eq!(cost[0], 0.0);
        assert_eq!(cost[1], 1.0);
        assert_eq!(cost[2], 1.0);
        assert_eq!(cost[5], 2.0);
        // Every node reachable (complete binary tree).
        assert!(cost.iter().all(|c| *c >= 0.0));
    }
}
