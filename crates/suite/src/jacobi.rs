//! JACOBI — 2D 5-point stencil iteration (kernel benchmark; the paper's
//! running example for Listings 3 and 4).
//!
//! Two kernels per sweep: the stencil into `anew` (private temporary) and
//! the copy-back into `a`. The unoptimized variant conservatively updates
//! the host copy of `a` every sweep — exactly the per-iteration redundant
//! `memcpyout(b)` the paper's Listing 4 reports; the tool's suggestion is
//! to defer it past the k-loop.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the JACOBI benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let iters = scale.iters.max(2);
    let make = |data_open: &str,
                p1: &str,
                p2: &str,
                upd_dev: &str,
                upd_host: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"double a[{n}][{n}];
double anew[{n}][{n}];
double checksum;
void main() {{
    int i; int j; int k; double tmp; double fac;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            a[i][j] = 0.0;
            anew[i][j] = 0.0;
        }}
    }}
    for (j = 0; j < {n}; j++) {{ a[0][j] = 100.0; anew[0][j] = 100.0; }}
{data_open}
    for (k = 0; k < {iters}; k++) {{
{upd_dev}
{p1}
        for (i = 1; i < {nm1}; i++) {{
            for (j = 1; j < {nm1}; j++) {{
                tmp = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];
                anew[i][j] = 0.25 * tmp;
            }}
        }}
{p2}
        for (i = 1; i < {nm1}; i++) {{
            for (j = 1; j < {nm1}; j++) {{
                fac = 1.0;
                a[i][j] = fac * anew[i][j];
            }}
        }}
{upd_host}
    }}
{post}
{data_close}
    checksum = 0.0;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            checksum += a[i][j];
        }}
    }}
}}
"#,
            n = n,
            nm1 = n - 1,
            iters = iters,
            data_open = data_open,
            p1 = p1,
            p2 = p2,
            upd_dev = upd_dev,
            upd_host = upd_host,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker collapse(2) private(tmp)";
    let k2 = "#pragma acc kernels loop gang worker collapse(2) private(fac)";
    let naive = make("", k1, k2, "", "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(a) create(anew)\n{",
        k1,
        k2,
        "#pragma acc update device(a)",
        "#pragma acc update host(a)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(a) create(anew)\n{",
        k1,
        k2,
        "",
        "",
        "#pragma acc update host(a)",
        "}",
    );

    Benchmark {
        name: "JACOBI",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["a"]).with_scalars(&["checksum"]),
        n_kernels: 2,
        kernels_with_private: 2,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn heat_propagates_from_boundary() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let a = r.global_array(&tr, "a").unwrap();
        let n = Scale::default().n;
        // Row 1 interior must have warmed up; far rows stay near zero.
        assert!(a[n + 5] > 10.0, "row 1: {}", a[n + 5]);
        assert!(a[(n - 2) * n + 5] < 1.0, "far row: {}", a[(n - 2) * n + 5]);
    }

    #[test]
    fn optimized_transfers_far_fewer_than_naive() {
        let b = benchmark(Scale::default());
        let (_, naive) =
            crate::run_variant(&b, Variant::Naive, &Default::default(), &Default::default())
                .unwrap();
        let (_, opt) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        assert!(
            naive.machine.stats.total_bytes() > 4 * opt.machine.stats.total_bytes(),
            "naive {} vs opt {}",
            naive.machine.stats.total_bytes(),
            opt.machine.stats.total_bytes()
        );
    }
}
