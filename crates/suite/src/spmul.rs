//! SPMUL — sparse matrix-vector multiplication iterations (kernel
//! benchmark). Band CSR matrix built in-program; each sweep computes
//! `y = A·x`, the norm of `y` (reduction), and renormalizes `x`.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the SPMUL benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let iters = scale.iters.max(2);
    let nnz_cap = n * 5;
    let make = |data_open: &str,
                k1: &str,
                k2: &str,
                k3: &str,
                upd_host: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"int rowptr[{np1}];
int colidx[{nnz}];
double vals[{nnz}];
double x[{n}];
double y[{n}];
double norm;
double scale;
void main() {{
    int i; int j; int k; int nnz; double sum; double sc2;
    nnz = 0;
    for (i = 0; i < {n}; i++) {{
        rowptr[i] = nnz;
        for (j = i - 2; j <= i + 2; j++) {{
            if (j >= 0 && j < {n}) {{
                colidx[nnz] = j;
                if (i == j) {{ vals[nnz] = 4.0; }} else {{ vals[nnz] = -0.5; }}
                nnz = nnz + 1;
            }}
        }}
        x[i] = 1.0 + 0.001 * (double) (i % 17);
        y[i] = 0.0;
    }}
    rowptr[{n}] = nnz;
{data_open}
    for (k = 0; k < {iters}; k++) {{
{k1}
        for (i = 0; i < {n}; i++) {{
            sum = 0.0;
            for (j = rowptr[i]; j < rowptr[i + 1]; j++) {{
                sum += vals[j] * x[colidx[j]];
            }}
            y[i] = sum;
        }}
        norm = 0.0;
{k2}
        for (i = 0; i < {n}; i++) {{
            norm += y[i] * y[i];
        }}
        scale = 1.0 / sqrt(norm);
{k3}
        for (i = 0; i < {n}; i++) {{
            sc2 = scale;
            x[i] = y[i] * sc2;
        }}
{upd_host}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            np1 = n + 1,
            nnz = nnz_cap,
            iters = iters,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            k3 = k3,
            upd_host = upd_host,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(sum)";
    let k2 = "#pragma acc kernels loop gang worker reduction(+:norm)";
    let k3 = "#pragma acc kernels loop gang worker private(sc2)";
    let naive = make("", k1, k2, k3, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(rowptr, colidx, vals, x) create(y)\n{",
        k1,
        k2,
        k3,
        "#pragma acc update host(x)\n#pragma acc update host(y)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(rowptr, colidx, vals, x) create(y)\n{",
        k1,
        k2,
        k3,
        "",
        "#pragma acc update host(x)",
        "}",
    );

    Benchmark {
        name: "SPMUL",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["x"]).with_scalars(&["norm"]),
        n_kernels: 3,
        kernels_with_private: 2,
        kernels_with_reduction: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn x_stays_normalized() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let x = r.global_array(&tr, "x").unwrap();
        let norm: f64 = x.iter().map(|v| v * v).sum();
        // After the final rescale x has unit norm.
        assert!((norm - 1.0).abs() < 1e-9, "{norm}");
    }
}
