//! # openarc-suite
//!
//! The twelve OpenACC benchmark programs of the paper (§IV-A) ported to
//! MiniC: two kernel benchmarks (JACOBI, SPMUL), two NAS Parallel
//! Benchmarks (EP, CG), and eight Rodinia benchmarks (BACKPROP, BFS, CFD,
//! SRAD, HOTSPOT, KMEANS, LUD, NW).
//!
//! Each benchmark comes in three directive variants:
//!
//! * [`Variant::Naive`] — no data clauses at all: the OpenACC *default*
//!   memory management scheme (every kernel allocates, copies in, copies
//!   out, frees) — Figure 1's numerator.
//! * [`Variant::Unoptimized`] — data regions allocate device memory but
//!   transfers are conservative (`update` around every kernel) — the
//!   starting point of the Table 3 interactive optimization.
//! * [`Variant::Optimized`] — the hand-tuned transfer pattern — Figure 1's
//!   baseline and Table 3's reference.
//!
//! All inputs are generated in-program from deterministic integer
//! arithmetic, so every variant is self-contained and reproducible.

#![warn(missing_docs)]

pub mod backprop;
pub mod bfs;
pub mod cfd;
pub mod cg;
pub mod ep;
pub mod hotspot;
pub mod jacobi;
pub mod kmeans;
pub mod lud;
pub mod nw;
pub mod spmul;
pub mod srad;

use openarc_core::exec::{execute, ExecMode, ExecOptions, RunResult};
use openarc_core::interactive::OutputSpec;
use openarc_core::pipeline::{Session, TranslatedArtifact};
use openarc_core::translate::{translate, TranslateOptions, Translated};
use std::sync::Arc;

/// Which directive variant of a benchmark to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Default memory management (no data clauses).
    Naive,
    /// Conservative transfers (Table 3 start point).
    Unoptimized,
    /// Hand-optimized transfers.
    Optimized,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [Variant::Naive, Variant::Unoptimized, Variant::Optimized];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Naive => "naive",
            Variant::Unoptimized => "unoptimized",
            Variant::Optimized => "optimized",
        }
    }
}

/// One benchmark program family.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Source of the naive variant.
    pub naive: String,
    /// Source of the conservatively-annotated variant.
    pub unoptimized: String,
    /// Source of the hand-optimized variant.
    pub optimized: String,
    /// Output variables checked against the sequential reference.
    pub outputs: OutputSpec,
    /// Compute regions in the program.
    pub n_kernels: usize,
    /// Kernels containing private data (Table 2 bookkeeping).
    pub kernels_with_private: usize,
    /// Kernels containing reductions (Table 2 bookkeeping).
    pub kernels_with_reduction: usize,
}

impl Benchmark {
    /// Source text of a variant.
    pub fn source(&self, v: Variant) -> &str {
        match v {
            Variant::Naive => &self.naive,
            Variant::Unoptimized => &self.unoptimized,
            Variant::Optimized => &self.optimized,
        }
    }
}

/// Default problem scale used by tests (small) — benches pass larger ones.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Linear problem size (grid side, vector length, node count).
    pub n: usize,
    /// Outer iteration count.
    pub iters: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { n: 32, iters: 4 }
    }
}

impl Scale {
    /// The scale used by the paper-shaped bench runs.
    pub fn bench() -> Scale {
        Scale { n: 64, iters: 8 }
    }
}

/// All twelve benchmarks at the given scale.
pub fn all(scale: Scale) -> Vec<Benchmark> {
    vec![
        backprop::benchmark(scale),
        bfs::benchmark(scale),
        cfd::benchmark(scale),
        cg::benchmark(scale),
        ep::benchmark(scale),
        hotspot::benchmark(scale),
        jacobi::benchmark(scale),
        kmeans::benchmark(scale),
        lud::benchmark(scale),
        nw::benchmark(scale),
        spmul::benchmark(scale),
        srad::benchmark(scale),
    ]
}

/// The reduced regression corpus: every benchmark's hand-optimized
/// variant at the given (small) scale, as `(name, source)` pairs. This is
/// what seeds the fuzzer's corpus and defines its coverage baseline — a
/// fuzz campaign must discover atoms *beyond* what these twelve programs
/// already exercise.
pub fn reduced_corpus(scale: Scale) -> Vec<(&'static str, String)> {
    all(scale)
        .into_iter()
        .map(|b| (b.name, b.optimized))
        .collect()
}

/// Translate a benchmark variant.
pub fn translate_variant(
    b: &Benchmark,
    v: Variant,
    topts: &TranslateOptions,
) -> Result<Translated, String> {
    let (p, s) = openarc_minic::frontend(b.source(v))
        .map_err(|e| format!("{} [{}] frontend: {e:?}", b.name, v.name()))?;
    translate(&p, &s, topts).map_err(|e| format!("{} [{}] translate: {e:?}", b.name, v.name()))
}

/// Translate and execute a benchmark variant.
pub fn run_variant(
    b: &Benchmark,
    v: Variant,
    topts: &TranslateOptions,
    eopts: &ExecOptions,
) -> Result<(Translated, RunResult), String> {
    let tr = translate_variant(b, v, topts)?;
    let r = execute(&tr, eopts).map_err(|e| format!("{} [{}] execute: {e}", b.name, v.name()))?;
    Ok((tr, r))
}

/// Translate a benchmark variant through a pipeline [`Session`]: repeats
/// of the same variant (same source, same options) are served from the
/// session's artifact cache, so batch drivers that touch a variant more
/// than once (figure sweeps, validation passes) compile it exactly once.
/// A session built with a disk cache extends the reuse across processes —
/// these helpers need no changes to pick the persistent layer up.
pub fn translate_variant_cached(
    session: &Session,
    b: &Benchmark,
    v: Variant,
    topts: &TranslateOptions,
) -> Result<Arc<TranslatedArtifact>, String> {
    let fe = session
        .frontend(b.source(v))
        .map_err(|e| format!("{} [{}] {e}", b.name, v.name()))?;
    session
        .translate(&fe, topts)
        .map_err(|e| format!("{} [{}] {e}", b.name, v.name()))
}

/// Translate and execute a benchmark variant through a pipeline
/// [`Session`]. Both the translation and the run are cached; a repeat of a
/// journaled run replays the recorded event stream into the caller's
/// journal, so cached and fresh runs are observationally identical.
pub fn run_variant_cached(
    session: &Session,
    b: &Benchmark,
    v: Variant,
    topts: &TranslateOptions,
    eopts: &ExecOptions,
) -> Result<(Arc<TranslatedArtifact>, Arc<RunResult>), String> {
    let tr = translate_variant_cached(session, b, v, topts)?;
    let r = session
        .execute(&tr, eopts)
        .map_err(|e| format!("{} [{}] {e}", b.name, v.name()))?;
    Ok((tr, r))
}

/// Verify a variant produces outputs matching its own sequential reference
/// (used by every benchmark's tests).
pub fn check_variant(b: &Benchmark, v: Variant) -> Result<(), String> {
    let topts = TranslateOptions::default();
    let (tr, gpu) = run_variant(b, v, &topts, &ExecOptions::default())?;
    let cpu = execute(
        &tr,
        &ExecOptions {
            mode: ExecMode::CpuOnly,
            race_detect: false,
            ..Default::default()
        },
    )
    .map_err(|e| format!("{} [{}] cpu run: {e}", b.name, v.name()))?;
    let reference = openarc_core::interactive::capture_outputs(&tr, &cpu, &b.outputs);
    if !openarc_core::interactive::outputs_match(&tr, &gpu, &reference, b.outputs.tol.max(1e-9)) {
        return Err(format!(
            "{} [{}] outputs diverge from sequential reference",
            b.name,
            v.name()
        ));
    }
    if !gpu.races.is_empty() {
        return Err(format!(
            "{} [{}] unexpected races: {:?}",
            b.name,
            v.name(),
            gpu.races
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twelve() {
        let all = all(Scale::default());
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|b| b.name).collect();
        for expected in [
            "BACKPROP", "BFS", "CFD", "CG", "EP", "HOTSPOT", "JACOBI", "KMEANS", "LUD", "NW",
            "SPMUL", "SRAD",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn cached_variant_compiles_once() {
        use openarc_core::pipeline::Stage;
        let session = Session::builder().build();
        let b = jacobi::benchmark(Scale::default());
        let topts = TranslateOptions::default();
        let a = translate_variant_cached(&session, &b, Variant::Optimized, &topts).unwrap();
        let c = translate_variant_cached(&session, &b, Variant::Optimized, &topts).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        let st = session.stats();
        assert_eq!(st.get(Stage::Analysis).misses, 1);
        assert_eq!(st.get(Stage::Analysis).hits, 1);
        // A different variant is a different artifact, not a cache hit.
        translate_variant_cached(&session, &b, Variant::Naive, &topts).unwrap();
        assert_eq!(session.stats().get(Stage::Analysis).misses, 2);
    }

    #[test]
    fn kernel_counts_match_declared() {
        for b in all(Scale::default()) {
            let tr = translate_variant(&b, Variant::Optimized, &Default::default())
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(
                tr.kernels.len(),
                b.n_kernels,
                "{}: declared {} kernels, translator found {}",
                b.name,
                b.n_kernels,
                tr.kernels.len()
            );
        }
    }
}
