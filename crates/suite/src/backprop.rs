//! BACKPROP — two-layer neural-network training step (Rodinia): forward
//! pass, output/hidden error, weight adjustment with momentum.
//!
//! The input→hidden weight matrix is heap-allocated and *aliased* by a
//! second pointer (`wdecay`) the host uses for per-epoch weight decay —
//! the (may-)aliased-pointer pattern behind BACKPROP's one incorrect
//! interactive iteration in the paper's Table 3.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

const NO: usize = 4;

/// Build the BACKPROP benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let ni = scale.n.max(16);
    let nh = (scale.n / 2).max(8);
    let epochs = scale.iters.max(2);
    let make = |data_open: &str,
                k1: &str,
                k2: &str,
                k3: &str,
                k4: &str,
                k5: &str,
                upd_dev: &str,
                upd_host: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"double in_units[{ni}];
double hid_units[{nh}];
double out_units[{no}];
double w2[{nhno}];
double delta_out[{no}];
double delta_hid[{nh}];
double *w1cur;
double *w1prev;
double *wdecay;
double err;
void main() {{
    int i; int j; int idx; int epoch; int i2; int h2; int o2; int i3; int j3;
    double sum; double sum2; double o; double h; double sumd; double neww;
    w1cur = (double *) malloc({ninh} * sizeof(double));
    w1prev = (double *) malloc({ninh} * sizeof(double));
    wdecay = w1cur;
    for (i = 0; i < {ni}; i++) {{
        in_units[i] = 0.1 + 0.8 * (double) ((i * 37) % 100) / 100.0;
    }}
    for (idx = 0; idx < {ninh}; idx++) {{
        w1cur[idx] = 0.02 * (double) ((idx * 13) % 50) - 0.5;
        w1prev[idx] = w1cur[idx];
    }}
    for (idx = 0; idx < {nhno}; idx++) {{
        w2[idx] = 0.02 * (double) ((idx * 7) % 50) - 0.5;
    }}
{data_open}
    for (epoch = 0; epoch < {epochs}; epoch++) {{
        for (idx = 0; idx < {ninh}; idx++) {{
            wdecay[idx] = w1cur[idx] * 0.999;
        }}
{upd_dev}
{k1}
        for (j = 0; j < {nh}; j++) {{
            sum = 0.0;
            for (i2 = 0; i2 < {ni}; i2++) {{
                sum += w1cur[i2 * {nh} + j] * in_units[i2];
            }}
            hid_units[j] = 1.0 / (1.0 + exp(-sum));
        }}
{k2}
        for (j = 0; j < {no}; j++) {{
            sum2 = 0.0;
            for (h2 = 0; h2 < {nh}; h2++) {{
                sum2 += w2[h2 * {no} + j] * hid_units[h2];
            }}
            out_units[j] = 1.0 / (1.0 + exp(-sum2));
        }}
        err = 0.0;
{k3}
        for (j = 0; j < {no}; j++) {{
            o = out_units[j];
            delta_out[j] = o * (1.0 - o) * (0.5 - o);
            err += fabs(delta_out[j]);
        }}
{k4}
        for (j = 0; j < {nh}; j++) {{
            h = hid_units[j];
            sumd = 0.0;
            for (o2 = 0; o2 < {no}; o2++) {{
                sumd += delta_out[o2] * w2[j * {no} + o2];
            }}
            delta_hid[j] = h * (1.0 - h) * sumd;
        }}
{k5}
        for (idx = 0; idx < {ninh}; idx++) {{
            i3 = idx / {nh};
            j3 = idx % {nh};
            neww = w1cur[idx] + 0.3 * delta_hid[j3] * in_units[i3]
                + 0.3 * (w1cur[idx] - w1prev[idx]);
            w1prev[idx] = w1cur[idx];
            w1cur[idx] = neww;
        }}
{upd_host}
    }}
{post}
{data_close}
}}
"#,
            ni = ni,
            nh = nh,
            no = NO,
            ninh = ni * nh,
            nhno = nh * NO,
            epochs = epochs,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            k3 = k3,
            k4 = k4,
            k5 = k5,
            upd_dev = upd_dev,
            upd_host = upd_host,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(sum, i2)";
    let k2 = "#pragma acc kernels loop gang worker private(sum2, h2)";
    let k3 = "#pragma acc kernels loop gang worker private(o) reduction(+:err)";
    let k4 = "#pragma acc kernels loop gang worker private(h, sumd, o2)";
    let k5 = "#pragma acc kernels loop gang worker private(i3, j3, neww)";
    let naive = make("", k1, k2, k3, k4, k5, "", "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(in_units, w1cur, w1prev, w2) create(hid_units, out_units, delta_out, delta_hid)\n{",
        k1, k2, k3, k4, k5,
        "#pragma acc update device(w1cur)",
        "#pragma acc update host(w1cur)\n#pragma acc update host(hid_units)\n#pragma acc update host(out_units)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(in_units, w1cur, w1prev, w2) create(hid_units, out_units, delta_out, delta_hid)\n{",
        k1, k2, k3, k4, k5,
        "#pragma acc update device(w1cur)",
        "#pragma acc update host(w1cur)",
        "#pragma acc update host(hid_units)\n#pragma acc update host(out_units)",
        "}",
    );

    Benchmark {
        name: "BACKPROP",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["hid_units", "out_units"]).with_scalars(&["err"]),
        n_kernels: 5,
        kernels_with_private: 4,
        kernels_with_reduction: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn outputs_are_sigmoid_range() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let out = r.global_array(&tr, "out_units").unwrap();
        assert!(out.iter().all(|x| *x > 0.0 && *x < 1.0), "{out:?}");
        let err = r.global_scalar(&tr, "err").unwrap().as_f64();
        assert!((0.0..4.0).contains(&err), "{err}");
    }
}
