//! NW — Needleman-Wunsch sequence alignment (Rodinia): anti-diagonal
//! wavefront over the score matrix, upper-left then lower-right passes,
//! one kernel launch per diagonal.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the NW benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let penalty = 2;
    let make = |data_open: &str, k1: &str, k2: &str, upd: &str, post: &str, data_close: &str| {
        format!(
            r#"int score[{n}][{n}];
int ref[{n}][{n}];
void main() {{
    int i; int j; int d; int t; int i2; int j2; int s;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            ref[i][j] = ((i * 7 + j * 11) % 10) - 4;
            score[i][j] = 0;
        }}
    }}
    for (i = 0; i < {n}; i++) {{ score[i][0] = -i * {penalty}; }}
    for (j = 0; j < {n}; j++) {{ score[0][j] = -j * {penalty}; }}
{data_open}
    for (d = 1; d <= {nm1}; d++) {{
{k1}
        for (t = 0; t < d; t++) {{
            i2 = 1 + t;
            j2 = d - t;
            score[i2][j2] = max(score[i2 - 1][j2 - 1] + ref[i2][j2],
                max(score[i2][j2 - 1] - {penalty}, score[i2 - 1][j2] - {penalty}));
        }}
{upd}
    }}
    for (d = 1; d <= {nm2}; d++) {{
        s = {n} + d;
{k2}
        for (t = 0; t < {nm1} - d; t++) {{
            i2 = d + 1 + t;
            j2 = s - i2;
            score[i2][j2] = max(score[i2 - 1][j2 - 1] + ref[i2][j2],
                max(score[i2][j2 - 1] - {penalty}, score[i2 - 1][j2] - {penalty}));
        }}
{upd}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            nm1 = n - 1,
            nm2 = n - 2,
            penalty = penalty,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            upd = upd,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(i2, j2)";
    let k2 = "#pragma acc kernels loop gang worker private(i2, j2)";
    let naive = make("", k1, k2, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(score, ref)\n{",
        k1,
        k2,
        "#pragma acc update host(score)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(score, ref)\n{",
        k1,
        k2,
        "",
        "#pragma acc update host(score)",
        "}",
    );

    Benchmark {
        name: "NW",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["score"]),
        n_kernels: 2,
        kernels_with_private: 2,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn wavefront_fills_whole_matrix() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let s = r.global_array(&tr, "score").unwrap();
        let n = Scale::default().n.max(8);
        // Bottom-right cell must have been computed (nonzero path cost).
        assert_ne!(s[(n - 1) * n + (n - 1)], 0.0);
    }
}
