//! EP — NAS "embarrassingly parallel": per-thread pseudo-random pair
//! generation with acceptance counting and Gaussian-sum reductions.
//! Private-variable-heavy, the main target of the privatization
//! fault-injection study.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the EP benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = (scale.n * scale.n / 4).max(16); // number of streams
    let pairs = scale.iters.max(2) * 2;
    let make = |data_open: &str, k1: &str, k2: &str, post: &str, data_close: &str| {
        format!(
            r#"int seeds[{n}];
double sx;
double sy;
int cnt;
void main() {{
    int i; int p; int s; double u1; double u2; double xx; double yy; double t; double fac;
{data_open}
{k1}
    for (i = 0; i < {n}; i++) {{
        s = (i * 7919 + 12345) % 1048576;
        seeds[i] = s;
    }}
    sx = 0.0;
    sy = 0.0;
    cnt = 0;
{k2}
    for (i = 0; i < {n}; i++) {{
        s = seeds[i];
        for (p = 0; p < {pairs}; p++) {{
            s = (s * 1103515 + 12345) % 1048576;
            u1 = (double) s / 1048576.0;
            s = (s * 1103515 + 12345) % 1048576;
            u2 = (double) s / 1048576.0;
            xx = 2.0 * u1 - 1.0;
            yy = 2.0 * u2 - 1.0;
            t = xx * xx + yy * yy;
            if (t <= 1.0 && t > 0.0) {{
                fac = sqrt(-2.0 * log(t) / t);
                sx += xx * fac;
                sy += yy * fac;
                cnt += 1;
            }}
        }}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            pairs = pairs,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(s)";
    let k2 = "#pragma acc kernels loop gang worker private(s, u1, u2, xx, yy, t, fac) reduction(+:sx) reduction(+:sy) reduction(+:cnt)";
    let naive = make("", k1, k2, "", "");
    let unoptimized = make(
        "#pragma acc data create(seeds)\n{",
        k1,
        k2,
        "#pragma acc update host(seeds)",
        "}",
    );
    let optimized = make("#pragma acc data create(seeds)\n{", k1, k2, "", "}");

    Benchmark {
        name: "EP",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&[]).with_scalars(&["sx", "sy", "cnt"]),
        n_kernels: 2,
        kernels_with_private: 2,
        kernels_with_reduction: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn acceptance_ratio_plausible() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let cnt = r.global_scalar(&tr, "cnt").unwrap().as_f64();
        let n = (Scale::default().n * Scale::default().n / 4).max(16) as f64;
        let pairs = (Scale::default().iters.max(2) * 2) as f64;
        let ratio = cnt / (n * pairs);
        // π/4 ≈ 0.785 acceptance for uniform pairs in the unit square.
        assert!(ratio > 0.5 && ratio < 1.0, "{ratio}");
    }
}
