//! HOTSPOT — 2D transient thermal simulation (Rodinia). Ping-pong between
//! `temp` and `temp2`, driven by a static `power` map.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the HOTSPOT benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let iters = scale.iters.max(2);
    let make = |data_open: &str, k1: &str, k2: &str, upd: &str, post: &str, data_close: &str| {
        format!(
            r#"double temp[{n}][{n}];
double temp2[{n}][{n}];
double power[{n}][{n}];
void main() {{
    int i; int j; int k; double tc; double acc;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            temp[i][j] = 60.0 + 0.01 * (double) ((i * 7 + j * 3) % 11);
            temp2[i][j] = temp[i][j];
            power[i][j] = 0.001 * (double) ((i + j) % 5);
        }}
    }}
{data_open}
    for (k = 0; k < {iters}; k++) {{
{k1}
        for (i = 1; i < {nm1}; i++) {{
            for (j = 1; j < {nm1}; j++) {{
                tc = temp[i][j];
                acc = temp[i - 1][j] + temp[i + 1][j] + temp[i][j - 1] + temp[i][j + 1] - 4.0 * tc;
                temp2[i][j] = tc + 0.1 * acc + power[i][j];
            }}
        }}
{k2}
        for (i = 1; i < {nm1}; i++) {{
            for (j = 1; j < {nm1}; j++) {{
                temp[i][j] = temp2[i][j];
            }}
        }}
{upd}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            nm1 = n - 1,
            iters = iters,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            upd = upd,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker collapse(2) private(tc, acc)";
    let k2 = "#pragma acc kernels loop gang worker collapse(2)";
    let naive = make("", k1, k2, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(temp, power) create(temp2)\n{",
        k1,
        k2,
        "#pragma acc update host(temp)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(temp, power) create(temp2)\n{",
        k1,
        k2,
        "",
        "#pragma acc update host(temp)",
        "}",
    );

    Benchmark {
        name: "HOTSPOT",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["temp"]),
        n_kernels: 2,
        kernels_with_private: 1,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn temperatures_remain_physical() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let t = r.global_array(&tr, "temp").unwrap();
        assert!(t.iter().all(|x| *x > 50.0 && *x < 80.0));
    }
}
