//! CFD — simplified 1D Euler-style solver in the shape of Rodinia's
//! euler3d: per-step snapshot of the conserved variables, a step-factor
//! kernel, and a two-stage Runge-Kutta flux/update pair.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the CFD benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(16);
    let iters = scale.iters.max(2);
    let make = |data_open: &str,
                k1: &str,
                k2: &str,
                k3: &str,
                k4: &str,
                upd: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"double vars[{n3}];
double old_vars[{n3}];
double fluxes[{n3}];
double sf[{n}];
void main() {{
    int i; int c; int it; int rk; double d; double f0; double rkf; double coef;
    for (c = 0; c < 3; c++) {{
        for (i = 0; i < {n}; i++) {{
            vars[c * {n} + i] = 1.0 + 0.1 * (double) ((i * 13 + c * 7) % 9);
            old_vars[c * {n} + i] = 0.0;
            fluxes[c * {n} + i] = 0.0;
        }}
    }}
{data_open}
    for (it = 0; it < {iters}; it++) {{
{k1}
        for (i = 0; i < {n3}; i++) {{
            old_vars[i] = vars[i];
        }}
{k2}
        for (i = 0; i < {n}; i++) {{
            d = vars[i];
            sf[i] = 0.5 / sqrt(fabs(d) + 1.0);
        }}
        for (rk = 0; rk < 2; rk++) {{
            rkf = 0.5 / (double) (2 - rk);
{k3}
            for (c = 0; c < 3; c++) {{
                for (i = 0; i < {nm1}; i++) {{
                    f0 = vars[c * {n} + i + 1] - vars[c * {n} + i];
                    fluxes[c * {n} + i] = f0;
                }}
            }}
{k4}
            for (c = 0; c < 3; c++) {{
                for (i = 1; i < {nm1}; i++) {{
                    coef = rkf;
                    vars[c * {n} + i] = old_vars[c * {n} + i]
                        + coef * sf[i] * (fluxes[c * {n} + i] - fluxes[c * {n} + i - 1]);
                }}
            }}
        }}
{upd}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            n3 = n * 3,
            nm1 = n - 1,
            iters = iters,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            k3 = k3,
            k4 = k4,
            upd = upd,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker";
    let k2 = "#pragma acc kernels loop gang worker private(d)";
    let k3 = "#pragma acc kernels loop gang worker collapse(2) private(f0)";
    let k4 = "#pragma acc kernels loop gang worker collapse(2) private(coef)";
    let naive = make("", k1, k2, k3, k4, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(vars) create(old_vars, fluxes, sf)\n{",
        k1,
        k2,
        k3,
        k4,
        "#pragma acc update host(vars)\n#pragma acc update host(old_vars)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(vars) create(old_vars, fluxes, sf)\n{",
        k1,
        k2,
        k3,
        k4,
        "",
        "#pragma acc update host(vars)",
        "}",
    );

    Benchmark {
        name: "CFD",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["vars"]),
        n_kernels: 4,
        kernels_with_private: 3,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn diffusion_smooths_but_conserves_sign() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let v = r.global_array(&tr, "vars").unwrap();
        assert!(v.iter().all(|x| *x > 0.0 && x.is_finite()));
    }
}
