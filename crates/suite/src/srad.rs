//! SRAD — speckle-reducing anisotropic diffusion (Rodinia): a global
//! statistics reduction, a diffusion-coefficient kernel, and the image
//! update kernel, per iteration.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the SRAD benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let iters = scale.iters.max(2);
    let size = n * n;
    let make =
        |data_open: &str, k1: &str, k2: &str, k3: &str, upd: &str, post: &str, data_close: &str| {
            format!(
                r#"double img[{n}][{n}];
double cc[{n}][{n}];
double dn_a[{n}][{n}];
double ds_a[{n}][{n}];
double dw_a[{n}][{n}];
double de_a[{n}][{n}];
double sum;
double sum2;
double q0;
void main() {{
    int i; int j; int it; int iN; int iS; int jW; int jE;
    double mean; double varr; double dn; double ds; double dw; double de;
    double g2; double l; double num; double den; double qsq; double cval; double d2;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            img[i][j] = 1.0 + 0.3 * (double) ((i * 5 + j * 3) % 7) / 7.0;
            cc[i][j] = 0.0;
            dn_a[i][j] = 0.0;
            ds_a[i][j] = 0.0;
            dw_a[i][j] = 0.0;
            de_a[i][j] = 0.0;
        }}
    }}
{data_open}
    for (it = 0; it < {iters}; it++) {{
        sum = 0.0;
        sum2 = 0.0;
{k1}
        for (i = 0; i < {n}; i++) {{
            for (j = 0; j < {n}; j++) {{
                sum += img[i][j];
                sum2 += img[i][j] * img[i][j];
            }}
        }}
        mean = sum / {size}.0;
        varr = sum2 / {size}.0 - mean * mean;
        q0 = varr / (mean * mean);
{k2}
        for (i = 0; i < {n}; i++) {{
            for (j = 0; j < {n}; j++) {{
                iN = (i == 0) ? 0 : (i - 1);
                iS = (i == {nm1}) ? {nm1} : (i + 1);
                jW = (j == 0) ? 0 : (j - 1);
                jE = (j == {nm1}) ? {nm1} : (j + 1);
                dn = img[iN][j] - img[i][j];
                ds = img[iS][j] - img[i][j];
                dw = img[i][jW] - img[i][j];
                de = img[i][jE] - img[i][j];
                dn_a[i][j] = dn;
                ds_a[i][j] = ds;
                dw_a[i][j] = dw;
                de_a[i][j] = de;
                g2 = (dn * dn + ds * ds + dw * dw + de * de) / (img[i][j] * img[i][j]);
                l = (dn + ds + dw + de) / img[i][j];
                num = 0.5 * g2 - 0.0625 * l * l;
                den = 1.0 + 0.25 * l;
                qsq = num / (den * den);
                den = (qsq - q0) / (q0 * (1.0 + q0));
                cval = 1.0 / (1.0 + den);
                cval = (cval < 0.0) ? 0.0 : ((cval > 1.0) ? 1.0 : cval);
                cc[i][j] = cval;
            }}
        }}
{k3}
        for (i = 0; i < {n}; i++) {{
            for (j = 0; j < {n}; j++) {{
                iS = (i == {nm1}) ? {nm1} : (i + 1);
                jE = (j == {nm1}) ? {nm1} : (j + 1);
                d2 = cc[iS][j] * ds_a[i][j] + cc[i][j] * dn_a[i][j]
                    + cc[i][jE] * de_a[i][j] + cc[i][j] * dw_a[i][j];
                img[i][j] = img[i][j] + 0.025 * d2;
            }}
        }}
{upd}
    }}
{post}
{data_close}
}}
"#,
                n = n,
                nm1 = n - 1,
                size = size,
                iters = iters,
                data_open = data_open,
                k1 = k1,
                k2 = k2,
                k3 = k3,
                upd = upd,
                post = post,
                data_close = data_close,
            )
        };

    let k1 = "#pragma acc kernels loop gang worker collapse(2) reduction(+:sum) reduction(+:sum2)";
    let k2 = "#pragma acc kernels loop gang worker collapse(2) private(iN, iS, jW, jE, dn, ds, dw, de, g2, l, num, den, qsq, cval)";
    let k3 = "#pragma acc kernels loop gang worker collapse(2) private(iS, jE, d2)";
    let naive = make("", k1, k2, k3, "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(img) create(cc, dn_a, ds_a, dw_a, de_a)\n{",
        k1,
        k2,
        k3,
        "#pragma acc update host(img)\n#pragma acc update host(cc)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(img) create(cc, dn_a, ds_a, dw_a, de_a)\n{",
        k1,
        k2,
        k3,
        "",
        "#pragma acc update host(img)",
        "}",
    );

    Benchmark {
        name: "SRAD",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["img"]),
        n_kernels: 3,
        kernels_with_private: 2,
        kernels_with_reduction: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn diffusion_reduces_variance() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let img = r.global_array(&tr, "img").unwrap();
        let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
        let var: f64 = img.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / img.len() as f64;
        // Initial pattern variance is ~0.01; diffusion must shrink it.
        assert!(var < 0.01, "{var}");
        assert!(img.iter().all(|x| x.is_finite() && *x > 0.5));
    }
}
