//! KMEANS — k-means clustering (Rodinia): the assignment step runs on the
//! device, the centroid update on the host, forcing a genuine membership /
//! centroid transfer every iteration (the pattern that dominates KMEANS's
//! Figure 1 bar).

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

const F: usize = 4;
const KC: usize = 4;

/// Build the KMEANS benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = (scale.n * 2).max(16);
    let iters = scale.iters.max(2);
    let make = |data_open: &str,
                k1: &str,
                upd_mem: &str,
                upd_clu: &str,
                upd_extra: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"double feats[{nf}];
double clusters[{kf}];
int membership[{n}];
double newclust[{kf}];
int counts[{kc}];
void main() {{
    int i; int c; int f; int it; int best; double bestd; double d; double diff;
    for (i = 0; i < {n}; i++) {{
        for (f = 0; f < {ff}; f++) {{
            feats[i * {ff} + f] = (double) ((i * 31 + f * 17) % 100) * 0.01 + (double) (i % {kc});
        }}
        membership[i] = 0;
    }}
    for (c = 0; c < {kc}; c++) {{
        for (f = 0; f < {ff}; f++) {{
            clusters[c * {ff} + f] = feats[c * {ff} + f];
        }}
    }}
{data_open}
    for (it = 0; it < {iters}; it++) {{
{k1}
        for (i = 0; i < {n}; i++) {{
            best = 0;
            bestd = 1e30;
            for (c = 0; c < {kc}; c++) {{
                d = 0.0;
                for (f = 0; f < {ff}; f++) {{
                    diff = feats[i * {ff} + f] - clusters[c * {ff} + f];
                    d += diff * diff;
                }}
                if (d < bestd) {{ bestd = d; best = c; }}
            }}
            membership[i] = best;
        }}
{upd_mem}
{upd_extra}
        for (c = 0; c < {kc}; c++) {{
            counts[c] = 0;
            for (f = 0; f < {ff}; f++) {{ newclust[c * {ff} + f] = 0.0; }}
        }}
        for (i = 0; i < {n}; i++) {{
            c = membership[i];
            counts[c] = counts[c] + 1;
            for (f = 0; f < {ff}; f++) {{
                newclust[c * {ff} + f] += feats[i * {ff} + f];
            }}
        }}
        for (c = 0; c < {kc}; c++) {{
            if (counts[c] > 0) {{
                for (f = 0; f < {ff}; f++) {{
                    clusters[c * {ff} + f] = newclust[c * {ff} + f] / (double) counts[c];
                }}
            }}
        }}
{upd_clu}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            nf = n * F,
            kf = KC * F,
            kc = KC,
            ff = F,
            iters = iters,
            data_open = data_open,
            k1 = k1,
            upd_mem = upd_mem,
            upd_clu = upd_clu,
            upd_extra = upd_extra,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker private(best, bestd, d, diff, c, f)";
    // Naive still needs the host membership/cluster exchange (semantics),
    // but no data region: feats/clusters/membership shipped per kernel.
    // Naive: the kernel's default copyout/copyin already round-trips
    // membership and clusters; explicit updates would target unmapped data.
    let naive = make("", k1, "", "", "", "", "");
    let upd_mem = "        #pragma acc update host(membership)";
    let upd_clu = "        #pragma acc update device(clusters)";
    let unoptimized = make(
        "#pragma acc data copyin(feats, clusters) create(membership)\n{",
        k1,
        upd_mem,
        upd_clu,
        "#pragma acc update host(feats)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(feats, clusters) create(membership)\n{",
        k1,
        upd_mem,
        upd_clu,
        "",
        "",
        "}",
    );

    Benchmark {
        name: "KMEANS",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["membership", "clusters"]),
        n_kernels: 1,
        kernels_with_private: 1,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn clustering_separates_generated_groups() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let mem = r.global_array(&tr, "membership").unwrap();
        // Points were generated around KC distinct offsets; the assignment
        // must use more than one cluster.
        let distinct: std::collections::BTreeSet<i64> = mem.iter().map(|m| *m as i64).collect();
        assert!(distinct.len() > 1, "{distinct:?}");
    }
}
