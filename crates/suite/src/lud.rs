//! LUD — in-place LU decomposition (Rodinia), right-looking form: a column
//! scaling kernel and a trailing-submatrix update kernel per step.
//!
//! Three names alias the same malloc'd matrix (`m`, `mview`, `mrow`), the
//! sub-matrix-pointer idiom of the real Rodinia code. The host refines the
//! pivot through `mrow` each step, so the compiler's *name-based* deadness
//! analysis wrongly concludes the device copy of `mrow` is dead — the
//! source of the three incorrect interactive iterations the paper reports
//! for LUD ("the compiler cannot resolve the relationship between
//! (may-)aliased pointers").

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the LUD benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = (scale.n / 2).max(8);
    let make = |data_open: &str,
                k1: &str,
                k2: &str,
                upd_dev: &str,
                upd_post: &str,
                post: &str,
                data_close: &str| {
        format!(
            r#"double *m;
double *mview;
double *mrow;
void main() {{
    int i; int j; int k; int kp1;
    m = (double *) malloc({nn} * sizeof(double));
    mview = m;
    mrow = m;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            if (i == j) {{ m[i * {n} + j] = (double) {n}; }}
            else {{ m[i * {n} + j] = 1.0 / (double) (1 + abs(i - j)); }}
        }}
    }}
{data_open}
    for (k = 0; k < {nm1}; k++) {{
        kp1 = k + 1;
        mrow[k * {n} + k] = mrow[k * {n} + k] * 1.001;
{upd_dev}
{k1}
        for (i = kp1; i < {n}; i++) {{
            mview[i * {n} + k] = mview[i * {n} + k] / mview[k * {n} + k];
        }}
{k2}
        for (i = kp1; i < {n}; i++) {{
            for (j = kp1; j < {n}; j++) {{
                m[i * {n} + j] = m[i * {n} + j] - m[i * {n} + k] * m[k * {n} + j];
            }}
        }}
{upd_post}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            nn = n * n,
            nm1 = n - 1,
            data_open = data_open,
            k1 = k1,
            k2 = k2,
            upd_dev = upd_dev,
            upd_post = upd_post,
            post = post,
            data_close = data_close,
        )
    };

    let k1 = "#pragma acc kernels loop gang worker";
    let k2 = "#pragma acc kernels loop gang worker collapse(2)";
    let naive = make("", k1, k2, "", "", "", "");
    let unoptimized = make(
        "#pragma acc data copyin(m)\n{",
        k1,
        k2,
        "#pragma acc update device(m)",
        "#pragma acc update host(m)\n#pragma acc update host(mview)",
        "",
        "}",
    );
    let optimized = make(
        "#pragma acc data copyin(m)\n{",
        k1,
        k2,
        "#pragma acc update device(m)",
        "#pragma acc update host(m)",
        "",
        "}",
    );

    Benchmark {
        name: "LUD",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["m"]),
        n_kernels: 2,
        kernels_with_private: 0,
        kernels_with_reduction: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn lu_factors_reconstruct_matrix_shape() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let m = r.global_array(&tr, "m").unwrap();
        let n = (Scale::default().n / 2).max(8);
        // Diagonal of U stays positive and dominant for this matrix.
        for k in 0..n {
            assert!(m[k * n + k] > 0.5, "U[{k}][{k}] = {}", m[k * n + k]);
        }
        // L entries (below diagonal) are the small multipliers.
        assert!(m[(n - 1) * n].abs() < 1.0);
    }
}
