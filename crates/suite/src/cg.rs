//! CG — NAS conjugate gradient (the paper's Listing 1 source). Band SPD
//! matrix; the full CG iteration with mat-vec, two dot-product reductions,
//! and three AXPY-style kernels.

use crate::{Benchmark, Scale};
use openarc_core::interactive::OutputSpec;

/// Build the CG benchmark at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    let n = scale.n.max(8);
    let iters = scale.iters.max(2);
    let nnz_cap = n * 5;
    let make = |data_open: &str, pragmas: [&str; 7], upd: &str, post: &str, data_close: &str| {
        let [k_init, k_rho0, k_q, k_dpq, k_x, k_r, k_p] = pragmas;
        format!(
            r#"int rowptr[{np1}];
int colidx[{nnz}];
double vals[{nnz}];
double x[{n}];
double r[{n}];
double p[{n}];
double q[{n}];
double rho;
double rhon;
double dpq;
double alpha;
double beta;
void main() {{
    int i; int j; int cgit; int nnz; double sum; double ax; double bt;
    nnz = 0;
    for (i = 0; i < {n}; i++) {{
        rowptr[i] = nnz;
        for (j = i - 2; j <= i + 2; j++) {{
            if (j >= 0 && j < {n}) {{
                colidx[nnz] = j;
                if (i == j) {{ vals[nnz] = 5.0; }} else {{ vals[nnz] = -1.0; }}
                nnz = nnz + 1;
            }}
        }}
    }}
    rowptr[{n}] = nnz;
{data_open}
{k_init}
    for (i = 0; i < {n}; i++) {{
        x[i] = 0.0;
        r[i] = 1.0;
        p[i] = 1.0;
        q[i] = 0.0;
    }}
    rho = 0.0;
{k_rho0}
    for (i = 0; i < {n}; i++) {{
        rho += r[i] * r[i];
    }}
    for (cgit = 1; cgit <= {iters}; cgit++) {{
{k_q}
        for (i = 0; i < {n}; i++) {{
            sum = 0.0;
            for (j = rowptr[i]; j < rowptr[i + 1]; j++) {{
                sum += vals[j] * p[colidx[j]];
            }}
            q[i] = sum;
        }}
        dpq = 0.0;
{k_dpq}
        for (i = 0; i < {n}; i++) {{
            dpq += p[i] * q[i];
        }}
        alpha = rho / dpq;
{k_x}
        for (i = 0; i < {n}; i++) {{
            ax = alpha;
            x[i] = x[i] + ax * p[i];
        }}
{k_r}
        for (i = 0; i < {n}; i++) {{
            r[i] = r[i] - alpha * q[i];
        }}
        rhon = 0.0;
{k_rho0}
        for (i = 0; i < {n}; i++) {{
            rhon += r[i] * r[i];
        }}
        beta = rhon / rho;
        rho = rhon;
{k_p}
        for (i = 0; i < {n}; i++) {{
            bt = beta;
            p[i] = r[i] + bt * p[i];
        }}
{upd}
    }}
{post}
{data_close}
}}
"#,
            n = n,
            np1 = n + 1,
            nnz = nnz_cap,
            iters = iters,
            data_open = data_open,
            k_init = k_init,
            k_rho0 = k_rho0,
            k_q = k_q,
            k_dpq = k_dpq,
            k_x = k_x,
            k_r = k_r,
            k_p = k_p,
            upd = upd,
            post = post,
            data_close = data_close,
        )
    };

    // NOTE: k_rho0 appears twice in the body (initial rho and per-iteration
    // rhon) — the reduction target differs, so they are distinct regions.
    let k_init = "#pragma acc kernels loop gang worker";
    let k_rho0a = "#pragma acc kernels loop gang worker reduction(+:rho)";
    let k_q = "#pragma acc kernels loop gang worker private(sum)";
    let k_dpq = "#pragma acc kernels loop gang worker reduction(+:dpq)";
    let k_x = "#pragma acc kernels loop gang worker private(ax)";
    let k_r = "#pragma acc kernels loop gang worker";
    let k_p = "#pragma acc kernels loop gang worker private(bt)";
    // The second k_rho0 slot reduces rhon; handled by a distinct pragma via
    // string replacement below.
    let fix_second_rho = |src: String| -> String {
        // The second occurrence of the rho-reduction pragma reduces rhon.
        let needle = "#pragma acc kernels loop gang worker reduction(+:rho)";
        if let Some(first) = src.find(needle) {
            if let Some(second_rel) = src[first + needle.len()..].find(needle) {
                let second = first + needle.len() + second_rel;
                let mut out = src.clone();
                out.replace_range(
                    second..second + needle.len(),
                    "#pragma acc kernels loop gang worker reduction(+:rhon)",
                );
                return out;
            }
        }
        src
    };

    let pragmas = [k_init, k_rho0a, k_q, k_dpq, k_x, k_r, k_p];
    let naive = fix_second_rho(make("", pragmas, "", "", ""));
    let unoptimized = fix_second_rho(make(
        "#pragma acc data copyin(rowptr, colidx, vals) create(x, r, p, q)\n{",
        pragmas,
        "#pragma acc update host(x)\n#pragma acc update host(r)",
        "",
        "}",
    ));
    let optimized = fix_second_rho(make(
        "#pragma acc data copyin(rowptr, colidx, vals) create(x, r, p, q)\n{",
        pragmas,
        "",
        "#pragma acc update host(x)\n#pragma acc update host(r)",
        "}",
    ));

    Benchmark {
        name: "CG",
        naive,
        unoptimized,
        optimized,
        outputs: OutputSpec::arrays(&["x", "r"]).with_scalars(&["rho"]),
        n_kernels: 8,
        kernels_with_private: 3,
        kernels_with_reduction: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_variant, Variant};

    #[test]
    fn all_variants_correct() {
        let b = benchmark(Scale::default());
        for v in Variant::ALL {
            check_variant(&b, v).unwrap();
        }
    }

    #[test]
    fn residual_shrinks() {
        let b = benchmark(Scale::default());
        let (tr, r) = crate::run_variant(
            &b,
            Variant::Optimized,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        let rho = r.global_scalar(&tr, "rho").unwrap().as_f64();
        let n = Scale::default().n.max(8) as f64;
        // Initial rho = n; CG on a well-conditioned SPD band matrix reduces
        // the residual by orders of magnitude in a few iterations.
        assert!(rho < n / 10.0, "rho = {rho}");
    }
}
