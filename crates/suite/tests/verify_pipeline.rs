//! Differential test for the pipelined verified-launch path: on every
//! suite benchmark, the three-stage pipeline (staged demotion copies,
//! overlapped reference, fanned-out comparison) must be observationally
//! **bit-identical** to the fully sequential oracle
//! (`overlap_reference = false`) — same verdicts, same journal, same
//! simulated clock — at every comparison job count.

use openarc_core::exec::{execute, ExecMode, ExecOptions, RunResult, VerifyOptions};
use openarc_core::translate::TranslateOptions;
use openarc_gpusim::TimeCategory;
use openarc_suite::{all, translate_variant, Scale, Variant};
use openarc_trace::{Journal, TraceEvent};

fn run_verify(
    tr: &openarc_core::translate::Translated,
    name: &str,
    overlap: bool,
    jobs: usize,
) -> (RunResult, Vec<TraceEvent>) {
    let journal = Journal::enabled();
    let eopts = ExecOptions {
        mode: ExecMode::Verify(VerifyOptions {
            overlap_reference: overlap,
            compare_jobs: jobs,
            ..Default::default()
        }),
        journal: journal.clone(),
        ..Default::default()
    };
    let r =
        execute(tr, &eopts).unwrap_or_else(|e| panic!("{name} overlap={overlap} jobs={jobs}: {e}"));
    (r, journal.drain())
}

/// Every benchmark, every fan-out in {1, 3, 8}: verdict counts, flagged
/// kernels, journal event streams, and clock state match the sequential
/// oracle bit-for-bit.
#[test]
fn pipelined_verify_matches_sequential_oracle_on_all_benchmarks() {
    for b in all(Scale::default()) {
        let tr = translate_variant(&b, Variant::Optimized, &TranslateOptions::default())
            .unwrap_or_else(|e| panic!("{e}"));
        let (oracle, oracle_events) = run_verify(&tr, b.name, false, 1);
        assert!(
            !oracle.verify.is_empty(),
            "{}: no kernels were verified",
            b.name
        );
        for jobs in [1usize, 3, 8] {
            let (r, events) = run_verify(&tr, b.name, true, jobs);
            let ctx = format!("{} jobs={jobs}", b.name);
            assert_eq!(r.verify.len(), oracle.verify.len(), "{ctx}: kernel count");
            for (v, o) in r.verify.iter().zip(&oracle.verify) {
                assert_eq!(v.kernel, o.kernel, "{ctx}");
                assert_eq!(v.launches, o.launches, "{ctx}: {}", v.kernel);
                assert_eq!(v.failed_launches, o.failed_launches, "{ctx}: {}", v.kernel);
                assert_eq!(v.compared_elems, o.compared_elems, "{ctx}: {}", v.kernel);
                assert_eq!(
                    v.mismatched_elems, o.mismatched_elems,
                    "{ctx}: {}",
                    v.kernel
                );
                assert_eq!(
                    v.max_abs_err.to_bits(),
                    o.max_abs_err.to_bits(),
                    "{ctx}: {} max_abs_err",
                    v.kernel
                );
                assert_eq!(
                    v.assertion_failures, o.assertion_failures,
                    "{ctx}: {}",
                    v.kernel
                );
                assert_eq!(v.flagged(), o.flagged(), "{ctx}: {}", v.kernel);
            }
            assert_eq!(
                r.sim_time_us().to_bits(),
                oracle.sim_time_us().to_bits(),
                "{ctx}: sim time"
            );
            for c in TimeCategory::ALL {
                assert_eq!(
                    r.machine.clock.breakdown.get(c).to_bits(),
                    oracle.machine.clock.breakdown.get(c).to_bits(),
                    "{ctx}: breakdown {c:?}"
                );
            }
            assert_eq!(events, oracle_events, "{ctx}: journal diverged");
        }
    }
}
