//! Generic worklist dataflow solver.

use crate::cfg::Cfg;

/// A monotone dataflow problem over a [`Cfg`].
pub trait Problem {
    /// Lattice element.
    type Fact: Clone + PartialEq;

    /// True for backward problems (facts flow exit → entry).
    fn backward(&self) -> bool;

    /// Fact at the boundary node (entry for forward, exit for backward).
    fn boundary(&self) -> Self::Fact;

    /// Optimistic initial fact for all other nodes (⊤).
    fn init(&self) -> Self::Fact;

    /// Meet of two facts (⊓).
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Transfer function of node `n` applied to the incoming fact
    /// (the OUT fact for backward problems, the IN fact for forward ones).
    fn transfer(&self, cfg: &Cfg, n: usize, incoming: &Self::Fact) -> Self::Fact;
}

/// Fixpoint solution: `before[n]` is the fact at node entry, `after[n]` at
/// node exit (in control-flow order, regardless of analysis direction).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each node's entry.
    pub before: Vec<F>,
    /// Fact at each node's exit.
    pub after: Vec<F>,
}

/// Iterate to fixpoint.
pub fn solve<P: Problem>(cfg: &Cfg, p: &P) -> Solution<P::Fact> {
    let n = cfg.len();
    let mut before: Vec<P::Fact> = vec![p.init(); n];
    let mut after: Vec<P::Fact> = vec![p.init(); n];
    if p.backward() {
        after[cfg.exit] = p.boundary();
        before[cfg.exit] = p.transfer(cfg, cfg.exit, &after[cfg.exit]);
    } else {
        before[cfg.entry] = p.boundary();
        after[cfg.entry] = p.transfer(cfg, cfg.entry, &before[cfg.entry]);
    }
    // Simple round-robin iteration: CFGs here are small (one per function),
    // and set lattices converge in a few passes.
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds < 10_000, "dataflow failed to converge");
        for i in 0..n {
            if p.backward() {
                if i == cfg.exit {
                    continue;
                }
                let mut acc: Option<P::Fact> = None;
                for &s in &cfg.succ[i] {
                    acc = Some(match acc {
                        None => before[s].clone(),
                        Some(a) => p.meet(&a, &before[s]),
                    });
                }
                let out = acc.unwrap_or_else(|| p.init());
                let inn = p.transfer(cfg, i, &out);
                if out != after[i] || inn != before[i] {
                    after[i] = out;
                    before[i] = inn;
                    changed = true;
                }
            } else {
                if i == cfg.entry {
                    continue;
                }
                let mut acc: Option<P::Fact> = None;
                for &pr in &cfg.pred[i] {
                    acc = Some(match acc {
                        None => after[pr].clone(),
                        Some(a) => p.meet(&a, &after[pr]),
                    });
                }
                let inn = acc.unwrap_or_else(|| p.init());
                let out = p.transfer(cfg, i, &inn);
                if inn != before[i] || out != after[i] {
                    before[i] = inn;
                    after[i] = out;
                    changed = true;
                }
            }
        }
    }
    Solution { before, after }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, Side};
    use openarc_minic::parse;
    use std::collections::BTreeSet;

    /// Classic reaching-writes (forward, union) to exercise the solver.
    struct ReachingWrites;

    impl Problem for ReachingWrites {
        type Fact = BTreeSet<String>;

        fn backward(&self) -> bool {
            false
        }

        fn boundary(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn init(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            a.union(b).cloned().collect()
        }

        fn transfer(&self, cfg: &Cfg, n: usize, incoming: &Self::Fact) -> Self::Fact {
            let mut out = incoming.clone();
            out.extend(cfg.nodes[n].summary(Side::Host).writes.iter().cloned());
            out
        }
    }

    #[test]
    fn forward_union_reaches_through_branches() {
        let p = parse(
            "int a;\nint b;\nint c;\nvoid main() { if (c) { a = 1; } else { b = 2; } c = 3; }",
        )
        .unwrap();
        let cfg = Cfg::build(p.func("main").unwrap()).unwrap();
        let sol = solve(&cfg, &ReachingWrites);
        let at_exit = &sol.before[cfg.exit];
        assert!(at_exit.contains("a"));
        assert!(at_exit.contains("b"));
        assert!(at_exit.contains("c"));
    }

    #[test]
    fn loop_fixpoint_converges() {
        let p = parse("int a;\nvoid main() { int i; for (i = 0; i < 4; i++) { a = i; } }").unwrap();
        let cfg = Cfg::build(p.func("main").unwrap()).unwrap();
        let sol = solve(&cfg, &ReachingWrites);
        assert!(sol.before[cfg.exit].contains("a"));
        assert!(sol.before[cfg.exit].contains("i"));
    }
}
