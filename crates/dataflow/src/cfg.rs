//! Control-flow graph over a MiniC function, OpenACC-aware.
//!
//! Compute regions collapse into single **kernel nodes** whose accesses are
//! attributed to the GPU side; everything else is host-side. This mirrors
//! the paper's placement rules ("coherence checking for GPU data is only
//! necessary at the kernel boundary") and gives the dead/live analyses the
//! two views they need (§III-B runs Algorithm 1 "twice, one for CPU
//! variables and the other for GPU variables").

use openarc_minic::ast::*;
use openarc_minic::span::Diagnostic;
use openarc_openacc::{directives_of, ComputeSpec, DataSpec, Directive, UpdateSpec};
use std::collections::{BTreeSet, HashMap};

/// Which device's accesses an analysis should look at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Host CPU accesses.
    Host,
    /// Device (compute-region) accesses.
    Gpu,
}

/// Variable accesses attributed to one side at one CFG node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessSummary {
    /// Variables read.
    pub reads: BTreeSet<String>,
    /// Variables written (totally or partially).
    pub writes: BTreeSet<String>,
    /// Variables written as a whole (scalar or pointer assignment).
    pub total_writes: BTreeSet<String>,
    /// Variables whose allocation dies here (`free`, or pointer overwrite).
    pub kills: BTreeSet<String>,
}

impl AccessSummary {
    /// True if nothing is accessed.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.kills.is_empty()
    }
}

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// Function exit.
    Exit,
    /// Structural no-op (joins, empty statements, `wait`).
    Nop,
    /// An ordinary host statement.
    Plain,
    /// A branch condition evaluation (reads only).
    Branch,
    /// A whole compute region (one kernel). Index into [`Cfg::regions`].
    Kernel(usize),
    /// Entry of a structured `data` region. Index into [`Cfg::data_regions`].
    DataEnter(usize),
    /// Exit of a structured `data` region.
    DataExit(usize),
    /// An executable `update` directive.
    Update(UpdateSpec),
}

/// A compute region discovered during CFG construction.
#[derive(Debug, Clone)]
pub struct ComputeRegion {
    /// The annotated statement.
    pub stmt: NodeId,
    /// Parsed directive.
    pub spec: ComputeSpec,
    /// CFG node index of the kernel node.
    pub node: usize,
}

/// A structured data region discovered during CFG construction.
#[derive(Debug, Clone)]
pub struct DataRegion {
    /// The annotated block statement.
    pub stmt: NodeId,
    /// Parsed directive.
    pub spec: DataSpec,
    /// Node at region entry.
    pub enter_node: usize,
    /// Node at region exit.
    pub exit_node: usize,
}

/// One node of the CFG.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// Originating statement, if any.
    pub stmt: Option<NodeId>,
    /// Node kind.
    pub kind: NodeKind,
    /// Host-side accesses.
    pub host: AccessSummary,
    /// Device-side accesses.
    pub gpu: AccessSummary,
    /// Nesting depth of enclosing loops (0 = top level of the function).
    pub loop_depth: u32,
}

impl CfgNode {
    /// The access summary for `side`.
    pub fn summary(&self, side: Side) -> &AccessSummary {
        match side {
            Side::Host => &self.host,
            Side::Gpu => &self.gpu,
        }
    }

    /// True for kernel-launch nodes.
    pub fn is_kernel(&self) -> bool {
        matches!(self.kind, NodeKind::Kernel(_))
    }
}

/// Control-flow graph of one function.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Nodes; index 0 is entry.
    pub nodes: Vec<CfgNode>,
    /// Successor lists.
    pub succ: Vec<Vec<usize>>,
    /// Predecessor lists.
    pub pred: Vec<Vec<usize>>,
    /// Entry node index.
    pub entry: usize,
    /// Exit node index.
    pub exit: usize,
    /// Compute regions in discovery order.
    pub regions: Vec<ComputeRegion>,
    /// Structured data regions in discovery order.
    pub data_regions: Vec<DataRegion>,
    /// Statement id → CFG node that *starts* it.
    pub stmt_node: HashMap<NodeId, usize>,
}

impl Cfg {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the CFG is trivially empty (never for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Build the CFG of `func` (untyped: pointer rebindings count as data
    /// writes — fine for tests and structural queries).
    pub fn build(func: &Func) -> Result<Cfg, Diagnostic> {
        Cfg::build_inner(func, &|_| false)
    }

    /// Build the CFG with type information: assignments *to* pointer
    /// variables are rebindings (they kill the old binding, they do not
    /// write data), and reading a pointer's value is not a data read.
    /// Element accesses through the pointer remain data accesses.
    pub fn build_typed(func: &Func, sema: &openarc_minic::Sema) -> Result<Cfg, Diagnostic> {
        let fname = func.name.clone();
        let is_ptr =
            move |n: &str| matches!(sema.var_ty(&fname, n), Some(openarc_minic::Ty::Ptr(_)));
        Cfg::build_inner(func, &is_ptr)
    }

    fn build_inner(func: &Func, is_ptr: &dyn Fn(&str) -> bool) -> Result<Cfg, Diagnostic> {
        let mut b = Builder {
            is_ptr,
            ..Builder::new(is_ptr)
        };
        let entry = b.add(CfgNode {
            stmt: None,
            kind: NodeKind::Entry,
            host: AccessSummary::default(),
            gpu: AccessSummary::default(),
            loop_depth: 0,
        });
        let exit = b.add(CfgNode {
            stmt: None,
            kind: NodeKind::Exit,
            host: AccessSummary::default(),
            gpu: AccessSummary::default(),
            loop_depth: 0,
        });
        b.exit = exit;
        let last = b.lower_block(&func.body, entry)?;
        b.edge(last, exit);
        let mut cfg = Cfg {
            nodes: b.nodes,
            succ: b.succ,
            pred: Vec::new(),
            entry,
            exit,
            regions: b.regions,
            data_regions: b.data_regions,
            stmt_node: b.stmt_node,
        };
        cfg.pred = vec![Vec::new(); cfg.nodes.len()];
        for (n, ss) in cfg.succ.iter().enumerate() {
            for &s in ss {
                cfg.pred[s].push(n);
            }
        }
        Ok(cfg)
    }

    /// Node indices of all kernel nodes.
    pub fn kernel_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_kernel())
            .map(|(i, _)| i)
            .collect()
    }
}

struct Builder<'a> {
    nodes: Vec<CfgNode>,
    succ: Vec<Vec<usize>>,
    exit: usize,
    regions: Vec<ComputeRegion>,
    data_regions: Vec<DataRegion>,
    stmt_node: HashMap<NodeId, usize>,
    loop_stack: Vec<(usize, Vec<usize>)>, // (continue target, break sources)
    loop_depth: u32,
    is_ptr: &'a dyn Fn(&str) -> bool,
}

impl<'a> Builder<'a> {
    fn new(is_ptr: &'a dyn Fn(&str) -> bool) -> Builder<'a> {
        Builder {
            nodes: Vec::new(),
            succ: Vec::new(),
            exit: 0,
            regions: Vec::new(),
            data_regions: Vec::new(),
            stmt_node: HashMap::new(),
            loop_stack: Vec::new(),
            loop_depth: 0,
            is_ptr,
        }
    }
}

impl Builder<'_> {
    fn add(&mut self, node: CfgNode) -> usize {
        self.nodes.push(node);
        self.succ.push(Vec::new());
        self.nodes.len() - 1
    }

    fn plain(&mut self, stmt: Option<NodeId>, kind: NodeKind, host: AccessSummary) -> usize {
        self.add(CfgNode {
            stmt,
            kind,
            host,
            gpu: AccessSummary::default(),
            loop_depth: self.loop_depth,
        })
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
        }
    }

    fn lower_block(&mut self, b: &Block, mut cur: usize) -> Result<usize, Diagnostic> {
        for s in &b.stmts {
            cur = self.lower_stmt(s, cur)?;
        }
        Ok(cur)
    }

    /// Lower one statement; returns the node control flows out of.
    fn lower_stmt(&mut self, s: &Stmt, cur: usize) -> Result<usize, Diagnostic> {
        let dirs = directives_of(s)?;
        // Compute construct → a single kernel node.
        if let Some((Directive::Compute(spec), _)) = dirs
            .iter()
            .find(|(d, _)| matches!(d, Directive::Compute(_)))
        {
            let mut gpu = AccessSummary::default();
            summarize_region(s, &mut gpu, self.is_ptr);
            // Launch-time host reads: loop bounds and scalar kernel inputs
            // are read on the host when marshalling arguments.
            let host = AccessSummary {
                reads: gpu.reads.clone(),
                ..Default::default()
            };
            let node = self.add(CfgNode {
                stmt: Some(s.id),
                kind: NodeKind::Kernel(self.regions.len()),
                host,
                gpu,
                loop_depth: self.loop_depth,
            });
            self.regions.push(ComputeRegion {
                stmt: s.id,
                spec: spec.clone(),
                node,
            });
            self.stmt_node.insert(s.id, node);
            self.edge(cur, node);
            return Ok(node);
        }
        // Structured data region → enter node, body, exit node.
        if let Some((Directive::Data(spec), _)) =
            dirs.iter().find(|(d, _)| matches!(d, Directive::Data(_)))
        {
            let region_idx = self.data_regions.len();
            let enter = self.plain(
                Some(s.id),
                NodeKind::DataEnter(region_idx),
                AccessSummary::default(),
            );
            self.stmt_node.insert(s.id, enter);
            self.edge(cur, enter);
            // Reserve the slot before lowering the body so nested regions
            // keep discovery order.
            self.data_regions.push(DataRegion {
                stmt: s.id,
                spec: spec.clone(),
                enter_node: enter,
                exit_node: usize::MAX,
            });
            let body_end = match &s.kind {
                StmtKind::Block(b) => self.lower_block(b, enter)?,
                _ => self.lower_plain(s, enter)?,
            };
            let exit = self.plain(
                Some(s.id),
                NodeKind::DataExit(region_idx),
                AccessSummary::default(),
            );
            self.edge(body_end, exit);
            self.data_regions[region_idx].exit_node = exit;
            return Ok(exit);
        }
        // Executable update directive (standalone empty-block statement).
        if let Some((Directive::Update(u), _)) =
            dirs.iter().find(|(d, _)| matches!(d, Directive::Update(_)))
        {
            let mut host = AccessSummary::default();
            // update host(v): writes v on the host (totally) from the device
            // copy; update device(v): reads the host copy.
            for v in &u.host {
                host.writes.insert(v.clone());
                host.total_writes.insert(v.clone());
            }
            for v in &u.device {
                host.reads.insert(v.clone());
            }
            let mut gpu = AccessSummary::default();
            for v in &u.host {
                gpu.reads.insert(v.clone());
            }
            for v in &u.device {
                gpu.writes.insert(v.clone());
                gpu.total_writes.insert(v.clone());
            }
            let node = self.add(CfgNode {
                stmt: Some(s.id),
                kind: NodeKind::Update(u.clone()),
                host,
                gpu,
                loop_depth: self.loop_depth,
            });
            self.stmt_node.insert(s.id, node);
            self.edge(cur, node);
            return Ok(node);
        }
        self.lower_plain(s, cur)
    }

    /// Lower a statement with no region-forming directive.
    fn lower_plain(&mut self, s: &Stmt, cur: usize) -> Result<usize, Diagnostic> {
        match &s.kind {
            StmtKind::Decl(_) | StmtKind::Expr(_) | StmtKind::Assign { .. } => {
                let mut host = AccessSummary::default();
                stmt_accesses(s, &mut host, self.is_ptr);
                let node = self.plain(Some(s.id), NodeKind::Plain, host);
                self.stmt_node.insert(s.id, node);
                self.edge(cur, node);
                Ok(node)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mut host = AccessSummary::default();
                expr_reads_typed(cond, &mut host.reads, self.is_ptr);
                let cnode = self.plain(Some(s.id), NodeKind::Branch, host);
                self.stmt_node.insert(s.id, cnode);
                self.edge(cur, cnode);
                let then_end = self.lower_block(then_blk, cnode)?;
                let join = self.plain(None, NodeKind::Nop, AccessSummary::default());
                self.edge(then_end, join);
                match else_blk {
                    Some(e) => {
                        let else_end = self.lower_block(e, cnode)?;
                        self.edge(else_end, join);
                    }
                    None => self.edge(cnode, join),
                }
                Ok(join)
            }
            StmtKind::While { cond, body } => {
                let mut host = AccessSummary::default();
                expr_reads_typed(cond, &mut host.reads, self.is_ptr);
                let cnode = self.plain(Some(s.id), NodeKind::Branch, host);
                self.stmt_node.insert(s.id, cnode);
                self.edge(cur, cnode);
                self.loop_stack.push((cnode, Vec::new()));
                self.loop_depth += 1;
                let body_end = self.lower_block(body, cnode)?;
                self.loop_depth -= 1;
                self.edge(body_end, cnode);
                let (_, breaks) = self.loop_stack.pop().expect("loop stack");
                let after = self.plain(None, NodeKind::Nop, AccessSummary::default());
                self.edge(cnode, after);
                for b in breaks {
                    self.edge(b, after);
                }
                Ok(after)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur2 = cur;
                if let Some(i) = init {
                    cur2 = self.lower_stmt(i, cur2)?;
                }
                let mut host = AccessSummary::default();
                if let Some(c) = cond {
                    expr_reads_typed(c, &mut host.reads, self.is_ptr);
                }
                let cnode = self.plain(Some(s.id), NodeKind::Branch, host);
                self.stmt_node.insert(s.id, cnode);
                self.edge(cur2, cnode);
                // continue → step node; build step placeholder after body.
                let step_node = self.plain(None, NodeKind::Nop, AccessSummary::default());
                self.loop_stack.push((step_node, Vec::new()));
                self.loop_depth += 1;
                let body_end = self.lower_block(body, cnode)?;
                self.loop_depth -= 1;
                self.edge(body_end, step_node);
                let after_step = if let Some(st) = step {
                    self.lower_stmt(st, step_node)?
                } else {
                    step_node
                };
                self.edge(after_step, cnode);
                let (_, breaks) = self.loop_stack.pop().expect("loop stack");
                let after = self.plain(None, NodeKind::Nop, AccessSummary::default());
                self.edge(cnode, after);
                for b in breaks {
                    self.edge(b, after);
                }
                Ok(after)
            }
            StmtKind::Block(b) => {
                if b.stmts.is_empty() {
                    // Empty statement (or standalone wait pragma).
                    let node = self.plain(Some(s.id), NodeKind::Nop, AccessSummary::default());
                    self.stmt_node.insert(s.id, node);
                    self.edge(cur, node);
                    Ok(node)
                } else {
                    self.lower_block(b, cur)
                }
            }
            StmtKind::Return(e) => {
                let mut host = AccessSummary::default();
                if let Some(e) = e {
                    expr_reads_typed(e, &mut host.reads, self.is_ptr);
                }
                let node = self.plain(Some(s.id), NodeKind::Plain, host);
                self.stmt_node.insert(s.id, node);
                self.edge(cur, node);
                self.edge(node, self.exit);
                // Unreachable continuation node.
                let dead = self.plain(None, NodeKind::Nop, AccessSummary::default());
                Ok(dead)
            }
            StmtKind::Break => {
                let node = self.plain(Some(s.id), NodeKind::Nop, AccessSummary::default());
                self.edge(cur, node);
                if let Some((_, breaks)) = self.loop_stack.last_mut() {
                    breaks.push(node);
                }
                let dead = self.plain(None, NodeKind::Nop, AccessSummary::default());
                Ok(dead)
            }
            StmtKind::Continue => {
                let node = self.plain(Some(s.id), NodeKind::Nop, AccessSummary::default());
                self.edge(cur, node);
                let target = self.loop_stack.last().map(|(t, _)| *t);
                if let Some(t) = target {
                    self.edge(node, t);
                }
                let dead = self.plain(None, NodeKind::Nop, AccessSummary::default());
                Ok(dead)
            }
        }
    }
}

/// Collect variables read by an expression (array bases included).
pub fn expr_reads(e: &Expr, out: &mut BTreeSet<String>) {
    for r in e.reads() {
        out.insert(r);
    }
}

/// Typed variant: reading a pointer's *value* (`q` in `p = q`) is not a
/// data read; element reads through it (`q[i]`) are.
fn expr_reads_typed(e: &Expr, out: &mut BTreeSet<String>, is_ptr: &dyn Fn(&str) -> bool) {
    e.walk(&mut |x| match &x.kind {
        ExprKind::Var(n) if !is_ptr(n) => {
            out.insert(n.clone());
        }
        ExprKind::Index { base, .. } => {
            out.insert(base.clone());
        }
        _ => {}
    });
}

/// Accesses of one simple statement (declaration, assignment, call).
fn stmt_accesses(s: &Stmt, sum: &mut AccessSummary, is_ptr: &dyn Fn(&str) -> bool) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if let Some(init) = &d.init {
                expr_reads_typed(init, &mut sum.reads, is_ptr);
                if is_ptr(&d.name) {
                    // Pointer initialization is a rebinding, not a data
                    // write.
                    sum.kills.insert(d.name.clone());
                } else {
                    sum.writes.insert(d.name.clone());
                    sum.total_writes.insert(d.name.clone());
                }
                note_expr_effects(init, sum);
            }
        }
        StmtKind::Assign { target, op, value } => {
            expr_reads_typed(value, &mut sum.reads, is_ptr);
            note_expr_effects(value, sum);
            match target {
                LValue::Var(n) => {
                    if is_ptr(n) {
                        // `p = q` / `p = malloc(...)`: the old binding of p
                        // dies; no buffer data is written.
                        sum.kills.insert(n.clone());
                    } else {
                        if op.binop().is_some() {
                            sum.reads.insert(n.clone());
                        }
                        sum.writes.insert(n.clone());
                        sum.total_writes.insert(n.clone());
                    }
                }
                LValue::Index { base, indices } => {
                    for ix in indices {
                        expr_reads_typed(ix, &mut sum.reads, is_ptr);
                    }
                    if op.binop().is_some() {
                        sum.reads.insert(base.clone());
                    }
                    sum.writes.insert(base.clone());
                }
            }
        }
        StmtKind::Expr(e) => {
            expr_reads_typed(e, &mut sum.reads, is_ptr);
            note_expr_effects(e, sum);
        }
        _ => {}
    }
}

/// Side effects hidden in expressions: `free(p)` kills `p`; calls to user
/// functions conservatively read+partially-write their pointer arguments.
fn note_expr_effects(e: &Expr, sum: &mut AccessSummary) {
    e.walk(&mut |x| {
        if let ExprKind::Call { name, args } = &x.kind {
            if name == "free" {
                if let Some(Expr {
                    kind: ExprKind::Var(p),
                    ..
                }) = args.first()
                {
                    sum.kills.insert(p.clone());
                }
            } else if !openarc_minic::sema::is_intrinsic(name) {
                // User call: pointer arguments may be read and written.
                for a in args {
                    if let ExprKind::Var(n) = &a.kind {
                        sum.reads.insert(n.clone());
                        sum.writes.insert(n.clone());
                    }
                }
            }
        }
    });
}

/// Aggregate all accesses inside a compute region (the GPU side of a kernel
/// node).
fn summarize_region(s: &Stmt, sum: &mut AccessSummary, is_ptr: &dyn Fn(&str) -> bool) {
    walk_stmt(s, &mut |inner| {
        stmt_accesses(inner, sum, is_ptr);
        // Branch/loop conditions inside the region.
        match &inner.kind {
            StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
                expr_reads_typed(cond, &mut sum.reads, is_ptr)
            }
            StmtKind::For { cond: Some(c), .. } => expr_reads_typed(c, &mut sum.reads, is_ptr),
            _ => {}
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).expect("parse");
        Cfg::build(p.func("main").unwrap()).expect("cfg")
    }

    #[test]
    fn straight_line_cfg() {
        let cfg = cfg_of("int a;\nint b;\nvoid main() { a = 1; b = a; }");
        // entry, exit, two plain nodes.
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succ[cfg.entry].len(), 1);
        let n1 = cfg.succ[cfg.entry][0];
        assert!(cfg.nodes[n1].host.writes.contains("a"));
        let n2 = cfg.succ[n1][0];
        assert!(cfg.nodes[n2].host.reads.contains("a"));
        assert_eq!(cfg.succ[n2], vec![cfg.exit]);
    }

    #[test]
    fn if_else_diamond() {
        let cfg = cfg_of("int a;\nvoid main() { if (a > 0) { a = 1; } else { a = 2; } }");
        let cnode = cfg.succ[cfg.entry][0];
        assert!(matches!(cfg.nodes[cnode].kind, NodeKind::Branch));
        assert_eq!(cfg.succ[cnode].len(), 2);
        // Both branches reach the same join.
        let j1 = cfg.succ[cfg.succ[cnode][0]][0];
        let j2 = cfg.succ[cfg.succ[cnode][1]][0];
        assert_eq!(j1, j2);
    }

    #[test]
    fn loop_back_edge_exists() {
        let cfg = cfg_of("void main() { int i; for (i = 0; i < 3; i++) { i = i; } }");
        // Some node must have a back edge (successor with smaller index that
        // is a Branch node).
        let mut has_back = false;
        for (n, ss) in cfg.succ.iter().enumerate() {
            for &s in ss {
                if s < n && matches!(cfg.nodes[s].kind, NodeKind::Branch) {
                    has_back = true;
                }
            }
        }
        assert!(has_back);
    }

    #[test]
    fn kernel_node_collapses_region() {
        let cfg = cfg_of(
            "double q[10];\ndouble w[10];\nvoid main() {\n int j;\n #pragma acc kernels loop gang worker\n for (j = 0; j < 10; j++) { q[j] = w[j]; }\n}",
        );
        assert_eq!(cfg.regions.len(), 1);
        let k = &cfg.nodes[cfg.regions[0].node];
        assert!(k.is_kernel());
        assert!(k.gpu.writes.contains("q"));
        assert!(k.gpu.reads.contains("w"));
        // Region interior statements are not separate host nodes.
        assert!(cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Plain))
            .all(|n| !n.host.writes.contains("q")));
    }

    #[test]
    fn data_region_has_enter_and_exit() {
        let cfg = cfg_of(
            "double a[4];\nvoid main() {\n #pragma acc data create(a)\n {\n  a[0] = 1.0;\n }\n}",
        );
        assert_eq!(cfg.data_regions.len(), 1);
        let dr = &cfg.data_regions[0];
        assert!(matches!(
            cfg.nodes[dr.enter_node].kind,
            NodeKind::DataEnter(0)
        ));
        assert!(matches!(
            cfg.nodes[dr.exit_node].kind,
            NodeKind::DataExit(0)
        ));
        assert_ne!(dr.exit_node, usize::MAX);
    }

    #[test]
    fn update_node_access_direction() {
        let cfg =
            cfg_of("double b[4];\nvoid main() {\n #pragma acc update host(b)\n b[0] = 1.0;\n}");
        let un = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Update(_)))
            .expect("update node");
        assert!(un.host.total_writes.contains("b"));
        assert!(un.gpu.reads.contains("b"));
    }

    #[test]
    fn free_kills_pointer() {
        let cfg = cfg_of("double *p;\nvoid main() { free(p); }");
        let n = cfg.succ[cfg.entry][0];
        assert!(cfg.nodes[n].host.kills.contains("p"));
    }

    #[test]
    fn partial_vs_total_writes() {
        let cfg =
            cfg_of("double a[4];\ndouble *p;\ndouble *q2;\nvoid main() { a[0] = 1.0; p = q2; }");
        let n1 = cfg.succ[cfg.entry][0];
        assert!(cfg.nodes[n1].host.writes.contains("a"));
        assert!(!cfg.nodes[n1].host.total_writes.contains("a"));
        let n2 = cfg.succ[n1][0];
        assert!(cfg.nodes[n2].host.total_writes.contains("p"));
    }

    #[test]
    fn break_edges_leave_loop() {
        let cfg = cfg_of(
            "int n;\nvoid main() { int i; for (i = 0; i < 9; i++) { if (n == 1) { break; } n = n + 1; } n = 99; }",
        );
        // The final assignment must be reachable from entry.
        let mut reach = vec![false; cfg.len()];
        let mut stack = vec![cfg.entry];
        while let Some(n) = stack.pop() {
            if reach[n] {
                continue;
            }
            reach[n] = true;
            for &s in &cfg.succ[n] {
                stack.push(s);
            }
        }
        assert!(reach[cfg.exit]);
        let wrote99: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host.writes.contains("n") && matches!(n.kind, NodeKind::Plain))
            .map(|(i, _)| i)
            .collect();
        assert!(wrote99.iter().all(|&i| reach[i]));
    }

    #[test]
    fn loop_depth_recorded() {
        let cfg = cfg_of(
            "int a;\nvoid main() { int i; int j; a = 0; for (i=0;i<2;i++) { for (j=0;j<2;j++) { a = 1; } } }",
        );
        let depths: Vec<u32> = cfg
            .nodes
            .iter()
            .filter(|n| n.host.writes.contains("a"))
            .map(|n| n.loop_depth)
            .collect();
        assert!(depths.contains(&0));
        assert!(depths.contains(&2));
    }

    #[test]
    fn kernel_inside_loop_detected() {
        let cfg = cfg_of(
            "double q[8];\ndouble w[8];\nvoid main() {\n int k; int j;\n for (k = 0; k < 4; k++) {\n  #pragma acc kernels loop gang\n  for (j = 0; j < 8; j++) { q[j] = w[j]; }\n }\n}",
        );
        assert_eq!(cfg.regions.len(), 1);
        assert_eq!(cfg.nodes[cfg.regions[0].node].loop_depth, 1);
    }
}
