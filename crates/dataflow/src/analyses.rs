//! The paper's dataflow analyses.
//!
//! * [`liveness`] — classic backward liveness (used by the translator).
//! * [`dead_live`] — **Algorithm 1**: may-dead / may-live / must-dead.
//! * [`last_write`] — **Algorithm 2**: last-write detection, optionally
//!   restarting at kernel boundaries ("along some path from program exits
//!   or from the next kernel calls").
//! * [`first_access`] — first-read / first-write placement (following the
//!   Pai et al. scheme the paper cites), restarting at kernel boundaries.
//! * [`natural_loops`] — loop bodies for the check-hoisting optimization
//!   of §III-B (Listing 3).

use crate::cfg::{Cfg, Side};
use crate::solver::{solve, Problem, Solution};
use std::collections::{BTreeMap, BTreeSet};

type Set = BTreeSet<String>;

/// All variable names mentioned by either side of any node.
pub fn universe(cfg: &Cfg) -> Set {
    let mut u = Set::new();
    for n in &cfg.nodes {
        for s in [&n.host, &n.gpu] {
            u.extend(s.reads.iter().cloned());
            u.extend(s.writes.iter().cloned());
            u.extend(s.kills.iter().cloned());
        }
    }
    u
}

// ---------------------------------------------------------------- liveness

struct Liveness {
    side: Side,
}

impl Problem for Liveness {
    type Fact = Set;

    fn backward(&self) -> bool {
        true
    }

    fn boundary(&self) -> Set {
        Set::new()
    }

    fn init(&self) -> Set {
        Set::new()
    }

    fn meet(&self, a: &Set, b: &Set) -> Set {
        a.union(b).cloned().collect()
    }

    fn transfer(&self, cfg: &Cfg, n: usize, out: &Set) -> Set {
        let s = cfg.nodes[n].summary(self.side);
        let mut live = out.clone();
        for k in &s.kills {
            live.remove(k);
        }
        // Only total writes kill liveness; element writes leave the rest of
        // the array live.
        for w in &s.total_writes {
            live.remove(w);
        }
        live.extend(s.reads.iter().cloned());
        live
    }
}

/// Backward liveness; `before[n]` = live-in at node `n`.
pub fn liveness(cfg: &Cfg, side: Side) -> Solution<Set> {
    solve(cfg, &Liveness { side })
}

// ------------------------------------------------------------ Algorithm 1

/// Joint may-live / may-dead fact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeadLiveFact {
    /// Variables read-before-written on **some** following path.
    pub live: Set,
    /// Variables written-first on **all** following paths.
    pub dead: Set,
}

/// Deadness classification of one variable at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadness {
    /// Read before written on some path: the value is needed.
    Live,
    /// Written first on every path (possibly partially): the value is
    /// *presumably* dead — the paper reports transfers of such variables as
    /// **may-redundant** and asks the programmer.
    MayDead,
    /// Not accessed on any following path: **verified** dead.
    MustDead,
}

struct DeadLive {
    side: Side,
    universe: Set,
    /// Skip `update` transfer nodes: transfers are the objects being
    /// diagnosed, so they must not count as genuine DEF/USE (data-region
    /// transfers are naturally invisible here; this keeps updates
    /// consistent with them).
    ignore_updates: bool,
}

impl Problem for DeadLive {
    type Fact = DeadLiveFact;

    fn backward(&self) -> bool {
        true
    }

    fn boundary(&self) -> DeadLiveFact {
        // OUTLive(EXIT) = ∅, OUTDead(EXIT) = ∅.
        DeadLiveFact::default()
    }

    fn init(&self) -> DeadLiveFact {
        // Optimistic ⊤: live = ∅ (∪-meet), dead = universe (∩-meet).
        DeadLiveFact {
            live: Set::new(),
            dead: self.universe.clone(),
        }
    }

    fn meet(&self, a: &DeadLiveFact, b: &DeadLiveFact) -> DeadLiveFact {
        DeadLiveFact {
            live: a.live.union(&b.live).cloned().collect(),
            dead: a.dead.intersection(&b.dead).cloned().collect(),
        }
    }

    fn transfer(&self, cfg: &Cfg, n: usize, out: &DeadLiveFact) -> DeadLiveFact {
        if self.ignore_updates && matches!(cfg.nodes[n].kind, crate::cfg::NodeKind::Update(_)) {
            return out.clone();
        }
        let s = cfg.nodes[n].summary(self.side);
        // Algorithm 1:
        //   INLive(n) = OUTLive(n) − KILL(n) − DEF(n) + USE(n)
        //   INDead(n) = OUTDead(n) − KILL(n) + DEF(n) − USE(n)
        let mut live = out.live.clone();
        let mut dead = out.dead.clone();
        for k in &s.kills {
            live.remove(k);
            dead.remove(k);
        }
        for d in &s.writes {
            live.remove(d);
            dead.insert(d.clone());
        }
        for u in &s.reads {
            dead.remove(u);
            live.insert(u.clone());
        }
        DeadLiveFact { live, dead }
    }
}

/// Result of Algorithm 1 with a convenience classifier.
pub struct DeadLiveResult {
    /// Solver solution (`before[n]` = fact on entry to `n`).
    pub sol: Solution<DeadLiveFact>,
}

impl DeadLiveResult {
    /// Classify `var` *after* node `n` executes (i.e. on its out-edge).
    pub fn after(&self, n: usize, var: &str) -> Deadness {
        Self::classify(&self.sol.after[n], var)
    }

    /// Classify `var` at entry to node `n`.
    pub fn before(&self, n: usize, var: &str) -> Deadness {
        Self::classify(&self.sol.before[n], var)
    }

    fn classify(f: &DeadLiveFact, var: &str) -> Deadness {
        if f.live.contains(var) {
            Deadness::Live
        } else if f.dead.contains(var) {
            Deadness::MayDead
        } else {
            Deadness::MustDead
        }
    }
}

/// Run Algorithm 1 for one side (transfers visible as accesses).
pub fn dead_live(cfg: &Cfg, side: Side) -> DeadLiveResult {
    let p = DeadLive {
        side,
        universe: universe(cfg),
        ignore_updates: false,
    };
    DeadLiveResult {
        sol: solve(cfg, &p),
    }
}

/// Run Algorithm 1 treating `update` transfer nodes as transparent — the
/// variant used to place `reset_status` calls, where deadness must be
/// judged by *compute* accesses only.
pub fn dead_live_compute(cfg: &Cfg, side: Side) -> DeadLiveResult {
    let p = DeadLive {
        side,
        universe: universe(cfg),
        ignore_updates: true,
    };
    DeadLiveResult {
        sol: solve(cfg, &p),
    }
}

// ------------------------------------------------------------ Algorithm 2

struct LastWrite {
    side: Side,
    universe: Set,
    reset_at_kernels: bool,
}

impl Problem for LastWrite {
    type Fact = Set;

    fn backward(&self) -> bool {
        true
    }

    fn boundary(&self) -> Set {
        Set::new()
    }

    fn init(&self) -> Set {
        self.universe.clone()
    }

    fn meet(&self, a: &Set, b: &Set) -> Set {
        a.intersection(b).cloned().collect()
    }

    fn transfer(&self, cfg: &Cfg, n: usize, out: &Set) -> Set {
        // Algorithm 2: INWrite(n) = OUTWrite(n) + DEF(n) − KILL(n), with
        // kernels acting as analysis restarts when requested.
        let node = &cfg.nodes[n];
        let mut fact = if self.reset_at_kernels && node.is_kernel() {
            Set::new()
        } else {
            out.clone()
        };
        let s = node.summary(self.side);
        fact.extend(s.writes.iter().cloned());
        for k in &s.kills {
            fact.remove(k);
        }
        fact
    }
}

/// Result of Algorithm 2.
pub struct LastWriteResult {
    sol: Solution<Set>,
}

impl LastWriteResult {
    /// Variables for which node `n` is a *last write* on some path
    /// (`LASTWrite(n) = INWrite(n) − OUTWrite(n)`, restricted to variables
    /// the node actually writes).
    pub fn last_written_at(&self, cfg: &Cfg, side: Side, n: usize) -> Set {
        let written = &cfg.nodes[n].summary(side).writes;
        self.sol.before[n]
            .iter()
            .filter(|v| written.contains(*v) && !self.sol.after[n].contains(*v))
            .cloned()
            .collect()
    }
}

/// Run Algorithm 2 for one side.
pub fn last_write(cfg: &Cfg, side: Side, reset_at_kernels: bool) -> LastWriteResult {
    let p = LastWrite {
        side,
        universe: universe(cfg),
        reset_at_kernels,
    };
    LastWriteResult {
        sol: solve(cfg, &p),
    }
}

// ----------------------------------------------------------- first access

/// Which access kind a first-access query concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSel {
    /// Reads.
    Read,
    /// Writes.
    Write,
}

struct AccessedBefore {
    side: Side,
    sel: AccessSel,
    universe: Set,
}

impl Problem for AccessedBefore {
    type Fact = Set;

    fn backward(&self) -> bool {
        false
    }

    fn boundary(&self) -> Set {
        Set::new()
    }

    fn init(&self) -> Set {
        self.universe.clone()
    }

    fn meet(&self, a: &Set, b: &Set) -> Set {
        // ∩: "definitely accessed on every path so far". A variable NOT in
        // the set may see its first access here on some path.
        a.intersection(b).cloned().collect()
    }

    fn transfer(&self, cfg: &Cfg, n: usize, inn: &Set) -> Set {
        let node = &cfg.nodes[n];
        // Kernel launches restart host-side tracking ("…from each GPU
        // kernel call"): the device may have changed coherence state.
        let mut fact = if node.is_kernel() {
            Set::new()
        } else {
            inn.clone()
        };
        let s = node.summary(self.side);
        let acc = match self.sel {
            AccessSel::Read => &s.reads,
            AccessSel::Write => &s.writes,
        };
        fact.extend(acc.iter().cloned());
        for k in &s.kills {
            fact.remove(k);
        }
        fact
    }
}

/// For each node, the variables whose read/write at that node may be the
/// first since program entry or the last kernel call — exactly the points
/// where §III-B's optimized instrumentation inserts `check_read` /
/// `check_write` calls.
pub fn first_access(cfg: &Cfg, side: Side, sel: AccessSel) -> Vec<Set> {
    let p = AccessedBefore {
        side,
        sel,
        universe: universe(cfg),
    };
    let sol = solve(cfg, &p);
    cfg.nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let s = node.summary(side);
            let acc = match sel {
                AccessSel::Read => &s.reads,
                AccessSel::Write => &s.writes,
            };
            acc.iter()
                .filter(|v| !sol.before[i].contains(*v))
                .cloned()
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------- natural loops

/// A natural loop: its head (branch node) and full body node set.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header node.
    pub head: usize,
    /// All nodes in the loop, including the header.
    pub body: BTreeSet<usize>,
}

/// Find natural loops from back edges (sufficient for our structured CFGs,
/// where every loop header is a [`crate::cfg::NodeKind::Branch`] node).
/// Multiple back edges to the same header merge into one loop.
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let mut by_head: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (n, ss) in cfg.succ.iter().enumerate() {
        for &h in ss {
            if h <= n && matches!(cfg.nodes[h].kind, crate::cfg::NodeKind::Branch) {
                // Back edge n → h. Body: h plus everything that reaches n
                // backwards without passing through h.
                let body = by_head.entry(h).or_default();
                body.insert(h);
                let mut stack = vec![n];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.insert(x);
                    for &p in &cfg.pred[x] {
                        stack.push(p);
                    }
                }
            }
        }
    }
    by_head
        .into_iter()
        .map(|(head, body)| NaturalLoop { head, body })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use openarc_minic::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).expect("parse");
        Cfg::build(p.func("main").unwrap()).expect("cfg")
    }

    fn node_writing(cfg: &Cfg, var: &str) -> usize {
        cfg.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.host.writes.contains(var) && !n.is_kernel())
            .map(|(i, _)| i)
            .expect("writer node")
    }

    // -------- liveness --------

    #[test]
    fn liveness_basic() {
        let cfg = cfg_of("int a;\nint b;\nvoid main() { a = 1; b = a; }");
        let live = liveness(&cfg, Side::Host);
        let n_a = node_writing(&cfg, "a");
        // After `a = 1`, `a` is live (read by the next statement).
        assert!(live.after[n_a].contains("a"));
        // At exit nothing is live.
        assert!(live.before[cfg.exit].is_empty());
    }

    #[test]
    fn partial_write_keeps_array_live() {
        let cfg = cfg_of(
            "double q[4];\nint z;\nvoid main() { q[0] = 1.0; z = (int) q[1]; q[2] = 2.0; z = (int) q[3]; }",
        );
        let live = liveness(&cfg, Side::Host);
        let first = cfg.succ[cfg.entry][0];
        // q stays live through the partial write at the third statement.
        assert!(live.after[first].contains("q"));
    }

    // -------- Algorithm 1 --------

    #[test]
    fn written_first_everywhere_is_may_dead() {
        // `a` is overwritten (element-wise) before any read on all paths.
        let cfg =
            cfg_of("double a[4];\nint z;\nvoid main() { z = 0; a[0] = 1.0; z = (int) a[0]; }");
        let dl = dead_live(&cfg, Side::Host);
        let n_z = node_writing(&cfg, "z");
        // At entry of the first statement, the next access to `a` is a
        // write → may-dead (partial write, so not provably dead).
        assert_eq!(dl.before(n_z, "a"), Deadness::MayDead);
    }

    #[test]
    fn read_on_some_path_is_live() {
        let cfg = cfg_of(
            "double a[4];\nint z;\nvoid main() { if (z) { z = (int) a[0]; } else { a[0] = 1.0; } }",
        );
        let dl = dead_live(&cfg, Side::Host);
        let branch = cfg.succ[cfg.entry][0];
        assert_eq!(dl.before(branch, "a"), Deadness::Live);
    }

    #[test]
    fn untouched_variable_is_must_dead() {
        let cfg = cfg_of("double a[4];\nint z;\nvoid main() { z = 1; z = z + 1; }");
        let dl = dead_live(&cfg, Side::Host);
        let first = cfg.succ[cfg.entry][0];
        assert_eq!(dl.before(first, "a"), Deadness::MustDead);
    }

    #[test]
    fn paper_cg_example_partial_write_is_may_dead_not_must() {
        // Listing 1 discussion: the next access to q on every path is a
        // *partial* write, but unwritten elements are read afterwards. The
        // algorithm classifies q may-dead (transfer reported only as
        // MAY-redundant, so the user must verify) — not must-dead, which
        // would have wrongly declared the transfer redundant.
        let cfg = cfg_of("double q[8];\nint z;\nvoid main() { q[0] = 0.5; z = (int) q[1]; }");
        let dl = dead_live(&cfg, Side::Host);
        let first = cfg.succ[cfg.entry][0];
        assert_eq!(dl.before(first, "q"), Deadness::MayDead);
    }

    #[test]
    fn free_removes_from_both_sets() {
        let cfg = cfg_of("double *p;\nvoid main() { free(p); }");
        let dl = dead_live(&cfg, Side::Host);
        let n = cfg.succ[cfg.entry][0];
        // After free, p is gone: must-dead at the entry of a following nop.
        assert_eq!(dl.after(n, "p"), Deadness::MustDead);
    }

    // -------- Algorithm 2 --------

    #[test]
    fn last_write_found_in_sequence() {
        let cfg = cfg_of("int a;\nint z;\nvoid main() { a = 1; a = 2; z = a; }");
        let lw = last_write(&cfg, Side::Host, false);
        let writers: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host.writes.contains("a"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(writers.len(), 2);
        let first_is_last = lw
            .last_written_at(&cfg, Side::Host, writers[0])
            .contains("a");
        let second_is_last = lw
            .last_written_at(&cfg, Side::Host, writers[1])
            .contains("a");
        assert!(!first_is_last, "a is rewritten later");
        assert!(second_is_last, "final write should be last");
    }

    #[test]
    fn kernel_resets_last_write_tracking() {
        let cfg = cfg_of(
            "double a[8];\ndouble b[8];\nvoid main() {\n int j;\n a[0] = 1.0;\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { b[j] = a[j]; }\n a[1] = 2.0;\n}",
        );
        let lw = last_write(&cfg, Side::Host, true);
        let writers: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host.writes.contains("a") && !n.is_kernel())
            .map(|(i, _)| i)
            .collect();
        // With kernel reset, the write BEFORE the kernel is a last write
        // relative to the kernel boundary.
        assert!(lw
            .last_written_at(&cfg, Side::Host, writers[0])
            .contains("a"));
        assert!(lw
            .last_written_at(&cfg, Side::Host, writers[1])
            .contains("a"));
    }

    // -------- first access --------

    #[test]
    fn first_read_flagged_once_in_straight_line() {
        let cfg = cfg_of("int a;\nint z;\nvoid main() { z = a; z = a + a; }");
        let fr = first_access(&cfg, Side::Host, AccessSel::Read);
        let readers: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host.reads.contains("a"))
            .map(|(i, _)| i)
            .collect();
        assert!(fr[readers[0]].contains("a"));
        assert!(!fr[readers[1]].contains("a"));
    }

    #[test]
    fn kernel_call_restarts_first_read() {
        let cfg = cfg_of(
            "double a[8];\nint z;\nvoid main() {\n int j;\n z = (int) a[0];\n #pragma acc kernels loop gang\n for (j = 0; j < 8; j++) { a[j] = 1.0; }\n z = (int) a[1];\n}",
        );
        let fr = first_access(&cfg, Side::Host, AccessSel::Read);
        let readers: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.host.reads.contains("a") && matches!(n.kind, crate::cfg::NodeKind::Plain)
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(readers.len(), 2);
        assert!(fr[readers[0]].contains("a"), "read before kernel is first");
        assert!(
            fr[readers[1]].contains("a"),
            "read after kernel is first again"
        );
    }

    #[test]
    fn first_read_in_loop_flagged_at_loop_node() {
        // A read inside a loop with no kernel: first iteration is a first
        // read, so the in-loop node is flagged (the hoisting optimization
        // later moves the check out).
        let cfg = cfg_of(
            "double a[8];\nint z;\nvoid main() { int j; for (j = 0; j < 8; j++) { z = z + (int) a[j]; } }",
        );
        let fr = first_access(&cfg, Side::Host, AccessSel::Read);
        let flagged = cfg
            .nodes
            .iter()
            .enumerate()
            .any(|(i, n)| n.host.reads.contains("a") && fr[i].contains("a"));
        assert!(flagged);
    }

    // -------- natural loops --------

    #[test]
    fn natural_loop_contains_body_nodes() {
        let cfg =
            cfg_of("int a;\nvoid main() { int i; for (i = 0; i < 3; i++) { a = i; } a = 9; }");
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        let body_writer = cfg
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.host.writes.contains("a") && n.loop_depth == 1)
            .map(|(i, _)| i)
            .unwrap();
        let outside_writer = cfg
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.host.writes.contains("a") && n.loop_depth == 0)
            .map(|(i, _)| i)
            .unwrap();
        assert!(l.body.contains(&body_writer));
        assert!(!l.body.contains(&outside_writer));
    }

    #[test]
    fn nested_loops_found() {
        let cfg = cfg_of(
            "int a;\nvoid main() { int i; int j; for (i=0;i<2;i++) { for (j=0;j<2;j++) { a = 1; } } }",
        );
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 2);
    }
}
