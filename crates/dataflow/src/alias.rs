//! Conservative flow-insensitive pointer alias analysis.
//!
//! This is the compiler component whose *imprecision* the paper measures:
//! Table III's "incorrect iterations" for BACKPROP and LUD "occur when the
//! compiler cannot resolve the relationship between (may-)aliased
//! pointers". Benchmarks that swap heap pointers (ping-pong buffers) or
//! carve sub-regions out of one allocation defeat this analysis, making
//! the may-dead classification unreliable for those variables — which the
//! memory-transfer verifier then surfaces as *may*-suggestions the user
//! must double-check.

use openarc_minic::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// An abstract memory location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// A global array.
    Global(String),
    /// A heap allocation, identified by the assignment statement id.
    Malloc(NodeId),
    /// Anything (unanalyzable source: parameters, returns of user calls).
    Unknown,
}

/// Variable key: (function, name); globals use an empty function name.
pub type VarKey = (String, String);

/// Result of the analysis.
#[derive(Debug, Clone, Default)]
pub struct AliasInfo {
    pts: BTreeMap<VarKey, BTreeSet<Loc>>,
}

impl AliasInfo {
    fn key(sema: &openarc_minic::Sema, func: &str, var: &str) -> VarKey {
        if sema.is_global(func, var) {
            (String::new(), var.to_string())
        } else {
            (func.to_string(), var.to_string())
        }
    }

    /// Points-to set of `var` as seen inside `func`.
    pub fn points_to(&self, sema: &openarc_minic::Sema, func: &str, var: &str) -> BTreeSet<Loc> {
        self.pts
            .get(&Self::key(sema, func, var))
            .cloned()
            .unwrap_or_default()
    }

    /// May `a` and `b` reference overlapping storage?
    pub fn may_alias(&self, sema: &openarc_minic::Sema, func: &str, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        let pa = self.points_to(sema, func, a);
        let pb = self.points_to(sema, func, b);
        if pa.contains(&Loc::Unknown) || pb.contains(&Loc::Unknown) {
            return true;
        }
        pa.intersection(&pb).next().is_some()
    }

    /// True when the compiler can attribute `var` to exactly one allocation
    /// — the precondition for trusting a may-dead classification of it.
    pub fn is_unambiguous(&self, sema: &openarc_minic::Sema, func: &str, var: &str) -> bool {
        let p = self.points_to(sema, func, var);
        p.len() == 1 && !p.contains(&Loc::Unknown)
    }
}

/// Run the analysis over the whole program.
pub fn analyze(program: &Program, sema: &openarc_minic::Sema) -> AliasInfo {
    let mut info = AliasInfo::default();
    // Seed: every global array points to itself; pointers start empty.
    for g in program.globals() {
        if matches!(g.ty, Ty::Array(..)) {
            info.pts
                .entry((String::new(), g.name.clone()))
                .or_default()
                .insert(Loc::Global(g.name.clone()));
        }
    }
    // Parameters of non-main functions are unanalyzable.
    for item in &program.items {
        if let Item::Func(f) = item {
            for p in &f.params {
                if matches!(p.ty, Ty::Ptr(_)) {
                    info.pts
                        .entry((f.name.clone(), p.name.clone()))
                        .or_default()
                        .insert(Loc::Unknown);
                }
            }
        }
    }
    // Collect copy edges (p = q) and malloc seeds, then iterate.
    let mut copies: Vec<(VarKey, VarKey)> = Vec::new(); // (src, dst)
    for item in &program.items {
        let Item::Func(f) = item else { continue };
        walk_stmts(&f.body, &mut |s| {
            let (target, value) = match &s.kind {
                StmtKind::Assign {
                    target: LValue::Var(t),
                    op: AssignOp::Set,
                    value,
                } => (t, value),
                StmtKind::Decl(d) => {
                    if let (Ty::Ptr(_), Some(init)) = (&d.ty, &d.init) {
                        note_ptr_assign(&mut info, &mut copies, sema, f, &d.name, init, s.id);
                    }
                    return;
                }
                _ => {
                    note_call_effects(&mut info, sema, f, s);
                    return;
                }
            };
            let is_ptr = matches!(sema.var_ty(&f.name, target), Some(Ty::Ptr(_)));
            if is_ptr {
                note_ptr_assign(&mut info, &mut copies, sema, f, target, value, s.id);
            }
            note_call_effects(&mut info, sema, f, s);
        });
    }
    // Subset propagation to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for (src, dst) in &copies {
            let add: BTreeSet<Loc> = info.pts.get(src).cloned().unwrap_or_default();
            if add.is_empty() {
                continue;
            }
            let entry = info.pts.entry(dst.clone()).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
    }
    info
}

fn note_ptr_assign(
    info: &mut AliasInfo,
    copies: &mut Vec<(VarKey, VarKey)>,
    sema: &openarc_minic::Sema,
    f: &Func,
    target: &str,
    value: &Expr,
    site: NodeId,
) {
    let dst = AliasInfo::key(sema, &f.name, target);
    match &value.kind {
        ExprKind::Cast {
            ty: Ty::Ptr(_),
            expr,
        } => {
            if matches!(&expr.kind, ExprKind::Call { name, .. } if name == "malloc") {
                info.pts.entry(dst).or_default().insert(Loc::Malloc(site));
            } else {
                info.pts.entry(dst).or_default().insert(Loc::Unknown);
            }
        }
        ExprKind::Var(src) => {
            let src_key = AliasInfo::key(sema, &f.name, src);
            copies.push((src_key, dst));
        }
        ExprKind::Call { name, .. } if !openarc_minic::sema::is_intrinsic(name) => {
            info.pts.entry(dst).or_default().insert(Loc::Unknown);
        }
        _ => {
            info.pts.entry(dst).or_default().insert(Loc::Unknown);
        }
    }
}

/// Passing a pointer to a user function makes the *parameter* alias the
/// argument; we conservatively mark the argument Unknown-free but add the
/// flow edge implicitly by marking params Unknown already (see `analyze`).
fn note_call_effects(_info: &mut AliasInfo, _sema: &openarc_minic::Sema, _f: &Func, _s: &Stmt) {
    // Parameters are already seeded Unknown; nothing further to do for the
    // benchmarks' call patterns.
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::frontend;

    fn analyzed(src: &str) -> (Program, openarc_minic::Sema, AliasInfo) {
        let (p, s) = frontend(src).expect("frontend");
        let a = analyze(&p, &s);
        (p, s, a)
    }

    #[test]
    fn distinct_mallocs_do_not_alias() {
        let (_, s, a) = analyzed(
            "double *p;\ndouble *q;\nint n;\nvoid main() { p = (double *) malloc(n * sizeof(double)); q = (double *) malloc(n * sizeof(double)); }",
        );
        assert!(!a.may_alias(&s, "main", "p", "q"));
        assert!(a.is_unambiguous(&s, "main", "p"));
        assert!(a.is_unambiguous(&s, "main", "q"));
    }

    #[test]
    fn pointer_swap_creates_may_alias() {
        // The BACKPROP/JACOBI ping-pong pattern.
        let (_, s, a) = analyzed(
            "double *p;\ndouble *q;\ndouble *t;\nint n;\nvoid main() { p = (double *) malloc(n); q = (double *) malloc(n); t = p; p = q; q = t; }",
        );
        assert!(a.may_alias(&s, "main", "p", "q"));
        assert!(!a.is_unambiguous(&s, "main", "p"));
        assert!(!a.is_unambiguous(&s, "main", "q"));
    }

    #[test]
    fn globals_arrays_unambiguous() {
        let (_, s, a) = analyzed("double a[8];\ndouble b[8];\nvoid main() { a[0] = b[0]; }");
        assert!(a.is_unambiguous(&s, "main", "a"));
        assert!(!a.may_alias(&s, "main", "a", "b"));
        assert!(a.may_alias(&s, "main", "a", "a"));
    }

    #[test]
    fn function_params_are_unknown() {
        let (_, s, a) = analyzed(
            "void f(double *x) { x[0] = 1.0; }\ndouble *p;\nint n;\nvoid main() { p = (double *) malloc(n); f(p); }",
        );
        assert!(!a.is_unambiguous(&s, "f", "x"));
        assert!(a.may_alias(&s, "f", "x", "x"));
    }

    #[test]
    fn copy_chain_propagates() {
        let (_, s, a) = analyzed(
            "double *p;\ndouble *q;\ndouble *r;\nint n;\nvoid main() { p = (double *) malloc(n); q = p; r = q; }",
        );
        assert!(a.may_alias(&s, "main", "p", "r"));
        let pts = a.points_to(&s, "main", "r");
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn self_alias_always_true() {
        let (_, s, a) = analyzed("double *p;\nvoid main() { }");
        assert!(a.may_alias(&s, "main", "p", "p"));
    }
}
