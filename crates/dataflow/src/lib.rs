//! # openarc-dataflow
//!
//! Control-flow graphs and the dataflow analyses behind the paper's
//! memory-transfer verification and optimization (§III-B):
//!
//! * [`mod@cfg`] — OpenACC-aware CFG construction: compute regions collapse
//!   into kernel nodes with device-side access summaries.
//! * [`analyses::dead_live`] — the paper's **Algorithm 1**
//!   (may-dead / may-live / must-dead).
//! * [`analyses::last_write`] — **Algorithm 2** (last-write detection).
//! * [`analyses::first_access`] — first-read/first-write placement for
//!   runtime coherence checks.
//! * [`analyses::natural_loops`] — loop structure for the check-hoisting
//!   optimization (Listing 3).
//! * [`alias`] — conservative pointer analysis whose imprecision produces
//!   the "incorrect iterations" of Table III.

#![warn(missing_docs)]

pub mod alias;
pub mod analyses;
pub mod cfg;
pub mod solver;

pub use alias::{analyze as alias_analyze, AliasInfo, Loc};
pub use analyses::{
    dead_live, dead_live_compute, first_access, last_write, liveness, natural_loops, AccessSel,
    DeadLiveResult, Deadness, LastWriteResult, NaturalLoop,
};
pub use cfg::{AccessSummary, Cfg, CfgNode, ComputeRegion, DataRegion, NodeKind, Side};
pub use solver::{solve, Problem, Solution};
