//! # openarc-openacc
//!
//! OpenACC 1.0 directive model for OpenARC-rs: clause and directive types,
//! a parser from the raw `#pragma` text captured by `openarc-minic`, a
//! `Display` implementation that re-emits directives (used by the
//! memory-transfer demotion pass to rewrite programs, as in the paper's
//! Listing 2), and a validator.
//!
//! The paper's system supports "the full feature set of OpenACC V1.0"; this
//! crate models every directive and clause of that version that is
//! meaningful for C programs.

#![warn(missing_docs)]

pub mod clause;
pub mod directive;
pub mod parse;
pub mod validate;

pub use clause::{DataClause, DataClauseKind, DataItem, Reduction, ReductionOp};
pub use directive::{ComputeSpec, DataSpec, Directive, LoopSpec, UpdateSpec};
pub use parse::parse_directive;
pub use validate::validate_directive;

use openarc_minic::span::Diagnostic;
use openarc_minic::{Pragma, Stmt};

/// Parse all `acc` pragmas attached to a statement. Non-`acc` pragmas are
/// skipped.
pub fn directives_of(stmt: &Stmt) -> Result<Vec<(Directive, &Pragma)>, Diagnostic> {
    let mut out = Vec::new();
    for pr in &stmt.pragmas {
        if let Some(d) = parse_directive(&pr.text, pr.span)? {
            out.push((d, pr));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::parse as parse_minic;

    #[test]
    fn directives_of_statement() {
        let p = parse_minic(
            "void main() {\n #pragma acc data create(a)\n #pragma omp something\n { }\n}",
        )
        .unwrap();
        // `a` is undeclared but directives_of does not validate.
        let f = p.func("main").unwrap();
        let ds = directives_of(&f.body.stmts[0]).unwrap();
        assert_eq!(ds.len(), 1);
        assert!(matches!(ds[0].0, Directive::Data(_)));
    }
}
