//! Directive validation against the program's semantic tables.
//!
//! OpenACC compilers must reject directives that name unknown variables,
//! privatize aggregates they cannot size, or reduce non-scalars. The paper
//! (§II-B) observes that real directive compilers sometimes *silently
//! ignore* conflicting directives; our validator instead reports them, and
//! the fault-injection harness (crate `openarc-core`) can disable it to
//! reproduce those silent-miscompilation scenarios.

use crate::clause::DataClause;
use crate::directive::{ComputeSpec, DataSpec, Directive, LoopSpec, UpdateSpec};
use openarc_minic::span::{Diagnostic, Span};
use openarc_minic::{Sema, Ty};

/// Validate one directive as seen from inside function `func`.
pub fn validate_directive(d: &Directive, sema: &Sema, func: &str, span: Span) -> Vec<Diagnostic> {
    let mut v = Validator {
        sema,
        func,
        span,
        errs: Vec::new(),
    };
    match d {
        Directive::Compute(c) => v.compute(c),
        Directive::Data(ds) => v.data(ds),
        Directive::Loop(ls) => v.loop_spec(ls),
        Directive::HostData { use_device } => {
            for n in use_device {
                v.expect_aggregate(n);
            }
        }
        Directive::Update(u) => v.update(u),
        Directive::Wait(_) => {}
        Directive::Declare(cs) => {
            for c in cs {
                v.data_clause(c);
            }
        }
        Directive::Cache(vars) => {
            for n in vars {
                v.expect_known(n);
            }
        }
    }
    v.errs
}

struct Validator<'a> {
    sema: &'a Sema,
    func: &'a str,
    span: Span,
    errs: Vec<Diagnostic>,
}

impl Validator<'_> {
    fn err(&mut self, msg: String) {
        self.errs.push(Diagnostic::error(msg, self.span));
    }

    fn ty_of(&self, name: &str) -> Option<Ty> {
        self.sema.var_ty(self.func, name).cloned()
    }

    fn expect_known(&mut self, name: &str) -> Option<Ty> {
        match self.ty_of(name) {
            Some(t) => Some(t),
            None => {
                self.err(format!("directive names unknown variable `{name}`"));
                None
            }
        }
    }

    fn expect_aggregate(&mut self, name: &str) {
        if let Some(t) = self.expect_known(name) {
            if !t.is_aggregate() {
                self.err(format!(
                    "variable `{name}` in a data clause must be an array or heap pointer, found `{t}`"
                ));
            }
        }
    }

    fn expect_scalar(&mut self, name: &str) {
        if let Some(t) = self.expect_known(name) {
            if !matches!(t, Ty::Scalar(_)) {
                self.err(format!(
                    "variable `{name}` must be scalar here, found `{t}`"
                ));
            }
        }
    }

    fn data_clause(&mut self, c: &DataClause) {
        for item in &c.items {
            self.expect_aggregate(&item.name);
        }
        if c.items.is_empty() {
            self.err(format!("empty `{}` clause", c.kind));
        }
    }

    /// OpenACC restriction: a variable may appear in at most one data
    /// clause per directive. `copy(a) create(a)` has no defined meaning
    /// — real compilers silently pick one, which is exactly the
    /// conflicting-directive class §II-B warns about.
    fn no_duplicate_items(&mut self, clauses: &[DataClause]) {
        let mut seen = std::collections::BTreeMap::new();
        for c in clauses {
            for item in &c.items {
                if let Some(prev) = seen.insert(item.name.clone(), c.kind) {
                    self.err(format!(
                        "variable `{}` appears in both `{prev}` and `{}` clauses",
                        item.name, c.kind
                    ));
                }
            }
        }
    }

    fn data(&mut self, d: &DataSpec) {
        for c in &d.clauses {
            self.data_clause(c);
        }
        self.no_duplicate_items(&d.clauses);
    }

    fn loop_spec(&mut self, ls: &LoopSpec) {
        if ls.seq && (ls.gang || ls.worker || ls.vector) {
            self.err("`seq` conflicts with gang/worker/vector scheduling".into());
        }
        for n in ls.private.iter().chain(&ls.firstprivate) {
            // Private aggregates are allowed by OpenACC but our kernels only
            // privatize scalars (matching the benchmarks).
            self.expect_scalar(n);
        }
        for r in &ls.reductions {
            for n in &r.vars {
                self.expect_scalar(n);
            }
            if r.vars.is_empty() {
                self.err("empty reduction clause".into());
            }
        }
        // A variable cannot be both private and reduced.
        for r in &ls.reductions {
            for n in &r.vars {
                if ls.private.contains(n) || ls.firstprivate.contains(n) {
                    self.err(format!(
                        "variable `{n}` is both private and a reduction target"
                    ));
                }
            }
        }
    }

    fn compute(&mut self, c: &ComputeSpec) {
        for dc in &c.data {
            self.data_clause(dc);
        }
        self.no_duplicate_items(&c.data);
        self.loop_spec(&c.loop_spec);
        for (what, v) in [
            ("num_gangs", c.num_gangs),
            ("num_workers", c.num_workers),
            ("vector_length", c.vector_length),
        ] {
            if let Some(v) = v {
                if v <= 0 {
                    self.err(format!("{what} must be positive, got {v}"));
                }
            }
        }
    }

    fn update(&mut self, u: &UpdateSpec) {
        for n in u.host.iter().chain(&u.device) {
            self.expect_aggregate(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_directive;
    use openarc_minic::frontend;

    fn check(src: &str, pragma: &str) -> Vec<Diagnostic> {
        let (_, sema) = frontend(src).expect("frontend");
        let d = parse_directive(pragma, Span::dummy()).unwrap().unwrap();
        validate_directive(&d, &sema, "main", Span::dummy())
    }

    const SRC: &str =
        "double q[10];\ndouble w[10];\ndouble *p;\nint n;\ndouble s;\nvoid main() { int i; }";

    #[test]
    fn valid_data_clause_passes() {
        assert!(check(SRC, "acc data create(q, w) copyin(p)").is_empty());
    }

    #[test]
    fn unknown_variable_flagged() {
        let errs = check(SRC, "acc data copy(zz)");
        assert!(errs[0].message.contains("unknown variable"));
    }

    #[test]
    fn scalar_in_data_clause_flagged() {
        let errs = check(SRC, "acc data copy(n)");
        assert!(errs[0].message.contains("array or heap pointer"));
    }

    #[test]
    fn private_must_be_scalar() {
        let errs = check(SRC, "acc kernels loop gang private(q)");
        assert!(errs[0].message.contains("must be scalar"));
    }

    #[test]
    fn reduction_on_scalar_ok() {
        assert!(check(SRC, "acc kernels loop gang reduction(+:s)").is_empty());
    }

    #[test]
    fn seq_conflicts_with_gang() {
        let errs = check(SRC, "acc loop seq gang");
        assert!(errs[0].message.contains("conflicts"));
    }

    #[test]
    fn private_and_reduction_conflict() {
        let errs = check(SRC, "acc kernels loop gang private(s) reduction(+:s)");
        assert!(errs.iter().any(|e| e.message.contains("both private")));
    }

    #[test]
    fn nonpositive_num_gangs_flagged() {
        let errs = check(SRC, "acc parallel num_gangs(1) gang");
        assert!(errs.is_empty());
        // Parser requires a plain integer, so build the spec directly.
        let d = Directive::Compute(ComputeSpec {
            num_gangs: Some(0),
            ..Default::default()
        });
        let (_, sema) = frontend(SRC).unwrap();
        let errs = validate_directive(&d, &sema, "main", Span::dummy());
        assert!(errs[0].message.contains("positive"));
    }

    #[test]
    fn duplicate_variable_across_data_clauses_flagged() {
        let errs = check(SRC, "acc data copy(q) create(q)");
        assert!(
            errs.iter().any(|e| e.message.contains("appears in both")),
            "{errs:?}"
        );
        let errs = check(SRC, "acc kernels loop gang copyin(q) copyout(q)");
        assert!(errs.iter().any(|e| e.message.contains("appears in both")));
        // The same variable in different clauses of *different* regions
        // is fine; so is one variable listed once per clause kind.
        assert!(check(SRC, "acc data copy(q) create(w)").is_empty());
    }

    #[test]
    fn update_of_scalar_flagged() {
        let errs = check(SRC, "acc update host(n)");
        assert!(!errs.is_empty());
    }

    #[test]
    fn locals_visible_to_validator() {
        let errs = check(SRC, "acc kernels loop gang private(i)");
        assert!(errs.is_empty(), "{errs:?}");
    }
}
