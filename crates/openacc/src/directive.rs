//! OpenACC directive AST.

use crate::clause::{DataClause, Reduction};
use std::fmt;

/// Loop-scheduling and privatization clauses (`loop` directive and the loop
/// part of combined `kernels loop` / `parallel loop`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopSpec {
    /// Distribute iterations across gangs.
    pub gang: bool,
    /// Distribute iterations across workers.
    pub worker: bool,
    /// Vector (SIMD) execution of iterations.
    pub vector: bool,
    /// Force sequential execution.
    pub seq: bool,
    /// Assert iterations are independent.
    pub independent: bool,
    /// `collapse(n)` — fuse the n perfectly nested loops.
    pub collapse: Option<u32>,
    /// `private(...)` variables (per-iteration copies).
    pub private: Vec<String>,
    /// `firstprivate(...)` variables (per-iteration copies initialized from
    /// the host value).
    pub firstprivate: Vec<String>,
    /// `reduction(op: ...)` clauses.
    pub reductions: Vec<Reduction>,
}

impl LoopSpec {
    /// True if any scheduling level was requested.
    pub fn has_schedule(&self) -> bool {
        self.gang || self.worker || self.vector || self.seq
    }
}

impl fmt::Display for LoopSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.gang {
            parts.push("gang".into());
        }
        if self.worker {
            parts.push("worker".into());
        }
        if self.vector {
            parts.push("vector".into());
        }
        if self.seq {
            parts.push("seq".into());
        }
        if self.independent {
            parts.push("independent".into());
        }
        if let Some(n) = self.collapse {
            parts.push(format!("collapse({n})"));
        }
        if !self.private.is_empty() {
            parts.push(format!("private({})", self.private.join(", ")));
        }
        if !self.firstprivate.is_empty() {
            parts.push(format!("firstprivate({})", self.firstprivate.join(", ")));
        }
        for r in &self.reductions {
            parts.push(r.to_string());
        }
        write!(f, "{}", parts.join(" "))
    }
}

/// A compute construct: `kernels` or `parallel`, optionally combined with
/// `loop`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComputeSpec {
    /// True for `parallel`, false for `kernels`.
    pub is_parallel: bool,
    /// True when written as the combined form `kernels loop` /
    /// `parallel loop`.
    pub combined_loop: bool,
    /// Data clauses on the construct.
    pub data: Vec<DataClause>,
    /// `async(n)` queue id, if asynchronous.
    pub async_queue: Option<i64>,
    /// `if(cond)` raw condition text.
    pub if_cond: Option<String>,
    /// `num_gangs(n)`.
    pub num_gangs: Option<i64>,
    /// `num_workers(n)`.
    pub num_workers: Option<i64>,
    /// `vector_length(n)`.
    pub vector_length: Option<i64>,
    /// Loop clauses of the combined form.
    pub loop_spec: LoopSpec,
}

/// A structured `data` construct.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataSpec {
    /// The data clauses.
    pub clauses: Vec<DataClause>,
    /// `if(cond)` raw condition text.
    pub if_cond: Option<String>,
}

/// An executable `update` directive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateSpec {
    /// `host(...)` — device→host.
    pub host: Vec<String>,
    /// `device(...)` — host→device.
    pub device: Vec<String>,
    /// `async(n)` queue.
    pub async_queue: Option<i64>,
    /// `if(cond)` raw condition text.
    pub if_cond: Option<String>,
}

/// Any parsed `#pragma acc ...` directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `kernels ...` or `parallel ...` (possibly combined with `loop`).
    Compute(ComputeSpec),
    /// Structured `data` region.
    Data(DataSpec),
    /// Orphaned `loop` directive inside a compute region.
    Loop(LoopSpec),
    /// `host_data use_device(...)`.
    HostData {
        /// Variables whose device address is exposed.
        use_device: Vec<String>,
    },
    /// Executable `update` directive.
    Update(UpdateSpec),
    /// `wait` or `wait(n)`.
    Wait(Option<i64>),
    /// `declare` with data clauses.
    Declare(Vec<DataClause>),
    /// `cache(...)` hint.
    Cache(Vec<String>),
}

impl Directive {
    /// The compute spec, if this is a compute construct.
    pub fn as_compute(&self) -> Option<&ComputeSpec> {
        match self {
            Directive::Compute(c) => Some(c),
            _ => None,
        }
    }

    /// The data spec, if this is a data construct.
    pub fn as_data(&self) -> Option<&DataSpec> {
        match self {
            Directive::Data(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Compute(c) => {
                write!(
                    f,
                    "acc {}",
                    if c.is_parallel { "parallel" } else { "kernels" }
                )?;
                if c.combined_loop {
                    write!(f, " loop")?;
                }
                if let Some(q) = c.async_queue {
                    write!(f, " async({q})")?;
                }
                if let Some(cond) = &c.if_cond {
                    write!(f, " if({cond})")?;
                }
                if let Some(n) = c.num_gangs {
                    write!(f, " num_gangs({n})")?;
                }
                if let Some(n) = c.num_workers {
                    write!(f, " num_workers({n})")?;
                }
                if let Some(n) = c.vector_length {
                    write!(f, " vector_length({n})")?;
                }
                let ls = c.loop_spec.to_string();
                if !ls.is_empty() {
                    write!(f, " {ls}")?;
                }
                for d in &c.data {
                    write!(f, " {d}")?;
                }
                Ok(())
            }
            Directive::Data(d) => {
                write!(f, "acc data")?;
                if let Some(cond) = &d.if_cond {
                    write!(f, " if({cond})")?;
                }
                for c in &d.clauses {
                    write!(f, " {c}")?;
                }
                Ok(())
            }
            Directive::Loop(ls) => {
                write!(f, "acc loop")?;
                let s = ls.to_string();
                if !s.is_empty() {
                    write!(f, " {s}")?;
                }
                Ok(())
            }
            Directive::HostData { use_device } => {
                write!(f, "acc host_data use_device({})", use_device.join(", "))
            }
            Directive::Update(u) => {
                write!(f, "acc update")?;
                if !u.host.is_empty() {
                    write!(f, " host({})", u.host.join(", "))?;
                }
                if !u.device.is_empty() {
                    write!(f, " device({})", u.device.join(", "))?;
                }
                if let Some(q) = u.async_queue {
                    write!(f, " async({q})")?;
                }
                if let Some(cond) = &u.if_cond {
                    write!(f, " if({cond})")?;
                }
                Ok(())
            }
            Directive::Wait(None) => write!(f, "acc wait"),
            Directive::Wait(Some(q)) => write!(f, "acc wait({q})"),
            Directive::Declare(cs) => {
                write!(f, "acc declare")?;
                for c in cs {
                    write!(f, " {c}")?;
                }
                Ok(())
            }
            Directive::Cache(vars) => write!(f, "acc cache({})", vars.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{DataClauseKind, ReductionOp};

    #[test]
    fn display_combined_compute() {
        let c = ComputeSpec {
            is_parallel: false,
            combined_loop: true,
            data: vec![
                DataClause::of(DataClauseKind::Copy, &["q"]),
                DataClause::of(DataClauseKind::CopyIn, &["w"]),
            ],
            async_queue: Some(1),
            loop_spec: LoopSpec {
                gang: true,
                worker: true,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(
            Directive::Compute(c).to_string(),
            "acc kernels loop async(1) gang worker copy(q) copyin(w)"
        );
    }

    #[test]
    fn display_loop_with_reduction() {
        let ls = LoopSpec {
            gang: true,
            private: vec!["tmp".into()],
            reductions: vec![Reduction {
                op: ReductionOp::Add,
                vars: vec!["sum".into()],
            }],
            ..Default::default()
        };
        assert_eq!(
            Directive::Loop(ls).to_string(),
            "acc loop gang private(tmp) reduction(+:sum)"
        );
    }

    #[test]
    fn display_update_and_wait() {
        let u = UpdateSpec {
            host: vec!["b".into()],
            ..Default::default()
        };
        assert_eq!(Directive::Update(u).to_string(), "acc update host(b)");
        assert_eq!(Directive::Wait(Some(2)).to_string(), "acc wait(2)");
        assert_eq!(Directive::Wait(None).to_string(), "acc wait");
    }

    #[test]
    fn loop_spec_schedule_detection() {
        assert!(!LoopSpec::default().has_schedule());
        assert!(LoopSpec {
            seq: true,
            ..Default::default()
        }
        .has_schedule());
    }
}
