//! OpenACC clause types shared by all directives.

use std::fmt;

/// Data-movement clause kinds of OpenACC 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClauseKind {
    /// `copy(...)` — copyin at region entry, copyout at region exit.
    Copy,
    /// `copyin(...)` — host→device at region entry only.
    CopyIn,
    /// `copyout(...)` — device→host at region exit only.
    CopyOut,
    /// `create(...)` — device allocation only, no transfers.
    Create,
    /// `present(...)` — assert data is already on the device.
    Present,
    /// `present_or_copy(...)` (a.k.a. `pcopy`).
    PresentOrCopy,
    /// `present_or_copyin(...)` (a.k.a. `pcopyin`).
    PresentOrCopyIn,
    /// `present_or_copyout(...)` (a.k.a. `pcopyout`).
    PresentOrCopyOut,
    /// `present_or_create(...)` (a.k.a. `pcreate`).
    PresentOrCreate,
    /// `deviceptr(...)` — host pointer already holds a device address.
    DevicePtr,
}

impl DataClauseKind {
    /// Does region entry trigger a host→device transfer?
    pub fn transfers_in(self) -> bool {
        matches!(
            self,
            DataClauseKind::Copy
                | DataClauseKind::CopyIn
                | DataClauseKind::PresentOrCopy
                | DataClauseKind::PresentOrCopyIn
        )
    }

    /// Does region exit trigger a device→host transfer?
    pub fn transfers_out(self) -> bool {
        matches!(
            self,
            DataClauseKind::Copy
                | DataClauseKind::CopyOut
                | DataClauseKind::PresentOrCopy
                | DataClauseKind::PresentOrCopyOut
        )
    }

    /// Does the clause allocate device memory at region entry (when the
    /// data is not already present)?
    pub fn allocates(self) -> bool {
        !matches!(self, DataClauseKind::Present | DataClauseKind::DevicePtr)
    }

    /// The `present_or_*` forms first consult the present table.
    pub fn checks_present(self) -> bool {
        matches!(
            self,
            DataClauseKind::Present
                | DataClauseKind::PresentOrCopy
                | DataClauseKind::PresentOrCopyIn
                | DataClauseKind::PresentOrCopyOut
                | DataClauseKind::PresentOrCreate
        )
    }

    /// Canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            DataClauseKind::Copy => "copy",
            DataClauseKind::CopyIn => "copyin",
            DataClauseKind::CopyOut => "copyout",
            DataClauseKind::Create => "create",
            DataClauseKind::Present => "present",
            DataClauseKind::PresentOrCopy => "present_or_copy",
            DataClauseKind::PresentOrCopyIn => "present_or_copyin",
            DataClauseKind::PresentOrCopyOut => "present_or_copyout",
            DataClauseKind::PresentOrCreate => "present_or_create",
            DataClauseKind::DevicePtr => "deviceptr",
        }
    }
}

impl fmt::Display for DataClauseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One variable inside a data clause, with an optional `[start:length]`
/// subarray annotation. Transfer granularity in this implementation (as in
/// the paper's tracker) is the whole array; the bounds are kept only so
/// directives round-trip textually.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataItem {
    /// Variable name.
    pub name: String,
    /// Raw text of the subarray bounds, e.g. `0:n`, if present.
    pub bounds: Option<String>,
}

impl DataItem {
    /// An item without bounds.
    pub fn new(name: impl Into<String>) -> Self {
        DataItem {
            name: name.into(),
            bounds: None,
        }
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.bounds {
            Some(b) => write!(f, "{}[{}]", self.name, b),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A data clause: kind plus the variables it names.
#[derive(Debug, Clone, PartialEq)]
pub struct DataClause {
    /// Which clause.
    pub kind: DataClauseKind,
    /// The listed variables.
    pub items: Vec<DataItem>,
}

impl DataClause {
    /// Build a clause over plain variable names.
    pub fn of(kind: DataClauseKind, names: &[&str]) -> Self {
        DataClause {
            kind,
            items: names.iter().map(|n| DataItem::new(*n)).collect(),
        }
    }

    /// Variable names listed in this clause.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.items.iter().map(|i| i.name.as_str())
    }
}

impl fmt::Display for DataClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, ")")
    }
}

/// Reduction operators of OpenACC 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    /// `+`
    Add,
    /// `*`
    Mul,
    /// `max`
    Max,
    /// `min`
    Min,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl ReductionOp {
    /// Identity element as f64 (integer reductions convert).
    pub fn identity(self) -> f64 {
        match self {
            ReductionOp::Add | ReductionOp::BitOr | ReductionOp::BitXor | ReductionOp::LogOr => 0.0,
            ReductionOp::Mul | ReductionOp::LogAnd => 1.0,
            ReductionOp::Max => f64::NEG_INFINITY,
            ReductionOp::Min => f64::INFINITY,
            ReductionOp::BitAnd => -1.0, // all ones for integers
        }
    }

    /// Spelling inside `reduction(OP:...)`.
    pub fn symbol(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Max => "max",
            ReductionOp::Min => "min",
            ReductionOp::BitAnd => "&",
            ReductionOp::BitOr => "|",
            ReductionOp::BitXor => "^",
            ReductionOp::LogAnd => "&&",
            ReductionOp::LogOr => "||",
        }
    }

    /// Parse the spelling used inside `reduction(...)`.
    pub fn from_symbol(s: &str) -> Option<Self> {
        Some(match s {
            "+" => ReductionOp::Add,
            "*" => ReductionOp::Mul,
            "max" => ReductionOp::Max,
            "min" => ReductionOp::Min,
            "&" => ReductionOp::BitAnd,
            "|" => ReductionOp::BitOr,
            "^" => ReductionOp::BitXor,
            "&&" => ReductionOp::LogAnd,
            "||" => ReductionOp::LogOr,
            _ => return None,
        })
    }
}

impl fmt::Display for ReductionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A `reduction(op: vars)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The combining operator.
    pub op: ReductionOp,
    /// The reduced scalar variables.
    pub vars: Vec<String>,
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reduction({}:{})", self.op, self.vars.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_direction_table() {
        assert!(DataClauseKind::Copy.transfers_in());
        assert!(DataClauseKind::Copy.transfers_out());
        assert!(DataClauseKind::CopyIn.transfers_in());
        assert!(!DataClauseKind::CopyIn.transfers_out());
        assert!(!DataClauseKind::Create.transfers_in());
        assert!(!DataClauseKind::Create.transfers_out());
        assert!(DataClauseKind::PresentOrCopyOut.transfers_out());
    }

    #[test]
    fn present_forms_check_table() {
        assert!(DataClauseKind::Present.checks_present());
        assert!(DataClauseKind::PresentOrCreate.checks_present());
        assert!(!DataClauseKind::Copy.checks_present());
    }

    #[test]
    fn clause_display() {
        let c = DataClause::of(DataClauseKind::CopyIn, &["a", "b"]);
        assert_eq!(c.to_string(), "copyin(a, b)");
        let mut c2 = DataClause::of(DataClauseKind::Copy, &["q"]);
        c2.items[0].bounds = Some("0:n".into());
        assert_eq!(c2.to_string(), "copy(q[0:n])");
    }

    #[test]
    fn reduction_round_trip() {
        for op in [
            ReductionOp::Add,
            ReductionOp::Mul,
            ReductionOp::Max,
            ReductionOp::Min,
            ReductionOp::BitAnd,
            ReductionOp::BitOr,
            ReductionOp::BitXor,
            ReductionOp::LogAnd,
            ReductionOp::LogOr,
        ] {
            assert_eq!(ReductionOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(ReductionOp::from_symbol("??"), None);
    }

    #[test]
    fn identities() {
        assert_eq!(ReductionOp::Add.identity(), 0.0);
        assert_eq!(ReductionOp::Mul.identity(), 1.0);
        assert!(ReductionOp::Max.identity().is_infinite());
    }
}
