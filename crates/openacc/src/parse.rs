//! Parser for `#pragma acc ...` directive text.
//!
//! The input is the whitespace-normalized pragma text captured by the MiniC
//! lexer (everything after `#pragma`). Parsing is permissive about clause
//! order, matching the OpenACC 1.0 grammar.

use crate::clause::{DataClause, DataClauseKind, DataItem, Reduction, ReductionOp};
use crate::directive::{ComputeSpec, DataSpec, Directive, LoopSpec, UpdateSpec};
use openarc_minic::span::{Diagnostic, Span};

/// Parse one directive. Returns `Ok(None)` for non-`acc` pragmas (e.g.
/// `omp ...`), which callers should ignore.
pub fn parse_directive(text: &str, span: Span) -> Result<Option<Directive>, Diagnostic> {
    let mut p = DirParser {
        toks: tokenize(text, span)?,
        pos: 0,
        span,
    };
    if !p.eat_ident("acc") {
        return Ok(None);
    }
    let d = p.directive()?;
    if !p.at_end() {
        return Err(p.err(format!("trailing tokens after directive: `{}`", p.rest())));
    }
    Ok(Some(d))
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(char),
    /// `&&` / `||` (reduction operators).
    DSym(char),
}

fn tokenize(text: &str, span: Span) -> Result<Vec<Tok>, Diagnostic> {
    let mut toks = Vec::new();
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let s = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Ident(text[s..i].to_string()));
            }
            b'0'..=b'9' => {
                let s = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push(Tok::Int(text[s..i].parse().map_err(|_| {
                    Diagnostic::error(format!("bad integer in directive: `{}`", &text[s..i]), span)
                })?));
            }
            b'&' | b'|' if i + 1 < b.len() && b[i + 1] == c => {
                toks.push(Tok::DSym(c as char));
                i += 2;
            }
            b'(' | b')' | b',' | b':' | b'+' | b'*' | b'&' | b'|' | b'^' | b'[' | b']' | b'<'
            | b'>' | b'=' | b'-' | b'/' | b'!' | b'.' => {
                toks.push(Tok::Sym(c as char));
                i += 1;
            }
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}` in directive", other as char),
                    span,
                ))
            }
        }
    }
    Ok(toks)
}

struct DirParser {
    toks: Vec<Tok>,
    pos: usize,
    span: Span,
}

impl DirParser {
    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(msg, self.span)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn rest(&self) -> String {
        format!("{:?}", &self.toks[self.pos.min(self.toks.len())..])
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.peek_ident() == Some(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if matches!(self.toks.get(self.pos), Some(Tok::Sym(x)) if *x == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), Diagnostic> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}` in directive")))
        }
    }

    fn expect_any_ident(&mut self) -> Result<String, Diagnostic> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, Diagnostic> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(v)
            }
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn directive(&mut self) -> Result<Directive, Diagnostic> {
        let head = self.expect_any_ident()?;
        match head.as_str() {
            "kernels" | "parallel" => {
                let mut spec = ComputeSpec {
                    is_parallel: head == "parallel",
                    ..Default::default()
                };
                if self.eat_ident("loop") {
                    spec.combined_loop = true;
                }
                self.compute_clauses(&mut spec)?;
                Ok(Directive::Compute(spec))
            }
            "data" => {
                let mut spec = DataSpec::default();
                while !self.at_end() {
                    if self.eat_ident("if") {
                        spec.if_cond = Some(self.paren_text()?);
                    } else if let Some(c) = self.try_data_clause()? {
                        spec.clauses.push(c);
                    } else {
                        return Err(self.err(format!("unknown data clause: `{}`", self.rest())));
                    }
                }
                Ok(Directive::Data(spec))
            }
            "loop" => {
                let mut ls = LoopSpec::default();
                self.loop_clauses(&mut ls)?;
                Ok(Directive::Loop(ls))
            }
            "host_data" => {
                if !self.eat_ident("use_device") {
                    return Err(self.err("host_data requires use_device(...)"));
                }
                let vars = self.paren_name_list()?;
                Ok(Directive::HostData { use_device: vars })
            }
            "update" => {
                let mut u = UpdateSpec::default();
                while !self.at_end() {
                    if self.eat_ident("host") || self.eat_ident("self") {
                        u.host.extend(self.paren_name_list()?);
                    } else if self.eat_ident("device") {
                        u.device.extend(self.paren_name_list()?);
                    } else if self.eat_ident("async") {
                        u.async_queue = Some(self.paren_int()?);
                    } else if self.eat_ident("if") {
                        u.if_cond = Some(self.paren_text()?);
                    } else {
                        return Err(self.err(format!("unknown update clause: `{}`", self.rest())));
                    }
                }
                if u.host.is_empty() && u.device.is_empty() {
                    return Err(self.err("update requires host(...) or device(...)"));
                }
                Ok(Directive::Update(u))
            }
            "wait" => {
                if self.at_end() {
                    Ok(Directive::Wait(None))
                } else {
                    Ok(Directive::Wait(Some(self.paren_int()?)))
                }
            }
            "declare" => {
                let mut cs = Vec::new();
                while !self.at_end() {
                    match self.try_data_clause()? {
                        Some(c) => cs.push(c),
                        None => {
                            return Err(
                                self.err(format!("unknown declare clause: `{}`", self.rest()))
                            )
                        }
                    }
                }
                Ok(Directive::Declare(cs))
            }
            "cache" => Ok(Directive::Cache(self.paren_name_list()?)),
            other => Err(self.err(format!("unknown directive `acc {other}`"))),
        }
    }

    fn compute_clauses(&mut self, spec: &mut ComputeSpec) -> Result<(), Diagnostic> {
        while !self.at_end() {
            if self.eat_ident("async") {
                spec.async_queue = if matches!(self.toks.get(self.pos), Some(Tok::Sym('('))) {
                    Some(self.paren_int()?)
                } else {
                    Some(-1)
                };
            } else if self.eat_ident("if") {
                spec.if_cond = Some(self.paren_text()?);
            } else if self.eat_ident("num_gangs") {
                spec.num_gangs = Some(self.paren_int()?);
            } else if self.eat_ident("num_workers") {
                spec.num_workers = Some(self.paren_int()?);
            } else if self.eat_ident("vector_length") {
                spec.vector_length = Some(self.paren_int()?);
            } else if let Some(c) = self.try_data_clause()? {
                spec.data.push(c);
            } else if self.try_loop_clause(&mut spec.loop_spec)? {
                // consumed a loop clause
            } else {
                return Err(self.err(format!("unknown compute clause: `{}`", self.rest())));
            }
        }
        Ok(())
    }

    fn loop_clauses(&mut self, ls: &mut LoopSpec) -> Result<(), Diagnostic> {
        while !self.at_end() {
            if !self.try_loop_clause(ls)? {
                return Err(self.err(format!("unknown loop clause: `{}`", self.rest())));
            }
        }
        Ok(())
    }

    fn try_loop_clause(&mut self, ls: &mut LoopSpec) -> Result<bool, Diagnostic> {
        if self.eat_ident("gang") {
            self.skip_optional_paren_int()?;
            ls.gang = true;
        } else if self.eat_ident("worker") {
            self.skip_optional_paren_int()?;
            ls.worker = true;
        } else if self.eat_ident("vector") {
            self.skip_optional_paren_int()?;
            ls.vector = true;
        } else if self.eat_ident("seq") {
            ls.seq = true;
        } else if self.eat_ident("independent") {
            ls.independent = true;
        } else if self.eat_ident("collapse") {
            ls.collapse = Some(self.paren_int()? as u32);
        } else if self.eat_ident("private") {
            ls.private.extend(self.paren_name_list()?);
        } else if self.eat_ident("firstprivate") {
            ls.firstprivate.extend(self.paren_name_list()?);
        } else if self.eat_ident("reduction") {
            ls.reductions.push(self.reduction_clause()?);
        } else {
            return Ok(false);
        }
        Ok(true)
    }

    fn try_data_clause(&mut self) -> Result<Option<DataClause>, Diagnostic> {
        let kind = match self.peek_ident() {
            Some("copy") => DataClauseKind::Copy,
            Some("copyin") => DataClauseKind::CopyIn,
            Some("copyout") => DataClauseKind::CopyOut,
            Some("create") => DataClauseKind::Create,
            Some("present") => DataClauseKind::Present,
            Some("present_or_copy") | Some("pcopy") => DataClauseKind::PresentOrCopy,
            Some("present_or_copyin") | Some("pcopyin") => DataClauseKind::PresentOrCopyIn,
            Some("present_or_copyout") | Some("pcopyout") => DataClauseKind::PresentOrCopyOut,
            Some("present_or_create") | Some("pcreate") => DataClauseKind::PresentOrCreate,
            Some("deviceptr") => DataClauseKind::DevicePtr,
            _ => return Ok(None),
        };
        self.pos += 1;
        let items = self.paren_item_list()?;
        Ok(Some(DataClause { kind, items }))
    }

    fn reduction_clause(&mut self) -> Result<Reduction, Diagnostic> {
        self.expect_sym('(')?;
        let op = match self.toks.get(self.pos).cloned() {
            Some(Tok::Sym(c)) => {
                self.pos += 1;
                ReductionOp::from_symbol(&c.to_string())
            }
            Some(Tok::DSym(c)) => {
                self.pos += 1;
                ReductionOp::from_symbol(&format!("{c}{c}"))
            }
            Some(Tok::Ident(s)) if s == "max" || s == "min" => {
                self.pos += 1;
                ReductionOp::from_symbol(&s)
            }
            other => return Err(self.err(format!("expected reduction operator, found {other:?}"))),
        }
        .ok_or_else(|| self.err("invalid reduction operator"))?;
        self.expect_sym(':')?;
        let mut vars = vec![self.expect_any_ident()?];
        while self.eat_sym(',') {
            vars.push(self.expect_any_ident()?);
        }
        self.expect_sym(')')?;
        Ok(Reduction { op, vars })
    }

    /// `( name, name, ... )`
    fn paren_name_list(&mut self) -> Result<Vec<String>, Diagnostic> {
        self.expect_sym('(')?;
        let mut names = vec![self.expect_any_ident()?];
        while self.eat_sym(',') {
            names.push(self.expect_any_ident()?);
        }
        self.expect_sym(')')?;
        Ok(names)
    }

    /// `( item, item, ... )` where an item is `name` or `name[lo:hi]`.
    fn paren_item_list(&mut self) -> Result<Vec<DataItem>, Diagnostic> {
        self.expect_sym('(')?;
        let mut items = vec![self.data_item()?];
        while self.eat_sym(',') {
            items.push(self.data_item()?);
        }
        self.expect_sym(')')?;
        Ok(items)
    }

    fn data_item(&mut self) -> Result<DataItem, Diagnostic> {
        let name = self.expect_any_ident()?;
        let mut bounds = None;
        if self.eat_sym('[') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match self.toks.get(self.pos).cloned() {
                    Some(Tok::Sym(']')) if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    Some(Tok::Sym('[')) => {
                        depth += 1;
                        text.push('[');
                        self.pos += 1;
                    }
                    Some(Tok::Sym(']')) => {
                        depth -= 1;
                        text.push(']');
                        self.pos += 1;
                    }
                    Some(t) => {
                        push_tok_text(&mut text, &t);
                        self.pos += 1;
                    }
                    None => return Err(self.err("unterminated subarray bounds")),
                }
            }
            bounds = Some(text);
        }
        Ok(DataItem { name, bounds })
    }

    fn paren_int(&mut self) -> Result<i64, Diagnostic> {
        self.expect_sym('(')?;
        let v = self.expect_int()?;
        self.expect_sym(')')?;
        Ok(v)
    }

    fn skip_optional_paren_int(&mut self) -> Result<(), Diagnostic> {
        if matches!(self.toks.get(self.pos), Some(Tok::Sym('('))) {
            self.paren_int()?;
        }
        Ok(())
    }

    /// Raw text of a parenthesized expression (for `if(...)` conditions).
    fn paren_text(&mut self) -> Result<String, Diagnostic> {
        self.expect_sym('(')?;
        let mut depth = 0usize;
        let mut text = String::new();
        loop {
            match self.toks.get(self.pos).cloned() {
                Some(Tok::Sym(')')) if depth == 0 => {
                    self.pos += 1;
                    return Ok(text);
                }
                Some(Tok::Sym('(')) => {
                    depth += 1;
                    text.push('(');
                    self.pos += 1;
                }
                Some(Tok::Sym(')')) => {
                    depth -= 1;
                    text.push(')');
                    self.pos += 1;
                }
                Some(t) => {
                    push_tok_text(&mut text, &t);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated parenthesized expression")),
            }
        }
    }
}

fn push_tok_text(out: &mut String, t: &Tok) {
    // Separate adjacent words/numbers; punctuation needs no spacing.
    let prev_wordish = out
        .chars()
        .last()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false);
    if prev_wordish && matches!(t, Tok::Ident(_) | Tok::Int(_)) {
        out.push(' ');
    }
    match t {
        Tok::Ident(s) => out.push_str(s),
        Tok::Int(v) => out.push_str(&v.to_string()),
        Tok::Sym(c) => out.push(*c),
        Tok::DSym(c) => {
            out.push(*c);
            out.push(*c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openarc_minic::span::Span;

    fn parse_ok(text: &str) -> Directive {
        parse_directive(text, Span::dummy())
            .unwrap_or_else(|e| panic!("parse failed for `{text}`: {e}"))
            .unwrap_or_else(|| panic!("`{text}` did not parse as an acc directive"))
    }

    #[test]
    fn non_acc_pragma_ignored() {
        assert_eq!(
            parse_directive("omp parallel for", Span::dummy()).unwrap(),
            None
        );
    }

    #[test]
    fn parse_listing1_directives() {
        // From the paper's Listing 1.
        let d = parse_ok("acc data create(q, w)");
        let data = d.as_data().unwrap();
        assert_eq!(data.clauses.len(), 1);
        assert_eq!(data.clauses[0].kind, DataClauseKind::Create);
        assert_eq!(data.clauses[0].names().collect::<Vec<_>>(), vec!["q", "w"]);

        let d = parse_ok("acc kernels loop gang worker");
        let c = d.as_compute().unwrap();
        assert!(!c.is_parallel);
        assert!(c.combined_loop);
        assert!(c.loop_spec.gang && c.loop_spec.worker);
    }

    #[test]
    fn parse_listing2_directive() {
        // From the paper's Listing 2 (post-demotion form).
        let d = parse_ok("acc kernels loop async(1) gang worker copy(q) copyin(w)");
        let c = d.as_compute().unwrap();
        assert_eq!(c.async_queue, Some(1));
        assert_eq!(c.data.len(), 2);
        assert_eq!(c.data[0].kind, DataClauseKind::Copy);
        assert_eq!(c.data[1].kind, DataClauseKind::CopyIn);
    }

    #[test]
    fn parse_reductions() {
        let d = parse_ok("acc kernels loop gang reduction(+:sum) reduction(max:err)");
        let c = d.as_compute().unwrap();
        assert_eq!(c.loop_spec.reductions.len(), 2);
        assert_eq!(c.loop_spec.reductions[0].op, ReductionOp::Add);
        assert_eq!(c.loop_spec.reductions[1].op, ReductionOp::Max);
        assert_eq!(c.loop_spec.reductions[1].vars, vec!["err"]);
    }

    #[test]
    fn parse_logical_reduction_ops() {
        let d = parse_ok("acc loop reduction(&&:all) reduction(||:any)");
        match d {
            Directive::Loop(ls) => {
                assert_eq!(ls.reductions[0].op, ReductionOp::LogAnd);
                assert_eq!(ls.reductions[1].op, ReductionOp::LogOr);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_private_and_collapse() {
        let d = parse_ok("acc kernels loop collapse(2) private(tmp, t2) independent");
        let c = d.as_compute().unwrap();
        assert_eq!(c.loop_spec.collapse, Some(2));
        assert_eq!(c.loop_spec.private, vec!["tmp", "t2"]);
        assert!(c.loop_spec.independent);
    }

    #[test]
    fn parse_update_host_device() {
        let d = parse_ok("acc update host(b) device(a) async(1)");
        match d {
            Directive::Update(u) => {
                assert_eq!(u.host, vec!["b"]);
                assert_eq!(u.device, vec!["a"]);
                assert_eq!(u.async_queue, Some(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_wait_forms() {
        assert_eq!(parse_ok("acc wait"), Directive::Wait(None));
        assert_eq!(parse_ok("acc wait(1)"), Directive::Wait(Some(1)));
    }

    #[test]
    fn parse_subarray_bounds() {
        let d = parse_ok("acc data copy(a[0:n])");
        let data = d.as_data().unwrap();
        assert_eq!(data.clauses[0].items[0].bounds.as_deref(), Some("0:n"));
    }

    #[test]
    fn parse_present_or_aliases() {
        let d = parse_ok("acc data pcopyin(x) present_or_create(y)");
        let data = d.as_data().unwrap();
        assert_eq!(data.clauses[0].kind, DataClauseKind::PresentOrCopyIn);
        assert_eq!(data.clauses[1].kind, DataClauseKind::PresentOrCreate);
    }

    #[test]
    fn parse_num_gangs_and_vector_length() {
        let d = parse_ok("acc parallel num_gangs(32) num_workers(8) vector_length(128)");
        let c = d.as_compute().unwrap();
        assert!(c.is_parallel);
        assert_eq!(c.num_gangs, Some(32));
        assert_eq!(c.num_workers, Some(8));
        assert_eq!(c.vector_length, Some(128));
    }

    #[test]
    fn parse_if_condition_text() {
        let d = parse_ok("acc data if(n > 100) copy(a)");
        let data = d.as_data().unwrap();
        let cond = data.if_cond.as_deref().unwrap();
        assert!(
            cond.contains('>') && cond.contains('n') && cond.contains("100"),
            "{cond}"
        );
        assert_eq!(data.clauses[0].kind, DataClauseKind::Copy);
    }

    #[test]
    fn parse_host_data() {
        let d = parse_ok("acc host_data use_device(buf)");
        assert_eq!(
            d,
            Directive::HostData {
                use_device: vec!["buf".into()]
            }
        );
    }

    #[test]
    fn parse_declare_and_cache() {
        let d = parse_ok("acc declare create(scratch)");
        match d {
            Directive::Declare(cs) => assert_eq!(cs[0].kind, DataClauseKind::Create),
            other => panic!("unexpected {other:?}"),
        }
        let d = parse_ok("acc cache(tile)");
        assert_eq!(d, Directive::Cache(vec!["tile".into()]));
    }

    #[test]
    fn gang_with_size_argument() {
        let d = parse_ok("acc loop gang(64) worker(4)");
        match d {
            Directive::Loop(ls) => assert!(ls.gang && ls.worker),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_clause_is_error() {
        assert!(parse_directive("acc kernels loop turbo", Span::dummy()).is_err());
        assert!(parse_directive("acc frobnicate", Span::dummy()).is_err());
    }

    #[test]
    fn update_without_direction_is_error() {
        assert!(parse_directive("acc update async(1)", Span::dummy()).is_err());
    }

    #[test]
    fn display_round_trip() {
        for text in [
            "acc data create(q, w)",
            "acc kernels loop async(1) gang worker copy(q) copyin(w)",
            "acc kernels loop gang worker private(tmp) reduction(+:sum)",
            "acc update host(b)",
            "acc wait(1)",
            "acc parallel loop num_gangs(4) gang",
        ] {
            let d = parse_ok(text);
            let printed = d.to_string();
            let d2 = parse_ok(&printed);
            assert_eq!(d, d2, "round-trip failed for `{text}` → `{printed}`");
        }
    }
}
